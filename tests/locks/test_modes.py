"""Unit tests for Table 1: lock mode compatibility."""

import pytest

from repro.errors import LockProtocolViolation
from repro.locks.modes import (
    GRANTED_ORDER,
    LockMode,
    REQUESTED_ORDER,
    can_upgrade,
    compatibility_cell,
    compatible,
    format_table,
)

IS, IX, S, X, R, RX, RS = (
    LockMode.IS, LockMode.IX, LockMode.S, LockMode.X,
    LockMode.R, LockMode.RX, LockMode.RS,
)


class TestPaperStatedCells:
    """Each test pins a cell the paper states in prose."""

    def test_r_is_compatible_with_s_both_directions(self):
        # "It is compatible with the S lock." (section 4, on R)
        assert compatible(R, S) is True
        assert compatible(S, R) is True

    def test_rx_is_not_compatible_with_any_defined_mode(self):
        # "The RX mode is not compatible with any lock mode."
        for requested in (IS, IX, S, X):
            assert compatible(RX, requested) is False
        for granted in (IS, IX, S, X):
            assert compatible(granted, RX) is False

    def test_rs_is_not_compatible_with_r(self):
        # "The RS mode is not compatible with R."
        assert compatible(R, RS) is False

    def test_rs_blocked_by_x_on_base_page(self):
        # The reorganizer holds X on the base page while posting keys; a
        # waiting RS must not succeed during that window.
        assert compatible(X, RS) is False

    def test_rs_compatible_with_reader_s(self):
        # RS waits only for the reorganizer; other readers don't block it.
        assert compatible(S, RS) is True

    def test_updater_x_waits_for_reorganizer_r(self):
        # Section 4.1.3: the updater "will wait for a reorganizer when it
        # attempts to get an X-lock on a base page".
        assert compatible(R, X) is False

    def test_classical_intention_cells(self):
        assert compatible(IS, IS) and compatible(IS, IX) and compatible(IS, S)
        assert compatible(IX, IX) and compatible(IX, IS)
        assert not compatible(IX, S)
        assert not compatible(IS, X)
        assert not compatible(S, IX)
        assert compatible(S, S)

    def test_x_conflicts_with_everything(self):
        for requested in REQUESTED_ORDER:
            assert compatible(X, requested) is False


class TestBlankCells:
    """Blank cells raise: the pairing is a protocol violation."""

    @pytest.mark.parametrize(
        "granted,requested",
        [
            (IS, R), (IS, RS),
            (IX, R), (IX, RS),
            (R, IS), (R, IX), (R, R), (R, RX),
            (RX, R), (RX, RX), (RX, RS),
        ],
    )
    def test_blank_cell_raises(self, granted, requested):
        with pytest.raises(LockProtocolViolation):
            compatible(granted, requested)

    def test_rs_is_never_a_granted_mode(self):
        with pytest.raises(LockProtocolViolation):
            compatible(RS, S)

    def test_compatibility_cell_reports_blanks_as_none(self):
        assert compatibility_cell(R, R) is None
        assert compatibility_cell(RS, S) is None
        assert compatibility_cell(S, R) is True
        assert compatibility_cell(X, S) is False


class TestMatrixProperties:
    def test_every_cell_is_yes_no_or_blank(self):
        for granted in GRANTED_ORDER:
            for requested in REQUESTED_ORDER:
                cell = compatibility_cell(granted, requested)
                assert cell in (True, False, None)

    def test_yes_cells_are_symmetric_where_both_defined(self):
        """If A is compatible with B and the reverse cell is defined, it
        agrees: compatibility is a symmetric relation."""
        for granted in GRANTED_ORDER:
            for requested in GRANTED_ORDER:  # both must be holdable
                forward = compatibility_cell(granted, requested)
                backward = compatibility_cell(requested, granted)
                if forward is not None and backward is not None:
                    assert forward == backward, (granted, requested)

    def test_format_table_mentions_every_mode(self):
        table = format_table()
        for mode in REQUESTED_ORDER:
            assert mode.value in table
        assert "Yes" in table and "No" in table


class TestUpgradeLattice:
    def test_reorganizer_upgrade_r_to_x(self):
        assert can_upgrade(R, X)

    def test_classical_upgrades(self):
        assert can_upgrade(IS, IX)
        assert can_upgrade(IS, S)
        assert can_upgrade(IX, X)
        assert can_upgrade(S, X)

    def test_identity_upgrade(self):
        assert can_upgrade(S, S)

    def test_downgrades_rejected(self):
        assert not can_upgrade(X, S)
        assert not can_upgrade(S, IS)

    def test_no_upgrades_into_rx(self):
        assert not can_upgrade(X, RX)
        assert not can_upgrade(S, RX)
