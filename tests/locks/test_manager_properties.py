"""Property-based tests for the lock manager.

Hypothesis drives random sequences of request/release/convert operations
from several owners and checks global invariants after every step:

* no two holders of a resource hold incompatible modes;
* a waiting request is genuinely blocked (some holder or earlier waiter
  conflicts with it);
* after resolve_deadlocks() the waits-for graph is acyclic;
* releasing everything leaves the manager empty.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import LockError, LockProtocolViolation, RXConflictError
from repro.locks.manager import LockManager, RequestState
from repro.locks.modes import LockMode, compatibility_cell


class Owner:
    def __init__(self, name, is_reorganizer=False):
        self.name = name
        self.is_reorganizer = is_reorganizer

    def __repr__(self):
        return self.name


#: Modes as user transactions and the reorganizer actually request them,
#: on the resource kinds where they are defined (avoids blank-cell noise).
LEAF_MODES = [LockMode.IS, LockMode.IX, LockMode.S, LockMode.X, LockMode.RX]
BASE_MODES = [LockMode.S, LockMode.X, LockMode.R]

ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["acquire", "release_one", "release_all", "resolve"]),
        st.integers(min_value=0, max_value=3),  # owner index
        st.integers(min_value=0, max_value=3),  # resource index
        st.integers(min_value=0, max_value=9),  # mode selector
    ),
    min_size=1,
    max_size=120,
)


def _mode_for(resource_index: int, selector: int) -> LockMode:
    # Even resources are "leaf pages", odd are "base pages".
    modes = LEAF_MODES if resource_index % 2 == 0 else BASE_MODES
    return modes[selector % len(modes)]


def _conflicts(held: LockMode, requested: LockMode) -> bool:
    cell = compatibility_cell(held, requested)
    return cell is False


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(actions=ACTIONS)
def test_lock_manager_invariants(actions):
    lm = LockManager()
    owners = [Owner(f"o{i}", is_reorganizer=(i == 3)) for i in range(4)]
    resources = [("page", i) for i in range(4)]
    held: dict[tuple, list[tuple]] = {}  # resource -> [(owner, mode), ...]

    def check_invariants():
        for resource in resources:
            holders = lm.holders_of(resource)
            flat = [
                (owner, mode)
                for owner, modes in holders.items()
                for mode in modes
            ]
            for i, (owner_a, mode_a) in enumerate(flat):
                for owner_b, mode_b in flat[i + 1:]:
                    if owner_a is owner_b:
                        continue
                    cell = compatibility_cell(mode_a, mode_b)
                    assert cell is not False, (
                        f"co-held incompatible modes {mode_a}/{mode_b}"
                    )
            for request in lm.waiters_of(resource):
                blocked_by_holder = any(
                    owner is not request.owner
                    and any(_conflicts(m, request.mode) for m in modes)
                    for owner, modes in holders.items()
                )
                earlier = True  # waiting behind an earlier conflicting waiter
                assert blocked_by_holder or len(lm.waiters_of(resource)) > 1 or request.convert_from is not None, (
                    f"request {request.mode} waits with nothing blocking it"
                )
                del earlier

    for action, owner_index, resource_index, selector in actions:
        owner = owners[owner_index]
        resource = resources[resource_index]
        if action == "acquire":
            mode = _mode_for(resource_index, selector)
            if mode is LockMode.RX and not owner.is_reorganizer:
                mode = LockMode.X  # only the reorganizer uses RX
            try:
                request = lm.request(owner, resource, mode)
            except (RXConflictError, LockProtocolViolation):
                continue
            if request.state is RequestState.GRANTED:
                held.setdefault(resource, []).append((owner, mode))
        elif action == "release_one":
            entries = held.get(resource, [])
            for i, (entry_owner, mode) in enumerate(entries):
                if entry_owner is owner:
                    lm.release(owner, resource, mode)
                    entries.pop(i)
                    break
        elif action == "release_all":
            lm.release_all(owner)
            for entries in held.values():
                entries[:] = [e for e in entries if e[0] is not owner]
            # Cancelled waits would re-enter; also cancel them for bookkeeping.
            lm.cancel_wait(owner)
        elif action == "resolve":
            victims = lm.resolve_deadlocks()
            del victims
            assert lm.find_deadlock_cycle() is None
        check_invariants()

    for owner in owners:
        lm.release_all(owner)
        lm.cancel_wait(owner)
    for resource in resources:
        assert lm.holders_of(resource) == {}


@settings(max_examples=80, deadline=None)
@given(
    modes=st.lists(st.sampled_from(LEAF_MODES), min_size=1, max_size=6),
)
def test_grant_release_is_balanced(modes):
    """Acquire-then-release of any personally-compatible sequence leaves
    no residue, including re-acquired (ref-counted) modes."""
    lm = LockManager()
    me = Owner("me")
    granted = []
    for mode in modes:
        try:
            request = lm.request(me, ("page", 0), mode)
        except (RXConflictError, LockProtocolViolation):
            continue
        if request.state is RequestState.GRANTED:
            granted.append(mode)
    for mode in granted:
        lm.release(me, ("page", 0), mode)
    assert lm.holders_of(("page", 0)) == {}
    with pytest.raises(LockError):
        lm.release(me, ("page", 0), LEAF_MODES[0])


@settings(max_examples=60, deadline=None)
@given(
    n_waiters=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=999),
)
def test_fifo_no_starvation(n_waiters, seed):
    """Everything queued behind an X is granted once locks drain, in
    arrival order for conflicting requests."""
    import random

    rng = random.Random(seed)
    lm = LockManager()
    holder = Owner("holder")
    lm.request(holder, ("page", 0), LockMode.X)
    waiters = []
    for i in range(n_waiters):
        owner = Owner(f"w{i}")
        mode = rng.choice([LockMode.S, LockMode.X])
        request = lm.request(owner, ("page", 0), mode)
        waiters.append((owner, mode, request))
    lm.release(holder, ("page", 0), LockMode.X)
    # Drain: whenever a waiter is granted, release it, until queue empties.
    for _ in range(3 * n_waiters + 3):
        progressed = False
        for owner, mode, request in waiters:
            if request.state is RequestState.GRANTED and lm.holds(owner, ("page", 0), mode):
                lm.release(owner, ("page", 0), mode)
                progressed = True
        if not lm.waiters_of(("page", 0)):
            break
        if not progressed:
            break
    assert lm.waiters_of(("page", 0)) == []
    assert all(r.state is RequestState.GRANTED for _, _, r in waiters)
