"""Unit tests for the lock manager: grants, queues, RX back-off, deadlock."""

import pytest

from repro.errors import LockNotHeldError, LockProtocolViolation, RXConflictError
from repro.locks.manager import LockManager, RequestState
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock, tree_lock

IS, IX, S, X, R, RX, RS = (
    LockMode.IS, LockMode.IX, LockMode.S, LockMode.X,
    LockMode.R, LockMode.RX, LockMode.RS,
)


class Owner:
    """Minimal lock owner; the reorganizer flag drives victim choice."""

    def __init__(self, name, is_reorganizer=False):
        self.name = name
        self.is_reorganizer = is_reorganizer

    def __repr__(self):
        return self.name


@pytest.fixture
def lm():
    return LockManager()


@pytest.fixture
def reader():
    return Owner("reader")


@pytest.fixture
def reader2():
    return Owner("reader2")


@pytest.fixture
def reorg():
    return Owner("reorg", is_reorganizer=True)


BASE = page_lock(100)
LEAF_A = page_lock(1)
LEAF_B = page_lock(2)


class TestGrantAndRelease:
    def test_simple_grant(self, lm, reader):
        req = lm.request(reader, LEAF_A, S)
        assert req.state is RequestState.GRANTED
        assert lm.holds(reader, LEAF_A, S)

    def test_rerequest_same_mode_refcounts(self, lm, reader):
        lm.request(reader, LEAF_A, S)
        lm.request(reader, LEAF_A, S)
        lm.release(reader, LEAF_A, S)
        assert lm.holds(reader, LEAF_A, S)
        lm.release(reader, LEAF_A, S)
        assert not lm.holds(reader, LEAF_A, S)

    def test_release_unheld_raises(self, lm, reader):
        with pytest.raises(LockNotHeldError):
            lm.release(reader, LEAF_A, S)

    def test_compatible_modes_share(self, lm, reader, reader2):
        lm.request(reader, LEAF_A, S)
        req = lm.request(reader2, LEAF_A, S)
        assert req.state is RequestState.GRANTED

    def test_incompatible_request_waits(self, lm, reader, reader2):
        lm.request(reader, LEAF_A, X)
        req = lm.request(reader2, LEAF_A, S)
        assert req.state is RequestState.WAITING
        lm.release(reader, LEAF_A, X)
        assert req.state is RequestState.GRANTED

    def test_release_all(self, lm, reader):
        lm.request(reader, LEAF_A, S)
        lm.request(reader, LEAF_B, S)
        lm.release_all(reader)
        assert lm.owned_resources(reader) == []

    def test_same_owner_multiple_modes(self, lm, reorg, reader):
        """The reorganizer S-couples to a base page, then R locks it."""
        lm.request(reorg, BASE, S)
        req = lm.request(reorg, BASE, R)
        assert req.state is RequestState.GRANTED
        assert lm.held_modes(reorg, BASE) == [R, S]

    def test_on_grant_callback_fires_on_deferred_grant(self, lm, reader, reader2):
        fired = []
        lm.request(reader, LEAF_A, X)
        lm.request(reader2, LEAF_A, S, on_grant=lambda r: fired.append(r))
        assert fired == []
        lm.release(reader, LEAF_A, X)
        assert len(fired) == 1


class TestFIFOFairness:
    def test_later_compatible_request_does_not_starve_earlier_waiter(
        self, lm, reader, reader2
    ):
        writer = Owner("writer")
        lm.request(reader, LEAF_A, S)
        wreq = lm.request(writer, LEAF_A, X)  # waits behind S
        sreq = lm.request(reader2, LEAF_A, S)  # must queue behind X
        assert wreq.state is RequestState.WAITING
        assert sreq.state is RequestState.WAITING
        lm.release(reader, LEAF_A, S)
        assert wreq.state is RequestState.GRANTED
        assert sreq.state is RequestState.WAITING
        lm.release(writer, LEAF_A, X)
        assert sreq.state is RequestState.GRANTED

    def test_compatible_waiters_granted_together(self, lm):
        a, b, c = Owner("a"), Owner("b"), Owner("c")
        lm.request(a, LEAF_A, X)
        r1 = lm.request(b, LEAF_A, S)
        r2 = lm.request(c, LEAF_A, S)
        lm.release(a, LEAF_A, X)
        assert r1.state is RequestState.GRANTED
        assert r2.state is RequestState.GRANTED

    def test_blank_pair_with_queued_waiter_raises_at_request_time(
        self, lm, reader
    ):
        """Two R requests queued behind an X: the second is the Table-1
        blank-cell violation, and it must surface at its own ``request``
        call — not later, inside the X holder's release when dispatch
        grants the first R and probes the second against it."""
        r1, r2 = Owner("r1", is_reorganizer=True), Owner("r2")
        lm.request(reader, BASE, X)
        first = lm.request(r1, BASE, R)
        assert first.state is RequestState.WAITING
        with pytest.raises(LockProtocolViolation):
            lm.request(r2, BASE, R)
        lm.release(reader, BASE, X)  # must not raise mid-dispatch
        assert first.state is RequestState.GRANTED


class TestRXBehaviour:
    def test_conflicting_request_against_rx_is_rejected_not_queued(
        self, lm, reorg, reader
    ):
        lm.request(reorg, LEAF_A, RX)
        with pytest.raises(RXConflictError) as info:
            lm.request(reader, LEAF_A, S)
        assert info.value.resource == LEAF_A
        assert lm.waiters_of(LEAF_A) == []
        assert lm.stats.rx_rejections == 1

    def test_updater_ix_against_rx_also_rejected(self, lm, reorg, reader):
        lm.request(reorg, LEAF_A, RX)
        with pytest.raises(RXConflictError):
            lm.request(reader, LEAF_A, IX)

    def test_reorganizer_rx_waits_behind_reader_s(self, lm, reorg, reader):
        """RX requests wait normally; only requests *against* RX back off."""
        lm.request(reader, LEAF_A, S)
        req = lm.request(reorg, LEAF_A, RX)
        assert req.state is RequestState.WAITING
        lm.release(reader, LEAF_A, S)
        assert req.state is RequestState.GRANTED

    def test_rx_not_blocked_by_own_locks(self, lm, reorg):
        lm.request(reorg, LEAF_A, RX)
        req = lm.request(reorg, LEAF_A, RX)
        assert req.state is RequestState.GRANTED


class TestInstantDuration:
    def test_rs_must_be_instant(self, lm, reader):
        with pytest.raises(LockProtocolViolation):
            lm.request(reader, BASE, RS)

    def test_instant_rs_succeeds_immediately_when_no_r_held(self, lm, reader):
        req = lm.request(reader, BASE, RS, instant=True)
        assert req.state is RequestState.INSTANT_DONE
        assert lm.holders_of(BASE) == {}

    def test_instant_rs_waits_for_reorganizer_r(self, lm, reorg, reader):
        done = []
        lm.request(reorg, BASE, R)
        req = lm.request(
            reader, BASE, RS, instant=True, on_grant=lambda r: done.append(r)
        )
        assert req.state is RequestState.WAITING
        lm.release(reorg, BASE, R)
        assert req.state is RequestState.INSTANT_DONE
        assert done  # success status returned
        assert lm.holders_of(BASE) == {}  # never actually granted

    def test_instant_rs_waits_through_x_upgrade_window(self, lm, reorg, reader):
        """RS must block until the reorganizer's base-page X is gone too."""
        lm.request(reorg, BASE, R)
        req = lm.request(reader, BASE, RS, instant=True)
        lm.convert(reorg, BASE, X)
        lm.release(reorg, BASE, R) if lm.holds(reorg, BASE, R) else None
        assert req.state is RequestState.WAITING
        lm.release(reorg, BASE, X)
        assert req.state is RequestState.INSTANT_DONE

    def test_instant_rs_coexists_with_reader_s(self, lm, reorg, reader, reader2):
        lm.request(reader2, BASE, S)
        lm.request(reorg, BASE, R)
        req = lm.request(reader, BASE, RS, instant=True)
        assert req.state is RequestState.WAITING
        lm.release(reorg, BASE, R)
        # Reader2's S lock alone does not block RS.
        assert req.state is RequestState.INSTANT_DONE

    def test_instant_ix_on_sidefile_during_switch(self, lm, reorg, reader):
        """Section 7.2: updater uses an instant IX to wait out the switch."""
        from repro.locks.resources import sidefile_lock

        lm.request(reorg, sidefile_lock(), X)
        req = lm.request(reader, sidefile_lock(), IX, instant=True)
        assert req.state is RequestState.WAITING
        lm.release(reorg, sidefile_lock(), X)
        assert req.state is RequestState.INSTANT_DONE

    def test_instant_waiter_does_not_block_later_requests(self, lm, reorg, reader, reader2):
        lm.request(reorg, BASE, R)
        lm.request(reader, BASE, RS, instant=True)
        req = lm.request(reader2, BASE, S)  # S is compatible with R
        assert req.state is RequestState.GRANTED


class TestConversions:
    def test_r_to_x_conversion_when_alone(self, lm, reorg):
        lm.request(reorg, BASE, R)
        req = lm.convert(reorg, BASE, X)
        assert req.state is RequestState.GRANTED
        assert lm.holds(reorg, BASE, X)
        assert not lm.holds(reorg, BASE, R)

    def test_conversion_waits_for_conflicting_holder(self, lm, reorg, reader):
        lm.request(reorg, BASE, R)
        lm.request(reader, BASE, S)
        req = lm.convert(reorg, BASE, X)
        assert req.state is RequestState.WAITING
        lm.release(reader, BASE, S)
        assert req.state is RequestState.GRANTED
        assert lm.holds(reorg, BASE, X)

    def test_conversion_has_priority_over_queued_requests(self, lm, reorg, reader, reader2):
        lm.request(reorg, BASE, R)
        lm.request(reader, BASE, S)
        lm.request(reader2, BASE, X)  # queued fresh request
        conv = lm.convert(reorg, BASE, X)
        lm.release(reader, BASE, S)
        assert conv.state is RequestState.GRANTED
        # The fresh X still waits for the converted X.
        assert lm.waiting_request(reader2) is not None

    def test_convert_without_lock_raises(self, lm, reader):
        with pytest.raises(LockNotHeldError):
            lm.convert(reader, BASE, X)

    def test_illegal_conversion_raises(self, lm, reader):
        lm.request(reader, BASE, X)
        with pytest.raises(LockProtocolViolation):
            lm.convert(reader, BASE, S)  # downgrade path not in lattice


class TestDeadlock:
    def test_no_deadlock_on_simple_wait(self, lm, reader, reorg):
        lm.request(reader, LEAF_A, S)
        lm.request(reorg, LEAF_A, RX)
        assert lm.find_deadlock_cycle() is None

    def test_paper_scenario_reorganizer_is_victim(self, lm, reader, reorg):
        """Section 4: reader holds A and wants B; the reorganizer holds RX
        on B and wants RX on A.  The reorganizer must yield."""
        deadlocked = []
        lm.request(reader, LEAF_A, S)
        lm.request(reorg, LEAF_B, RX)
        req = lm.request(
            reorg, LEAF_A, RX, on_deadlock=lambda r: deadlocked.append(r)
        )
        assert req.state is RequestState.WAITING
        # The reader's S on B conflicts with held RX -> it would back off in
        # the full protocol; to model a real cycle, give the reader a plain
        # waiting request on a resource the reorganizer holds.  Use the base
        # page: reader waits for reorganizer's X.
        lm.request(reorg, BASE, X)
        reader_req = lm.request(reader, BASE, S)
        assert reader_req.state is RequestState.WAITING
        victims = lm.resolve_deadlocks()
        assert victims == [reorg]
        assert req.state is RequestState.DEADLOCK
        assert deadlocked == [req]

    def test_user_only_cycle_youngest_is_victim(self, lm):
        a, b = Owner("a"), Owner("b")
        lm.request(a, LEAF_A, X)
        lm.request(b, LEAF_B, X)
        lm.request(a, LEAF_B, X)  # a waits on b
        lm.request(b, LEAF_A, X)  # b waits on a -> cycle; b's request is younger
        victims = lm.resolve_deadlocks()
        assert victims == [b]

    def test_victim_removal_unblocks_survivor(self, lm):
        a, b = Owner("a"), Owner("b")
        lm.request(a, LEAF_A, X)
        lm.request(b, LEAF_B, X)
        areq = lm.request(a, LEAF_B, X)
        lm.request(b, LEAF_A, X)
        lm.resolve_deadlocks()
        # b was the victim; once b releases its locks, a proceeds.
        lm.release_all(b)
        assert areq.state is RequestState.GRANTED

    def test_resolve_with_no_cycle_returns_empty(self, lm, reader):
        assert lm.resolve_deadlocks() == []

    def test_stats_count_deadlocks(self, lm):
        a, b = Owner("a"), Owner("b")
        lm.request(a, LEAF_A, X)
        lm.request(b, LEAF_B, X)
        lm.request(a, LEAF_B, X)
        lm.request(b, LEAF_A, X)
        lm.resolve_deadlocks()
        assert lm.stats.deadlocks == 1


class TestCancelAndCrash:
    def test_cancel_wait_removes_request(self, lm, reader, reader2):
        lm.request(reader, LEAF_A, X)
        req = lm.request(reader2, LEAF_A, X)
        lm.cancel_wait(reader2)
        assert req.state is RequestState.CANCELLED
        assert lm.waiters_of(LEAF_A) == []

    def test_cancel_unblocks_queue(self, lm):
        a, b, c = Owner("a"), Owner("b"), Owner("c")
        lm.request(a, LEAF_A, S)
        lm.request(b, LEAF_A, X)
        creq = lm.request(c, LEAF_A, S)  # behind the X
        lm.cancel_wait(b)
        assert creq.state is RequestState.GRANTED

    def test_crash_clears_everything(self, lm, reader):
        lm.request(reader, LEAF_A, X)
        lm.crash()
        assert lm.holders_of(LEAF_A) == {}

    def test_tree_lock_protocol(self, lm, reader, reorg):
        """Readers IS the tree, the reorganizer IX; both coexist."""
        t = tree_lock("old")
        assert lm.request(reader, t, IS).state is RequestState.GRANTED
        assert lm.request(reorg, t, IX).state is RequestState.GRANTED
        # At switch time an X on the tree waits for both.
        switcher = Owner("switcher", is_reorganizer=True)
        req = lm.request(switcher, t, X)
        assert req.state is RequestState.WAITING
        lm.release(reader, t, IS)
        lm.release(reorg, t, IX)
        assert req.state is RequestState.GRANTED


class TestDowngrade:
    def test_downgrade_s_to_is_admits_ix(self, lm, reader, reader2):
        """Section 4.1.2's record-locking pattern: after the page S is
        downgraded to IS, a record-level updater's IX is admitted."""
        lm.request(reader, LEAF_A, S)
        ix_request = lm.request(reader2, LEAF_A, IX)
        assert ix_request.state is RequestState.WAITING
        lm.downgrade(reader, LEAF_A, S, LockMode.IS)
        assert ix_request.state is RequestState.GRANTED
        assert lm.holds(reader, LEAF_A, LockMode.IS)
        assert not lm.holds(reader, LEAF_A, S)

    def test_downgrade_requires_held_mode(self, lm, reader):
        with pytest.raises(LockNotHeldError):
            lm.downgrade(reader, LEAF_A, S, LockMode.IS)

    def test_upgrade_via_downgrade_rejected(self, lm, reader):
        lm.request(reader, LEAF_A, LockMode.IS)
        with pytest.raises(LockProtocolViolation):
            lm.downgrade(reader, LEAF_A, LockMode.IS, S)

    def test_downgrade_x_to_s_admits_readers(self, lm, reader, reader2):
        lm.request(reader, LEAF_A, X)
        s_request = lm.request(reader2, LEAF_A, S)
        assert s_request.state is RequestState.WAITING
        lm.downgrade(reader, LEAF_A, X, S)
        assert s_request.state is RequestState.GRANTED
