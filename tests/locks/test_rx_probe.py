"""``LockManager.rx_is_held`` edge cases — the PR 6 probe contract.

The optimistic read path probes RX before every lock-free page visit.
The contract: the probe reflects *granted* RX locks only (a queued RX
request or an instant-RS interaction must not flip it), and it is never
itself a lock-manager request — no ``stats`` movement, under both the
locked and the optimistic read dispatch.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.btree.protocols import reader_search
from repro.config import TreeConfig
from repro.db import Database
from repro.errors import RXConflictError
from repro.locks.manager import LockManager, RequestState
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler


def _stats_snapshot(lm: LockManager) -> dict:
    return dataclasses.asdict(lm.stats)


def test_probe_on_untouched_resource_is_false_and_free():
    lm = LockManager()
    before = _stats_snapshot(lm)
    assert lm.rx_is_held(page_lock(1)) is False
    assert _stats_snapshot(lm) == before, "the probe is not a request"


def test_probe_tracks_grant_and_release():
    lm = LockManager()
    res = page_lock(2)
    request = lm.request("reorg", res, LockMode.RX)
    assert request.state is RequestState.GRANTED
    assert lm.rx_is_held(res) is True
    lm.release("reorg", res, LockMode.RX)
    assert lm.rx_is_held(res) is False


def test_queued_rx_request_does_not_flip_the_probe():
    """An RX request waiting behind an S holder is not *held* RX: the
    probe stays False until the grant, and probing is stats-neutral."""
    lm = LockManager()
    res = page_lock(3)
    lm.request("reader", res, LockMode.S)
    rx = lm.request("reorg", res, LockMode.RX)
    assert rx.state is RequestState.WAITING
    before = _stats_snapshot(lm)
    for _ in range(3):
        assert lm.rx_is_held(res) is False
    assert _stats_snapshot(lm) == before
    # The S release grants the queued RX; only now does the probe flip.
    lm.release("reader", res, LockMode.S)
    assert rx.state is RequestState.GRANTED
    assert lm.rx_is_held(res) is True


def test_instant_rs_leaves_no_holder_for_the_probe():
    """INSTANT_DONE RS never creates holder state — the paper's 'never
    actually granted' — so the probe cannot observe it."""
    lm = LockManager()
    res = page_lock(4)
    rs = lm.request("reader", res, LockMode.RS, instant=True)
    assert rs.state is RequestState.INSTANT_DONE
    before = _stats_snapshot(lm)
    assert lm.rx_is_held(res) is False
    assert _stats_snapshot(lm) == before


def test_instant_rs_conversion_against_held_rx():
    """The give-up path: a reader that hits RX converts its access into an
    instant-RS request on the base page.  The probe sees the RX the whole
    time, and probing neither counts as a request nor as an RX rejection —
    only the real RS request moves stats."""
    lm = LockManager()
    leaf, base = page_lock(5), page_lock(6)
    lm.request("reorg", leaf, LockMode.RX)
    lm.request("reorg", base, LockMode.R)
    assert lm.rx_is_held(leaf) is True
    assert lm.rx_is_held(base) is False

    before = _stats_snapshot(lm)
    for _ in range(4):
        lm.rx_is_held(leaf)
        lm.rx_is_held(base)
    assert _stats_snapshot(lm) == before

    # RS is incompatible with the held R: the instant request waits.
    rs = lm.request("reader", base, LockMode.RS, instant=True)
    assert rs.state is RequestState.WAITING
    after = _stats_snapshot(lm)
    assert after["requests"] == before["requests"] + 1, (
        "exactly the RS request — probes contributed nothing"
    )
    assert lm.rx_is_held(base) is False, "a waiting RS never shows as RX"

    # Direct S on the RX-held leaf is the forgo signal; still no probe cost.
    with pytest.raises(RXConflictError):
        lm.request("reader", leaf, LockMode.S)
    assert lm.rx_is_held(leaf) is True


def _reader_world(*, optimistic: bool) -> tuple[Database, Scheduler]:
    db = Database(
        TreeConfig(
            leaf_capacity=4,
            internal_capacity=4,
            leaf_extent_pages=64,
            internal_extent_pages=32,
            buffer_pool_pages=64,
            optimistic_reads=optimistic,
        )
    )
    db.bulk_load_tree([Record(k, f"v{k}") for k in range(0, 30, 2)], leaf_fill=0.5)
    db.flush()
    scheduler = Scheduler(
        db.locks, store=db.store, log=db.log, io_time=1.0, hit_time=0.05
    )
    return db, scheduler


def test_probe_is_not_a_request_under_optimistic_dispatch():
    db, scheduler = _reader_world(optimistic=True)
    scheduler.spawn(reader_search(db, "primary", 10, think=0.05), name="r")
    scheduler.run()
    assert not scheduler.failed
    assert db.locks.stats.requests == 0, (
        "a lock-free read generates probe traffic only"
    )


def test_locked_dispatch_still_pays_requests():
    db, scheduler = _reader_world(optimistic=False)
    scheduler.spawn(reader_search(db, "primary", 10, think=0.05), name="r")
    scheduler.run()
    assert not scheduler.failed
    assert db.locks.stats.requests > 0
