"""Tests for the Database facade, configuration validation and errors."""

import pytest

from repro.config import FreeSpacePolicy, ReorgConfig, SidePointerKind, TreeConfig
from repro.db import Database
from repro.errors import BTreeError, ReproError
from repro.storage.page import Record


class TestTreeConfigValidation:
    def test_defaults_are_valid(self):
        TreeConfig()
        ReorgConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(leaf_capacity=1),
            dict(internal_capacity=2),
            dict(leaf_extent_pages=0),
            dict(internal_extent_pages=0),
            dict(buffer_pool_pages=2),
            dict(seek_cost=0.5),
        ],
    )
    def test_invalid_tree_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TreeConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(target_fill=0.0),
            dict(target_fill=1.5),
            dict(internal_fill=0.0),
            dict(stable_point_interval=0),
            dict(max_unit_output_pages=0),
        ],
    )
    def test_invalid_reorg_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReorgConfig(**kwargs)

    def test_configs_are_frozen(self):
        config = TreeConfig()
        with pytest.raises(AttributeError):
            config.leaf_capacity = 99

    def test_enums_round_trip(self):
        assert FreeSpacePolicy("paper") is FreeSpacePolicy.PAPER
        assert SidePointerKind("two_way") is SidePointerKind.TWO_WAY


def small_db():
    return Database(
        TreeConfig(
            leaf_capacity=4,
            internal_capacity=4,
            leaf_extent_pages=64,
            internal_extent_pages=32,
        )
    )


class TestDatabaseFacade:
    def test_create_and_attach_tree(self):
        db = small_db()
        db.create_tree("a")
        assert db.has_tree("a")
        assert not db.has_tree("b")
        assert db.tree("a").record_count() == 0

    def test_bulk_load_and_lookup(self):
        db = small_db()
        tree = db.bulk_load_tree([Record(k) for k in range(20)])
        assert tree.search(7) is not None

    def test_drop_tree_name(self):
        db = small_db()
        db.create_tree("victim")
        db.drop_tree_name("victim")
        assert not db.has_tree("victim")
        with pytest.raises(BTreeError):
            db.tree("victim")

    def test_flush_makes_everything_durable(self):
        db = small_db()
        tree = db.bulk_load_tree([Record(k) for k in range(20)])
        db.flush()
        db.crash()
        report = db.recover()
        assert report.redo_applied >= 0
        assert db.tree().record_count() == 20

    def test_crash_counts(self):
        db = small_db()
        db.create_tree()
        db.flush()
        db.crash()
        db.recover()
        db.crash()
        db.recover()
        assert db.crashes == 2

    def test_checkpoint_returns_lsn(self):
        db = small_db()
        db.create_tree()
        lsn = db.checkpoint()
        assert lsn == db.log.last_checkpoint_lsn
        assert db.log.flushed_lsn >= lsn

    def test_recover_restores_pass3_state(self):
        db = small_db()
        db.create_tree()
        db.pass3.reorg_bit = True
        db.pass3.stable_key = 42
        db.pass3.side_file_entries.append((1, 2, "insert"))
        db.checkpoint()
        db.crash()
        db.recover()
        assert db.pass3.reorg_bit
        assert db.pass3.stable_key == 42
        assert db.pass3.side_file_entries == [(1, 2, "insert")]


class TestErrorHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        import inspect

        import repro.errors as errors

        for name, cls in inspect.getmembers(errors, inspect.isclass):
            if cls.__module__ != "repro.errors":
                continue
            assert issubclass(cls, ReproError), name

    def test_public_api_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
