"""Make ``tools/reprolint`` importable for the static-analysis tests.

The lint engine is developer tooling, not part of the library, so it lives
under ``tools/`` and is not on the normal ``PYTHONPATH=src`` path.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS = str(REPO_ROOT / "tools")
if TOOLS not in sys.path:
    sys.path.insert(0, TOOLS)


class SanProbe:
    """View of an installed sanitizer scoped to one test: diagnostics are
    counted from the probe's creation, so a session-wide sanitizer (the
    ``REPRO_SANITIZER=1`` fixture) does not leak earlier observations into
    this test's assertions."""

    def __init__(self, instance):
        self.instance = instance
        self._start = len(instance.diagnostics)

    @property
    def checks(self):
        return self.instance.checks

    @property
    def new(self):
        return self.instance.diagnostics[self._start:]

    def new_violations(self, kind=None):
        return [
            d
            for d in self.new
            if d.severity == "violation" and (kind is None or d.kind == kind)
        ]

    def new_warnings(self, kind=None):
        return [
            d
            for d in self.new
            if d.severity == "warning" and (kind is None or d.kind == kind)
        ]

    def suspended(self):
        return self.instance.suspended()


@pytest.fixture
def san():
    """Install the sanitizer for one test (reusing and preserving a
    pre-installed session-level instance) and hand out a scoped probe."""
    from repro.analysis import sanitizer

    pre = sanitizer.active()
    probe = SanProbe(sanitizer.install())
    yield probe
    if pre is None:
        sanitizer.uninstall()
