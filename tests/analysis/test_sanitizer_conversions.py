"""Lock conversion edge cases under the sanitizer's eye (ISSUE satellite):
R->X and S->X conversions racing a queued RX request, and instant-duration
RS during RX back-off.  The sanitizer validates the holder table after
every transition, so these double as Table-1 audits of the conversion
machinery."""

import pytest

from repro.analysis import sanitizer
from repro.locks.manager import LockManager, RequestState
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock

S, X, R, RX, RS = (
    LockMode.S, LockMode.X, LockMode.R, LockMode.RX, LockMode.RS,
)

BASE = page_lock(100)
LEAF = page_lock(200)


class Owner:
    def __init__(self, name, is_reorganizer=False):
        self.name = name
        self.is_reorganizer = is_reorganizer

    def __repr__(self):
        return self.name


@pytest.fixture
def lm(san):
    return LockManager()


@pytest.fixture
def reorg():
    return Owner("reorg", is_reorganizer=True)


@pytest.fixture
def user():
    return Owner("user")


@pytest.fixture
def user2():
    return Owner("user2")


class TestConversionRacingQueuedRX:
    def test_s_to_x_converts_ahead_of_queued_rx(self, san, lm, reorg, user):
        """An updater's S->X conversion must win over the reorganizer's
        queued RX: conversions queue ahead of fresh requests, and the
        holder table must stay Table-1 clean at every step."""
        lm.request(user, LEAF, S)
        rx = lm.request(reorg, LEAF, RX)  # S vs RX: No -> queued, not forgone
        assert rx.state is RequestState.WAITING

        conv = lm.convert(user, LEAF, X)  # only holder: converts in place
        assert conv.state is RequestState.GRANTED
        assert lm.holds(user, LEAF, X)
        assert not lm.holds(user, LEAF, S)
        assert rx.state is RequestState.WAITING  # still parked behind the X

        lm.release(user, LEAF, X)
        assert rx.state is RequestState.GRANTED
        assert lm.holds(reorg, LEAF, RX)
        assert san.new_violations("lock-table") == []
        assert san.checks["lock-table"] > 0

    def test_s_to_x_conversion_waits_for_second_reader_then_beats_rx(
        self, san, lm, reorg, user, user2
    ):
        """With two S holders, the conversion waits for the other reader
        but still dispatches ahead of the queued RX when it drains."""
        lm.request(user, LEAF, S)
        lm.request(user2, LEAF, S)
        rx = lm.request(reorg, LEAF, RX)
        conv = lm.convert(user, LEAF, X)
        assert conv.state is RequestState.WAITING
        # Conversions are inserted ahead of fresh requests in the queue.
        queue = lm.waiters_of(LEAF)
        assert queue.index(conv) < queue.index(rx)

        lm.release(user2, LEAF, S)
        assert conv.state is RequestState.GRANTED
        assert rx.state is RequestState.WAITING
        lm.release_all(user)
        assert rx.state is RequestState.GRANTED
        assert san.new_violations("lock-table") == []

    def test_r_to_x_converts_while_rx_queued_elsewhere(
        self, san, lm, reorg, user
    ):
        """The reorganizer's base-page R->X (key-update step) races its own
        queued leaf RX; neither transition may corrupt the holder table."""
        lm.request(reorg, BASE, R)
        lm.request(user, LEAF, S)
        rx = lm.request(reorg, LEAF, RX)  # queued behind the user's S
        conv = lm.convert(reorg, BASE, X)
        assert conv.state is RequestState.GRANTED
        assert lm.holds(reorg, BASE, X)
        assert rx.state is RequestState.WAITING

        lm.downgrade(reorg, BASE, X, R)
        assert lm.holds(reorg, BASE, R)
        lm.release(user, LEAF, S)
        assert rx.state is RequestState.GRANTED
        assert san.new_violations("lock-table") == []


class TestInstantRSDuringBackoff:
    def test_rs_waits_for_reorganizer_r_and_is_never_held(
        self, san, lm, reorg, user
    ):
        """Back-off: the forgoing user asks for instant RS on the base
        page; it completes only when the reorganizer drops R, and must
        never appear in the holder table (the sanitizer would raise)."""
        lm.request(reorg, BASE, R)
        rs = lm.request(user, BASE, RS, instant=True)
        assert rs.state is RequestState.WAITING

        lm.release(reorg, BASE, R)
        assert rs.state is RequestState.INSTANT_DONE
        assert lm.held_modes(user, BASE) == []
        assert lm.holders_of(BASE) == {}
        assert san.new_violations("lock-table") == []

    def test_rs_instant_done_immediately_when_base_is_free(
        self, san, lm, user
    ):
        rs = lm.request(user, BASE, RS, instant=True)
        assert rs.state is RequestState.INSTANT_DONE
        assert lm.holders_of(BASE) == {}

    def test_rs_during_conversion_window(self, san, lm, reorg, user):
        """RS requested while the reorganizer holds the short X window
        (base-page key update) completes only after the downgrade chain
        releases the base page."""
        lm.request(reorg, BASE, R)
        lm.convert(reorg, BASE, X)
        rs = lm.request(user, BASE, RS, instant=True)
        assert rs.state is RequestState.WAITING  # RS waits for R and X

        lm.downgrade(reorg, BASE, X, R)
        assert rs.state is RequestState.WAITING  # R still blocks RS
        lm.release(reorg, BASE, R)
        assert rs.state is RequestState.INSTANT_DONE
        assert san.new_violations("lock-table") == []
