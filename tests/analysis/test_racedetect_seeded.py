"""Seeded-bug tests: a deliberately removed lock acquire is caught in ONE run.

This is the tentpole claim of the race detector (docs/static_analysis.md):
reprocheck needs to *explore* its way onto a schedule that makes a missing
lock corrupt an invariant, while the lockset + happens-before detector
flags the unprotected access on any single execution that merely
*performs* it.  Each test strips one lock mode out of a reorg pass via a
generator middleman, runs the default schedule once, and asserts a report;
the unmodified control world must stay silent.
"""

from __future__ import annotations

import pytest

from repro.analysis.racedetect import active, install, uninstall
from repro.btree.protocols import reader_search, updater_insert
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.locks.modes import LockMode
from repro.locks.resources import PAGE
from repro.reorg.protocols import ReorgProtocol
from repro.sim.workload import build_sparse_tree
from repro.storage.page import Record
from repro.txn.ops import Acquire, Release
from repro.txn.scheduler import Scheduler


def strip_page_locks(gen, mode):
    """Swallow Acquire/Release of ``mode`` on page locks — the seeded bug.

    Everything else (Calls, Thinks, other lock modes, tree locks) is
    forwarded unchanged, so the protocol still *does* all its work — it
    just no longer holds this one lock while doing it.
    """
    send = None
    throw = None
    while True:
        try:
            op = gen.throw(throw) if throw is not None else gen.send(send)
        except StopIteration as stop:
            return stop.value
        throw = None
        if (
            isinstance(op, (Acquire, Release))
            and op.mode is mode
            and isinstance(op.resource, tuple)
            and op.resource[0] == PAGE
        ):
            send = None
            continue
        try:
            send = yield op
        except BaseException as exc:  # scheduler-thrown (deadlock, abort)
            send, throw = None, exc


@pytest.fixture
def detector():
    session_det = active()
    if session_det is not None:
        # REPRO_RACE=1 installs the detector suite-wide; reuse it rather
        # than cycling the patches, and isolate this test's reports.
        session_det.reports.clear()
        session_det._seen.clear()
        session_det.checks.clear()
        yield session_det
        session_det.reports.clear()
        session_det._seen.clear()
        return
    det = install(strict=False)
    yield det
    uninstall()


def _build_db(**overrides) -> tuple[Database, frozenset[int]]:
    config = TreeConfig(
        leaf_capacity=4,
        internal_capacity=4,
        leaf_extent_pages=64,
        internal_extent_pages=32,
        buffer_pool_pages=overrides.pop("buffer_pool_pages", 16),
    )
    db = Database(config)
    build_sparse_tree(db, **overrides)
    db.flush()
    db.checkpoint()
    return db, frozenset(record.key for record in db.tree().items())


def _scheduler(db: Database) -> Scheduler:
    return Scheduler(db.locks, store=db.store, log=db.log, io_time=1.0, hit_time=0.05)


# -- pass 1: leaf compaction without its RX locks -----------------------------------


def _run_pass1_world(*, seeded: bool) -> Scheduler:
    db, initial = _build_db(n_records=24, fill_after=0.45, seed=5)
    scheduler = _scheduler(db)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(do_swap_pass=False),
        op_duration=0.4, unit_pause=0.1,
    )
    gen = protocol.pass1()
    if seeded:
        gen = strip_page_locks(gen, LockMode.RX)
    scheduler.spawn(gen, name="reorganizer", is_reorganizer=True)
    keys = sorted(initial)
    for index, key in enumerate([keys[1], keys[len(keys) // 2], keys[-2]]):
        scheduler.spawn(
            reader_search(db, "primary", key, think=0.05),
            name=f"reader-{index}", at=0.3 + 0.4 * index,
        )
    scheduler.run()
    return scheduler


def test_pass1_missing_rx_is_caught_in_one_run(detector):
    scheduler = _run_pass1_world(seeded=True)
    assert not scheduler.failed
    assert detector.reports, "stripped RX must race the locked readers"
    pages = {report.page_id for report in detector.reports}
    kinds = {report.kind for report in detector.reports}
    assert kinds <= {"read-write", "write-write", "unvalidated-read"}
    # Evidence is attached: both sites and the vector-clock explanation.
    for report in detector.reports:
        assert report.earlier.site and report.later.site
        assert "VC evidence" in report.evidence
        assert report.page_id in pages


def test_pass1_clean_control_is_silent(detector):
    scheduler = _run_pass1_world(seeded=False)
    assert not scheduler.failed
    assert detector.reports == []


# -- pass 3: base-page scan without its S locks -------------------------------------


def _run_pass3_world(*, seeded: bool) -> Scheduler:
    # A larger pool than the reprocheck worlds: eviction-pressure flushes
    # are WAL synchronization events and would (legitimately) order the
    # updaters before the scan, masking the seeded bug.
    db, initial = _build_db(
        n_records=40, fill_after=0.5, seed=7, buffer_pool_pages=128
    )
    scheduler = _scheduler(db)
    protocol = ReorgProtocol(
        db, "primary",
        ReorgConfig(do_swap_pass=False, stable_point_interval=100),
        scan_pause=0.8,
    )
    gen = protocol.pass3()
    if seeded:
        gen = strip_page_locks(gen, LockMode.S)
    scheduler.spawn(gen, name="reorganizer", is_reorganizer=True)
    # Tail inserts overflow the rightmost leaf (capacity 4): the third
    # insert splits it and writes its *base* page under X mid-scan —
    # exactly the write the stripped S lock was protecting against.
    top = max(initial)
    for index, key in enumerate([top + 1 + i for i in range(5)]):
        scheduler.spawn(
            updater_insert(db, "primary", Record(key, "w"), think=0.05),
            name=f"insert-{index}", at=0.5 + 0.5 * index,
        )
    scheduler.run()
    return scheduler


def test_pass3_missing_s_is_caught_in_one_run(detector):
    scheduler = _run_pass3_world(seeded=True)
    assert not scheduler.failed
    assert detector.reports, "stripped S must race the structural updaters"
    report = detector.reports[0]
    assert report.kind == "unvalidated-read"
    assert "strip_page_locks" in report.earlier.site or "protocols" in report.earlier.site
    assert "_structural_update" in report.later.site
    assert "VC evidence" in report.evidence


def test_pass3_clean_control_is_silent(detector):
    scheduler = _run_pass3_world(seeded=False)
    assert not scheduler.failed
    assert detector.reports == []
