"""The schedule-exploration model checker: determinism, pruning, replay,
and — the point of the whole exercise — seeded protocol bugs being caught
with a replayable trace."""

import pytest

# conftest side effect: tools/ on sys.path for the reprocheck registry.
from tests.analysis.conftest import REPO_ROOT  # noqa: F401

import repro.locks.manager as lock_manager_module
from repro.analysis.explorer import (
    Explorer,
    TraceError,
    format_trace,
    parse_trace,
)
from repro.errors import LockProtocolViolation
from repro.locks.manager import LockManager
from repro.locks.modes import LockMode
from repro.txn.transaction import Transaction

from reprocheck.scenarios import SCENARIOS


@pytest.fixture
def no_sanitizer():
    """Suspend a session-wide runtime sanitizer (REPRO_SANITIZER=1): the
    seeded-bug tests below make the lock manager *misbehave on purpose*,
    and the explorer — not the sanitizer — must be the one to notice."""
    from repro.analysis import sanitizer

    instance = sanitizer.active()
    if instance is None:
        yield
        return
    with instance.suspended():
        yield


# -- trace format ------------------------------------------------------------------


def test_trace_roundtrip():
    for choices in ([], [0], [3, 0, 1, 17]):
        assert parse_trace(format_trace(choices)) == choices
    assert format_trace([]) == "t1:-"


def test_parse_trace_rejects_garbage():
    for bad in ("", "0.1.2", "t1:", "t1:a.b", "t1:-1", "v9:0.1"):
        with pytest.raises(TraceError):
            parse_trace(bad)


# -- deterministic execution --------------------------------------------------------


def test_native_schedule_is_deterministic():
    explorer = Explorer()
    scenario = SCENARIOS["reader-vs-pass1"]
    first = explorer.execute(scenario)
    second = explorer.execute(scenario)
    assert first.violation is None
    assert first.choices == second.choices
    assert [k for k, _ in first.exec_log] == [k for k, _ in second.exec_log]
    assert [t.name for t, _ in first.world.scheduler.completed] == [
        t.name for t, _ in second.world.scheduler.completed
    ]


def test_exploration_is_deterministic():
    scenario = SCENARIOS["reader-vs-pass1"]
    results = [
        Explorer().explore(scenario, max_schedules=40).to_dict()
        for _ in range(2)
    ]
    assert results[0] == results[1]


def test_explore_finds_many_distinct_schedules():
    result = Explorer().explore(SCENARIOS["reader-vs-pass1"], max_schedules=80)
    assert result.ok
    assert result.distinct_schedules >= 40
    assert result.max_depth >= 3


def test_reductions_only_prune():
    """Disabling DPOR + hash pruning never *removes* coverage — the
    unreduced exploration visits at least as many distinct schedules."""
    scenario = SCENARIOS["deadlock-victim"]
    reduced = Explorer().explore(scenario, max_schedules=200)
    full = Explorer(dpor=False, hash_pruning=False).explore(
        scenario, max_schedules=200
    )
    assert reduced.frontier_exhausted and full.frontier_exhausted
    assert full.distinct_schedules >= reduced.distinct_schedules
    assert reduced.ok and full.ok


def test_replay_with_unfitting_trace_is_strict():
    explorer = Explorer()
    with pytest.raises(TraceError):
        explorer.replay(SCENARIOS["reader-vs-pass1"], "t1:99")


# -- seeded bugs --------------------------------------------------------------------


def test_seeded_table1_bug_caught_with_replayable_trace(no_sanitizer, monkeypatch):
    """Mutate the lock manager to believe every mode pair is compatible:
    the explorer must catch the Table-1 violation (an S reader beside the
    reorganizer's RX) and hand back a trace that reproduces it in ONE
    run — and that is clean once the bug is fixed."""
    scenario = SCENARIOS["reader-vs-pass1"]
    explorer = Explorer()
    monkeypatch.setattr(
        lock_manager_module, "compatible", lambda granted, requested: True
    )
    result = explorer.explore(
        scenario, max_schedules=200, stop_on_first_violation=True
    )
    assert not result.ok
    violation = result.violations[0]
    assert violation.invariant == "table1-compat"
    assert "RX" in violation.message

    replayed = explorer.replay(scenario, violation.trace)
    assert replayed.violation is not None
    assert replayed.violation.invariant == "table1-compat"
    assert replayed.violation.trace == violation.trace

    monkeypatch.undo()
    clean = Explorer().replay(scenario, violation.trace)
    assert clean.violation is None


def test_seeded_victim_policy_bug_caught(no_sanitizer, monkeypatch):
    """Mutate victim choice to spare the reorganizer: the on_victim hook
    invariant must flag the first deadlock, with a replayable trace."""
    scenario = SCENARIOS["deadlock-victim"]

    def wrong_victim(self, cycle):
        for owner in cycle:
            if not getattr(owner, "is_reorganizer", False):
                return owner
        return cycle[0]

    monkeypatch.setattr(LockManager, "_choose_victim", wrong_victim)
    result = Explorer().explore(
        scenario, max_schedules=50, stop_on_first_violation=True
    )
    assert not result.ok
    violation = result.violations[0]
    assert violation.invariant == "victim-policy"

    replayed = Explorer().replay(scenario, violation.trace)
    assert replayed.violation is not None
    assert replayed.violation.invariant == "victim-policy"

    monkeypatch.undo()
    assert Explorer().replay(scenario, violation.trace).violation is None


# -- lock-manager choice-point hooks ------------------------------------------------


def _contended_lock_manager():
    lm = LockManager()
    holder = Transaction("holder")
    first = Transaction("first-waiter")
    second = Transaction("second-waiter")
    resource = ("page", 7)
    assert lm.request(holder, resource, LockMode.X).done
    assert not lm.request(first, resource, LockMode.X).done
    assert not lm.request(second, resource, LockMode.X).done
    return lm, holder, first, second, resource


def test_grant_order_hook_reorders_grants():
    lm, holder, first, second, resource = _contended_lock_manager()
    lm.grant_order = lambda res, queue: list(reversed(queue))
    lm.release(holder, resource, LockMode.X)
    assert lm.holds(second, resource, LockMode.X)
    assert not lm.holds(first, resource, LockMode.X)


def test_grant_order_default_is_fifo():
    lm, holder, first, second, resource = _contended_lock_manager()
    lm.release(holder, resource, LockMode.X)
    assert lm.holds(first, resource, LockMode.X)


def test_grant_order_must_be_a_permutation():
    lm, holder, first, second, resource = _contended_lock_manager()
    lm.grant_order = lambda res, queue: queue[:1]
    with pytest.raises(LockProtocolViolation, match="permutation"):
        lm.release(holder, resource, LockMode.X)


def test_hooks_default_off():
    lm = LockManager()
    assert lm.grant_order is None and lm.on_victim is None
    from repro.txn.scheduler import Scheduler

    assert Scheduler(LockManager()).pick_next is None
