"""Every reprolint rule fires on a seeded violation and stays quiet on the
corresponding clean idiom; suppression directives work as documented."""

import json
import subprocess
import sys
import textwrap

import pytest

from tests.analysis.conftest import REPO_ROOT

from reprolint.engine import all_rules, lint_source


def findings_for(path: str, source: str, *rules: str):
    return lint_source(
        path,
        textwrap.dedent(source),
        root=REPO_ROOT,
        rules=list(rules) or None,
    )


def rule_names(findings) -> set:
    return {f.rule for f in findings}


# -- page-internals -----------------------------------------------------------


class TestPageInternals:
    def test_fires_on_private_container_access(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def corrupt(page, record):
                page._records.append(record)
            """,
            "page-internals",
        )
        assert rule_names(found) == {"page-internals"}

    def test_fires_on_page_field_assignment(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def relink(leaf, other):
                leaf.next_leaf = other.page_id
            """,
            "page-internals",
        )
        assert rule_names(found) == {"page-internals"}

    def test_quiet_inside_storage_layer_and_wal_apply(self):
        source = """
        def mutate(page, record):
            page._records.append(record)
        """
        for path in ("src/repro/storage/seeded.py", "src/repro/wal/apply.py"):
            assert findings_for(path, source, "page-internals") == []

    def test_quiet_on_self_access(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            class Thing:
                def mutate(self, record):
                    self._records.append(record)
            """,
            "page-internals",
        )
        assert found == []


# -- lock-release-pairing -----------------------------------------------------


class TestLockReleasePairing:
    def test_fires_on_unpaired_request(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def grab(lm, owner, resource, mode):
                lm.request(owner, resource, mode)
            """,
            "lock-release-pairing",
        )
        assert rule_names(found) == {"lock-release-pairing"}

    def test_quiet_when_released_in_same_function(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def grab(lm, owner, resource, mode):
                lm.request(owner, resource, mode)
                lm.release(owner, resource, mode)
            """,
            "lock-release-pairing",
        )
        assert found == []

    def test_quiet_on_instant_requests(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def backoff(lm, owner, resource, mode):
                lm.request(owner, resource, mode, instant=True)
            """,
            "lock-release-pairing",
        )
        assert found == []

    def test_held_across_escape(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def grab(lm, owner, resource, mode):
                lm.request(owner, resource, mode)  # reprolint: held-across -- released by caller at unit end
            """,
            "lock-release-pairing",
        )
        assert found == []

    def test_quiet_when_conversion_present(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def upgrade(lm, owner, resource, s_mode, x_mode):
                lm.request(owner, resource, s_mode)
                lm.convert(owner, resource, x_mode)
            """,
            "lock-release-pairing",
        )
        assert found == []


# -- buffer-bypass ------------------------------------------------------------


class TestBufferBypass:
    def test_fires_on_direct_disk_write(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def stomp(disk, page):
                disk.write(page)
            """,
            "buffer-bypass",
        )
        assert rule_names(found) == {"buffer-bypass"}

    def test_fires_on_write_page(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def stomp(store, page):
                store.write_page(page)
            """,
            "buffer-bypass",
        )
        assert rule_names(found) == {"buffer-bypass"}

    def test_quiet_inside_storage_layer(self):
        found = findings_for(
            "src/repro/storage/seeded.py",
            """
            def flush(self, frame):
                self._disk.write(frame.page)
            """,
            "buffer-bypass",
        )
        assert found == []


# -- no-raw-disk-write --------------------------------------------------------


class TestNoRawDiskWrite:
    def test_fires_in_tests_outside_storage(self):
        found = findings_for(
            "tests/reorg/test_seeded.py",
            """
            def test_stomp(db, page):
                db.store.disk.write(page)
            """,
            "no-raw-disk-write",
        )
        assert rule_names(found) == {"no-raw-disk-write"}

    def test_fires_on_raw_batch_read_in_tools(self):
        found = findings_for(
            "tools/seeded_probe.py",
            """
            def probe(disk, ids):
                return disk.read_batch(ids)
            """,
            "no-raw-disk-write",
        )
        assert rule_names(found) == {"no-raw-disk-write"}

    def test_quiet_in_storage_tests(self):
        found = findings_for(
            "tests/storage/test_seeded.py",
            """
            def test_roundtrip(disk, page):
                disk.write(page)
                return disk.read(page.page_id)
            """,
            "no-raw-disk-write",
        )
        assert found == []

    def test_quiet_on_buffer_pool_idiom(self):
        found = findings_for(
            "tests/reorg/test_seeded.py",
            """
            def test_fetch(store, pid):
                return store.buffer.fetch(pid)
            """,
            "no-raw-disk-write",
        )
        assert found == []

    def test_suppression_with_reason_accepted(self):
        found = findings_for(
            "tests/analysis/test_seeded.py",
            """
            def test_catch(db, page):
                db.store.disk.write(page)  # reprolint: disable=no-raw-disk-write -- the raw write is the point
            """,
            "no-raw-disk-write",
        )
        assert found == []


# -- bare-except --------------------------------------------------------------


class TestBareExcept:
    def test_fires_everywhere_even_tests(self):
        source = """
        def swallow(fn):
            try:
                fn()
            except:
                pass
        """
        assert rule_names(
            findings_for("tests/seeded.py", source, "bare-except")
        ) == {"bare-except"}
        assert rule_names(
            findings_for("src/repro/seeded.py", source, "bare-except")
        ) == {"bare-except"}

    def test_quiet_on_typed_except(self):
        found = findings_for(
            "src/repro/seeded.py",
            """
            def swallow(fn):
                try:
                    fn()
                except ValueError:
                    pass
            """,
            "bare-except",
        )
        assert found == []


# -- perf-counters ------------------------------------------------------------


class TestPerfCounters:
    def test_fires_on_unregistered_counter(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def bump(_COUNTERS):
                _COUNTERS.nonexistent_counter += 1
            """,
            "perf-counters",
        )
        assert rule_names(found) == {"perf-counters"}

    def test_quiet_on_registered_counter(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def bump(_COUNTERS):
                _COUNTERS.buffer_hits += 1
            """,
            "perf-counters",
        )
        assert found == []

    def test_registry_is_read_from_perf_py(self):
        # Sanity-check the cross-file fact the rule depends on.
        from reprolint.rules import _perf_counter_slots

        slots = _perf_counter_slots(REPO_ROOT)
        assert "buffer_hits" in slots
        assert "wal_flush_skips" in slots
        assert "nonexistent_counter" not in slots


# -- public-annotations -------------------------------------------------------


class TestPublicAnnotations:
    def test_fires_on_unannotated_public_function(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def run_pass(during_scan=None):
                return during_scan
            """,
            "public-annotations",
        )
        assert rule_names(found) == {"public-annotations"}

    def test_quiet_on_private_nested_and_annotated(self):
        found = findings_for(
            "src/repro/locks/seeded.py",
            """
            def _helper(x):
                def nested(y):
                    return y
                return nested(x)

            class Manager:
                def release(self, owner: object, resource: object) -> None:
                    pass
            """,
            "public-annotations",
        )
        assert found == []

    def test_scoped_to_reorg_and_locks_only(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def run_pass(during_scan=None):
                return during_scan
            """,
            "public-annotations",
        )
        assert found == []


# -- rs-instant ---------------------------------------------------------------


class TestRSInstant:
    def test_fires_on_durable_rs(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def backoff(lm, owner, base):
                lm.request(owner, base, LockMode.RS)
            """,
            "rs-instant",
        )
        assert rule_names(found) >= {"rs-instant"}

    def test_fires_on_acquire_op_too(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def protocol(base):
                yield Acquire(base, RS)
            """,
            "rs-instant",
        )
        assert rule_names(found) == {"rs-instant"}

    def test_quiet_with_instant_true(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def protocol(base):
                yield Acquire(base, RS, instant=True)
            """,
            "rs-instant",
        )
        assert found == []


# -- mark-dirty-lsn -----------------------------------------------------------


class TestMarkDirtyLSN:
    def test_fires_without_lsn(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def dirty(store, pid):
                store.mark_dirty(pid)
            """,
            "mark-dirty-lsn",
        )
        assert rule_names(found) == {"mark-dirty-lsn"}

    def test_quiet_with_lsn(self):
        source = """
        def dirty(store, pid, lsn):
            store.mark_dirty(pid, lsn)
            store.mark_dirty(pid, lsn=lsn)
        """
        assert findings_for(
            "src/repro/btree/seeded.py", source, "mark-dirty-lsn"
        ) == []

    def test_quiet_inside_storage(self):
        found = findings_for(
            "src/repro/storage/seeded.py",
            """
            def dirty(self, pid):
                self.buffer.mark_dirty(pid)
            """,
            "mark-dirty-lsn",
        )
        assert found == []


# -- lockmode-literal ---------------------------------------------------------


class TestLockModeLiteral:
    def test_fires_on_string_mode_compare(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def is_exclusive(request):
                return request.mode == "X"
            """,
            "lockmode-literal",
        )
        assert rule_names(found) == {"lockmode-literal"}

    def test_fires_on_string_construction(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def parse(LockMode):
                return LockMode("RX")
            """,
            "lockmode-literal",
        )
        assert rule_names(found) == {"lockmode-literal"}

    def test_quiet_on_member_compare(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def is_exclusive(request, LockMode):
                return request.mode is LockMode.X
            """,
            "lockmode-literal",
        )
        assert found == []


# -- suppression-reason -------------------------------------------------------


class TestSuppressionReason:
    def test_fires_on_reasonless_directive(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def swallow(fn):
                try:
                    fn()
                except:  # reprolint: disable=bare-except
                    pass
            """,
            "bare-except",
            "suppression-reason",
        )
        # The disable still works, but the missing reason is flagged.
        assert rule_names(found) == {"suppression-reason"}

    def test_quiet_with_reason(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def swallow(fn):
                try:
                    fn()
                except:  # reprolint: disable=bare-except -- fuzz harness must survive anything
                    pass
            """,
            "bare-except",
            "suppression-reason",
        )
        assert found == []


# -- choice-point-registered --------------------------------------------------


class TestChoicePointRegistered:
    def test_fires_on_direct_lock_request_in_reorg_generator(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def pass1(self):
                for page_id in self.plan:
                    self.db.locks.request(self.txn, ("page", page_id), LockMode.RS)
                    yield Think(self.unit_pause)
            """,
            "choice-point-registered",
        )
        assert rule_names(found) == {"choice-point-registered"}
        assert "Acquire" in found[0].message

    def test_fires_on_convert_and_sleep(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def pass3(self):
                lm = self.db.locks
                lm.convert(self.txn, ("tree", "primary"), LockMode.RX)
                time.sleep(self.unit_pause)
                yield ReleaseAll()
            """,
            "choice-point-registered",
        )
        assert len(found) == 2
        assert rule_names(found) == {"choice-point-registered"}

    def test_quiet_on_yielded_ops(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def pass1(self):
                for page_id in self.plan:
                    yield Acquire(("page", page_id), LockMode.RS)
                    yield Think(self.unit_pause)
                yield Convert(("tree", "primary"), LockMode.RX)
            """,
            "choice-point-registered",
        )
        assert found == []

    def test_quiet_in_synchronous_helpers(self):
        # Non-generator code (recovery, planning) runs outside the
        # scheduler; direct lock-manager calls there are legitimate.
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def forward_recover(self, report):
                self.db.locks.request(self.txn, ("tree", "primary"), LockMode.X)
            """,
            "choice-point-registered",
        )
        assert found == []

    def test_quiet_outside_reorg_package(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def walker(self):
                self.db.locks.request(self.txn, ("page", 1), LockMode.S)
                yield Think(0.1)
            """,
            "choice-point-registered",
        )
        assert found == []

    def test_suppression_with_reason_works(self):
        found = findings_for(
            "src/repro/reorg/seeded.py",
            """
            def pass1(self):
                self.db.locks.request(self.txn, ("page", 1), LockMode.RS)  # reprolint: disable=choice-point-registered -- instant-grant RS probe
                yield Think(0.1)
            """,
            "choice-point-registered",
            "suppression-reason",
        )
        assert found == []


# -- shard-router-only --------------------------------------------------------


class TestShardRouterOnly:
    def test_fires_on_database_tree_call(self):
        found = findings_for(
            "src/repro/shard/seeded.py",
            """
            def leak(db):
                return db.tree()
            """,
            "shard-router-only",
        )
        assert rule_names(found) == {"shard-router-only"}

    def test_fires_on_attribute_receiver(self):
        found = findings_for(
            "src/repro/shard/seeded.py",
            """
            class Facade:
                def leak(self):
                    return self._db.tree("primary")
            """,
            "shard-router-only",
        )
        assert rule_names(found) == {"shard-router-only"}

    def test_quiet_on_handle_access_and_attach(self):
        found = findings_for(
            "src/repro/shard/seeded.py",
            """
            def route(handle, store, log):
                tree = handle.tree()
                other = BPlusTree.attach(store, log, name="shard0")
                return tree, other
            """,
            "shard-router-only",
        )
        assert found == []

    def test_scoped_to_shard_package_only(self):
        source = """
        def fine(db):
            return db.tree()
        """
        for path in ("src/repro/sim/seeded.py", "tests/shard/seeded.py"):
            assert findings_for(path, source, "shard-router-only") == []

    def test_shard_package_is_clean(self):
        from reprolint.engine import lint_paths

        found = lint_paths(
            ["src/repro/shard"], root=REPO_ROOT, rules=["shard-router-only"]
        )
        assert found == []


# -- optimistic-lock-free -----------------------------------------------------


class TestOptimisticLockFree:
    def test_fires_on_acquire_op_in_optimistic_function(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def _optimistic_sneaky_search(db, tree_name, key):
                yield Acquire(page_lock(1), LockMode.S)
            """,
            "optimistic-lock-free",
        )
        assert rule_names(found) == {"optimistic-lock-free"}

    def test_fires_on_synchronous_lock_request(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def _optimistic_probe(db, resource, mode):
                db.locks.request(db.txn, resource, mode)
            """,
            "optimistic-lock-free",
        )
        assert rule_names(found) == {"optimistic-lock-free"}

    def test_fires_on_direct_locked_protocol_call(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def _optimistic_reader(db, tree_name, key):
                return (yield from _locked_reader_search(db, tree_name, key))
            """,
            "optimistic-lock-free",
        )
        assert rule_names(found) == {"optimistic-lock-free"}

    def test_quiet_on_downgrade_helper_and_validation(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def _optimistic_reader(db, tree_name, key):
                if db.locks.rx_is_held(page_lock(1)):
                    return (
                        yield from _optimistic_downgrade(
                            db, tree_name, _locked_reader_search, key
                        )
                    )
                yield FetchPage(1)

            def _optimistic_downgrade(db, tree_name, locked_protocol, *args):
                return (yield from locked_protocol(db, tree_name, *args))
            """,
            "optimistic-lock-free",
        )
        assert found == []

    def test_quiet_outside_read_path_modules(self):
        source = """
        def _optimistic_thing(lm, owner, resource, mode):
            lm.request(owner, resource, mode)
            lm.release(owner, resource, mode)
        """
        for path in ("src/repro/reorg/seeded.py", "tests/btree/seeded.py"):
            assert findings_for(path, source, "optimistic-lock-free") == []

    def test_read_path_modules_are_clean(self):
        from reprolint.engine import lint_paths

        found = lint_paths(
            ["src/repro/btree", "src/repro/shard"],
            root=REPO_ROOT,
            rules=["optimistic-lock-free"],
        )
        assert found == []


# -- engine behaviour ---------------------------------------------------------


class TestEngine:
    def test_syntax_error_is_a_finding_not_a_crash(self):
        found = findings_for("src/repro/broken.py", "def broken(:\n")
        assert rule_names(found) == {"syntax-error"}

    def test_disable_file_suppresses_everywhere(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            # reprolint: disable-file=bare-except -- seeded corpus file
            def swallow(fn):
                try:
                    fn()
                except:
                    pass
            """,
            "bare-except",
        )
        assert found == []

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            findings_for("src/repro/x.py", "x = 1\n", "no-such-rule")

    def test_catalogue_has_at_least_eight_rules(self):
        names = {rule.name for rule in all_rules()}
        assert len(names) >= 8
        assert {
            "page-internals",
            "lock-release-pairing",
            "buffer-bypass",
            "bare-except",
            "perf-counters",
            "public-annotations",
        } <= names

    def test_findings_sorted_and_serializable(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def bad(disk, page, store, pid):
                store.mark_dirty(pid)
                disk.write(page)
            """,
        )
        assert [f.line for f in found] == sorted(f.line for f in found)
        for finding in found:
            as_dict = finding.to_dict()
            assert set(as_dict) == {
                "rule", "path", "line", "col", "message", "severity",
            }
            assert str(finding).startswith("src/repro/btree/seeded.py:")


# -- stale-suppression --------------------------------------------------------


class TestStaleSuppression:
    def test_stale_line_suppression_is_flagged(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def tidy():
                return 1  # reprolint: disable=bare-except -- left over
            """,
        )
        assert rule_names(found) == {"stale-suppression"}
        assert "bare-except" in found[0].message
        assert found[0].line == 3

    def test_live_line_suppression_stays_quiet(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def swallow(fn):
                try:
                    fn()
                except:  # reprolint: disable=bare-except -- must survive
                    pass
            """,
        )
        assert found == []

    def test_half_stale_directive_names_only_the_dead_rule(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def swallow(fn):
                try:
                    fn()
                except:  # reprolint: disable=bare-except,buffer-bypass -- one lives
                    pass
            """,
        )
        assert rule_names(found) == {"stale-suppression"}
        assert "buffer-bypass" in found[0].message
        assert "bare-except" not in found[0].message

    def test_stale_bare_disable_mentions_any_rule(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def tidy():
                return 1  # reprolint: disable -- blanket silence
            """,
        )
        assert rule_names(found) == {"stale-suppression"}
        assert "any rule" in found[0].message

    def test_stale_file_wide_suppression_points_at_the_directive(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            # reprolint: disable-file=bare-except -- corpus file, allegedly
            def tidy():
                return 1
            """,
        )
        assert rule_names(found) == {"stale-suppression"}
        assert found[0].line == 2
        assert "file-wide" in found[0].message

    def test_live_file_wide_suppression_stays_quiet(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            # reprolint: disable-file=bare-except -- seeded corpus file
            def swallow(fn):
                try:
                    fn()
                except:
                    pass
            """,
        )
        assert found == []

    def test_partial_rule_runs_never_judge_staleness(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def tidy():
                return 1  # reprolint: disable=bare-except -- left over
            """,
            "bare-except",
        )
        assert found == [], (
            "a deselected rule not firing is not evidence of staleness"
        )

    def test_held_across_escape_is_never_stale(self):
        found = findings_for(
            "src/repro/wal/seeded.py",
            """
            def pass1_start(self):
                yield Acquire(("page", 1), LockMode.RX)  # reprolint: held-across -- released by pass 3
            """,
        )
        assert found == [], (
            "held-across is consumed inside lock-release-pairing; the "
            "engine cannot observe its use and must not flag it"
        )

    def test_stale_finding_is_itself_suppressible(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def tidy():
                return 1  # reprolint: disable=bare-except,stale-suppression -- kept for a pending revert
            """,
        )
        assert found == []

    def test_stale_suppression_is_in_the_catalogue(self):
        assert "stale-suppression" in {rule.name for rule in all_rules()}


# -- CLI ----------------------------------------------------------------------


class TestCLI:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "reprolint", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "tools", "PATH": "/usr/bin:/bin"},
        )

    def test_exit_zero_on_clean_file(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def fine() -> int:\n    return 1\n")
        proc = self._run(str(clean))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_exit_one_and_json_on_findings(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("try:\n    pass\nexcept:\n    pass\n")
        proc = self._run("--json", str(dirty))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload and payload[0]["rule"] == "bare-except"

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        assert "page-internals" in proc.stdout


# -- pin-guard ----------------------------------------------------------------


class TestPlacementViaPolicy:
    def test_fires_on_boundary_arithmetic_in_pass2(self):
        found = findings_for(
            "src/repro/reorg/swap.py",
            """
            def target_for(self, extent, index):
                return extent.start + index
            """,
            "placement-via-policy",
        )
        assert rule_names(found) == {"placement-via-policy"}

    def test_fires_on_lease_end_arithmetic_in_pass3(self):
        found = findings_for(
            "src/repro/reorg/shrink.py",
            """
            def last_slot(self, lease):
                return lease.end - 1
            """,
            "placement-via-policy",
        )
        assert rule_names(found) == {"placement-via-policy"}

    def test_quiet_on_boundary_reads_without_arithmetic(self):
        found = findings_for(
            "src/repro/reorg/swap.py",
            """
            def window_start(self, lease, extent):
                return lease.start if lease is not None else extent.start
            """,
            "placement-via-policy",
        )
        assert found == []

    def test_quiet_outside_pass_files(self):
        source = """
        def rank_to_page(self, window_start, rank, lease):
            del window_start, rank
            return lease.start + 1
        """
        for path in (
            "src/repro/reorg/placement.py",  # the policy implementation
            "src/repro/reorg/freespace.py",  # lease clamping for resolution
            "src/repro/storage/allocator.py",
        ):
            assert findings_for(path, source, "placement-via-policy") == []

    def test_pass_files_are_clean(self):
        from reprolint.engine import lint_paths

        found = lint_paths(
            ["src/repro/reorg"], root=REPO_ROOT, rules=["placement-via-policy"]
        )
        assert found == []


class TestPinGuard:
    def test_fires_on_unguarded_pinned_fetch(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def scan(pool, pid):
                page = pool.fetch(pid, pin=True)
                return page.records()
            """,
            "pin-guard",
        )
        assert rule_names(found) == {"pin-guard"}
        (finding,) = found
        assert finding.severity == "hint"
        assert "reproflow" in finding.message
        assert ":hint]" in str(finding)

    def test_quiet_under_try_finally(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def scan(pool, pid):
                page = pool.fetch(pid, pin=True)
                try:
                    return page.records()
                finally:
                    pool.unpin(pid)
            """,
            "pin-guard",
        )
        # Only the fetch *before* the try is flagged: the guarded idiom is
        # fetch inside the try (or a with block), unpin in the finally.
        assert rule_names(found) == {"pin-guard"}
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def scan(pool, pid):
                try:
                    page = pool.fetch(pid, pin=True)
                    return page.records()
                finally:
                    pool.unpin(pid)
            """,
            "pin-guard",
        )
        assert found == []

    def test_quiet_inside_with(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def scan(pool, pid):
                with pool.pinned(pid):
                    page = pool.fetch(pid, pin=True)
                    return page.records()
            """,
            "pin-guard",
        )
        assert found == []

    def test_quiet_on_unpinned_fetch(self):
        found = findings_for(
            "src/repro/btree/seeded.py",
            """
            def scan(pool, pid):
                page = pool.fetch(pid)
                return page.records()
            """,
            "pin-guard",
        )
        assert found == []

    def test_hint_does_not_gate_the_cli(self):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            tree = Path(tmp) / "src" / "repro"
            tree.mkdir(parents=True)
            (tree / "seeded.py").write_text(
                "def scan(pool, pid):\n"
                "    return pool.fetch(pid, pin=True)\n"
            )
            proc = subprocess.run(
                [sys.executable, "-m", "reprolint", "--json", "src"],
                cwd=tmp,
                env={"PYTHONPATH": str(REPO_ROOT / "tools"), "PATH": "/usr/bin:/bin"},
                capture_output=True,
                text=True,
            )
        payload = json.loads(proc.stdout)
        hints = [f for f in payload if f["rule"] == "pin-guard"]
        assert hints and all(f["severity"] == "hint" for f in hints)
        assert proc.returncode == 0


# -- gap-via-config -----------------------------------------------------------


class TestGapViaConfig:
    def test_fires_on_direct_gap_fraction_use(self):
        found = findings_for(
            "src/repro/btree/bulkload.py",
            """
            def leaf_budget(config):
                return int(config.leaf_capacity * (1 - config.leaf_gap_fraction))
            """,
            "gap-via-config",
        )
        assert rule_names(found) == {"gap-via-config"}
        assert len(found) == 2  # the knob read and the capacity arithmetic

    def test_fires_on_capacity_arithmetic_in_rebuild(self):
        found = findings_for(
            "src/repro/reorg/compact.py",
            """
            def target_records(self, fill):
                return self.db.store.config.leaf_capacity - 4
            """,
            "gap-via-config",
        )
        assert rule_names(found) == {"gap-via-config"}

    def test_quiet_on_helper_calls(self):
        found = findings_for(
            "src/repro/reorg/shrink.py",
            """
            from repro.config import gapped_leaf_fill, leaf_gap_slots

            def target_records(config, fill):
                if leaf_gap_slots(config) > 0:
                    return gapped_leaf_fill(config, fill)
                return gapped_leaf_fill(config, 1.0)
            """,
            "gap-via-config",
        )
        assert found == []

    def test_quiet_on_plain_capacity_reads(self):
        found = findings_for(
            "src/repro/btree/bulkload.py",
            """
            def fits(config, n):
                return n <= config.leaf_capacity
            """,
            "gap-via-config",
        )
        assert found == []

    def test_quiet_outside_layout_builders(self):
        source = """
        def slack(config):
            return config.leaf_capacity * config.leaf_gap_fraction
        """
        for path in (
            "src/repro/config.py",  # the helpers' own home
            "src/repro/btree/tree.py",
            "tools/reprolint/rules.py",
        ):
            assert findings_for(path, source, "gap-via-config") == []

    def test_layout_builders_are_clean(self):
        from reprolint.engine import lint_paths

        found = lint_paths(
            ["src/repro/btree/bulkload.py", "src/repro/reorg"],
            root=REPO_ROOT,
            rules=["gap-via-config"],
        )
        assert found == []
