"""The real tree flows clean and deterministically, parsing once.

``python -m reproflow src/repro`` exiting 0 is the CI acceptance gate;
running the same check from tier-1 means a PR cannot land an unsuppressed
pin leak, unbalanced lock or lock-order cycle and only find out in CI.
The determinism test pins the ordering guarantees (sorted findings,
insertion-ordered stats) the JSON report relies on, and the shared-cache
test is the issue's contract that a combined lint + flow run reads and
parses every file exactly once.
"""

import json

from tests.analysis.conftest import REPO_ROOT

from reprolint.engine import FileCache, lint_paths
from reproflow.cli import run_flow


def test_src_tree_flows_clean():
    findings, report = run_flow(["src/repro"], cache=FileCache(REPO_ROOT))
    assert findings == [], "\n".join(str(f) for f in findings)
    # The suppressions documented in-tree absorb the designed-in protocol
    # deadlocks and the scheduler's interpreter-side lock traffic; if the
    # tree genuinely went quiet they would be stale (reported above).
    assert report.stats["reported"] == 0


def test_flow_runs_are_deterministic():
    def payload():
        findings, report = run_flow(
            ["src/repro"], cache=FileCache(REPO_ROOT)
        )
        return json.dumps(
            {
                "findings": [f.to_dict() for f in findings],
                "stats": report.stats,
            },
            sort_keys=False,
        )

    assert payload() == payload()


def test_combined_lint_and_flow_parse_each_file_once():
    cache = FileCache(REPO_ROOT)
    lint_findings = lint_paths(["src/repro"], root=REPO_ROOT, cache=cache)
    after_lint = cache.parse_count
    assert after_lint > 0
    flow_findings, report = run_flow(["src/repro"], cache=cache)
    assert lint_findings == []
    assert flow_findings == []
    # The flow pass walked the same files through the same cache: not a
    # single re-parse happened.
    assert cache.parse_count == after_lint
    assert report.stats["files"] == after_lint
