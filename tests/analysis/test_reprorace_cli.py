"""The ``python -m reprorace`` front end: argument handling, exit codes,
JSON report shape (including the ``data_races`` count), and the
acceptance-critical zero-race scenarios (optimistic readers and the
sharded reorganizer under exploration)."""

import json
import os
import subprocess
import sys

from tests.analysis.conftest import REPO_ROOT

from reprorace.cli import main
from reprocheck.scenarios import SCENARIOS


def test_list_names_every_scenario_and_the_race_kinds(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out
    for kind in ("write-write", "read-write", "unvalidated-read"):
        assert kind in out


def test_no_scenarios_is_a_usage_error(capsys):
    assert main([]) == 2
    assert "no scenarios" in capsys.readouterr().err


def test_unknown_scenario_is_a_usage_error(capsys):
    assert main(["no-such-scenario"]) == 2
    assert "no-such-scenario" in capsys.readouterr().err


def test_seed_trace_requires_exactly_one_scenario(capsys):
    assert main(["reader-vs-pass1", "deadlock-victim", "--seed-trace", "t1:-"]) == 2
    assert "exactly one scenario" in capsys.readouterr().err


def test_bad_seed_trace_is_a_usage_error(capsys):
    assert main(["reader-vs-pass1", "--seed-trace", "bogus"]) == 2
    assert "bad trace" in capsys.readouterr().err


def test_seed_trace_replay_race_checks_one_schedule(capsys):
    code = main(["reader-vs-pass1", "--seed-trace", "t1:-", "--max-schedules", "1"])
    assert code == 0
    assert "race-checked" in capsys.readouterr().out


def test_optimistic_readers_and_shard_reorg_report_zero_races(capsys, tmp_path):
    """The unmodified tree — PR 6 lock-free readers and the sharded
    ParallelReorganizer included — is race-free on every explored schedule."""
    output = tmp_path / "report.json"
    code = main([
        "optimistic-reader-vs-reorg",
        "shard-reorg-scan",
        "--max-schedules", "4",
        "--json",
        "--output", str(output),
    ])
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    written = json.loads(output.read_text())
    assert printed == written
    assert printed["ok"] is True
    for name in ("optimistic-reader-vs-reorg", "shard-reorg-scan"):
        summary = printed["scenarios"][name]
        assert summary["data_races"] == 0
        assert summary["violations"] == []
        assert summary["distinct_schedules"] >= 1
        assert set(summary) >= {
            "distinct_schedules", "schedules_run", "frontier_exhausted",
            "violations", "data_races",
        }


def test_human_output_mentions_race_checked_schedules(capsys):
    assert main(["deadlock-victim", "--max-schedules", "4"]) == 0
    out = capsys.readouterr().out
    assert "deadlock-victim" in out
    assert "distinct schedules" in out
    assert "race-checked" in out


def test_module_entry_point_runs():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        (str(REPO_ROOT / "src"), str(REPO_ROOT / "tools"))
    )
    proc = subprocess.run(
        [sys.executable, "-m", "reprorace", "deadlock-victim", "--max-schedules", "2"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "deadlock-victim" in proc.stdout
