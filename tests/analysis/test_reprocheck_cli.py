"""The ``python -m reprocheck`` front end: argument handling, exit codes,
JSON report shape, and trace-seeded replay."""

import json
import os
import subprocess
import sys

import pytest

from tests.analysis.conftest import REPO_ROOT

from reprocheck.cli import main
from reprocheck.scenarios import SCENARIOS


def test_list_names_every_scenario_and_invariant(capsys):
    from repro.analysis import invariants

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out
    for name in invariants.REGISTRY:
        assert name in out


def test_no_scenarios_is_a_usage_error(capsys):
    assert main([]) == 2
    assert "no scenarios" in capsys.readouterr().err


def test_unknown_scenario_is_a_usage_error(capsys):
    assert main(["no-such-scenario"]) == 2
    assert "no-such-scenario" in capsys.readouterr().err


def test_seed_trace_requires_exactly_one_scenario(capsys):
    assert main(["reader-vs-pass1", "deadlock-victim", "--seed-trace", "t1:-"]) == 2
    assert "exactly one scenario" in capsys.readouterr().err


def test_bad_seed_trace_is_a_usage_error(capsys):
    assert main(["reader-vs-pass1", "--seed-trace", "bogus"]) == 2
    assert "bad trace" in capsys.readouterr().err


def test_seed_trace_replay_of_native_schedule_passes():
    assert main(["reader-vs-pass1", "--seed-trace", "t1:-", "--max-schedules", "1"]) == 0


def test_json_report_shape(capsys, tmp_path):
    output = tmp_path / "report.json"
    code = main([
        "deadlock-victim",
        "--max-schedules", "8",
        "--json",
        "--output", str(output),
    ])
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    written = json.loads(output.read_text())
    assert printed == written
    assert printed["ok"] is True
    assert printed["max_schedules"] == 8
    summary = printed["scenarios"]["deadlock-victim"]
    assert summary["distinct_schedules"] >= 1
    assert summary["violations"] == []
    assert set(summary) >= {
        "distinct_schedules", "schedules_run", "max_depth",
        "pruned_by_hash", "pruned_by_independence",
        "frontier_exhausted", "violations",
    }


def test_human_output_mentions_schedule_counts(capsys):
    assert main(["deadlock-victim", "--max-schedules", "8"]) == 0
    out = capsys.readouterr().out
    assert "deadlock-victim" in out
    assert "distinct schedules" in out


def test_module_entry_point_runs():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        (str(REPO_ROOT / "src"), str(REPO_ROOT / "tools"))
    )
    proc = subprocess.run(
        [sys.executable, "-m", "reprocheck", "deadlock-victim", "--max-schedules", "4"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "deadlock-victim" in proc.stdout
