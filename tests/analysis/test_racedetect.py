"""Unit tests for the hybrid lockset + happens-before race detector.

The seeded-bug end-to-end proofs live in ``test_racedetect_seeded.py``;
this file covers the machinery: install/uninstall hygiene, the Eraser
page-state machine, release→acquire ordering, optimistic-window
validation, and the explorer hook that turns a race into a violation.
"""

from __future__ import annotations

import pytest

from repro.analysis import racedetect
from repro.analysis.explorer import Scenario, World
from repro.analysis.racedetect import (
    RaceDetector,
    RaceError,
    RaceExplorer,
    active,
    install,
    uninstall,
)
from repro.btree.protocols import reader_search, updater_insert
from repro.config import TreeConfig
from repro.db import Database
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock
from repro.storage.page import Record
from repro.txn.ops import Acquire, Call, Release, Think
from repro.txn.scheduler import Scheduler


@pytest.fixture
def detector():
    session_det = active()
    if session_det is not None:
        # REPRO_RACE=1 runs install the detector suite-wide; reuse it
        # (cycling the patches here would strip coverage from the rest
        # of the session) and isolate this test's reports.
        session_det.reports.clear()
        session_det._seen.clear()
        session_det.checks.clear()
        yield session_det
        session_det.reports.clear()
        session_det._seen.clear()
        return
    det = install(strict=False)
    yield det
    uninstall()


def _tiny_db(*, optimistic: bool = False) -> Database:
    db = Database(
        TreeConfig(
            leaf_capacity=4,
            internal_capacity=4,
            leaf_extent_pages=64,
            internal_extent_pages=32,
            buffer_pool_pages=64,
            optimistic_reads=optimistic,
        )
    )
    db.bulk_load_tree([Record(k, f"v{k}") for k in range(0, 40, 2)], leaf_fill=0.5)
    db.flush()
    db.checkpoint()
    return db


def _scheduler(db: Database) -> Scheduler:
    return Scheduler(db.locks, store=db.store, log=db.log, io_time=1.0, hit_time=0.05)


def _touch(db: Database, page_id: int):
    """Read-modify-write one page frame (the funnel the detector watches)."""
    db.store.buffer.fetch(page_id)
    db.store.buffer.mark_dirty(page_id)


# -- install / uninstall -------------------------------------------------------


def test_install_is_idempotent_and_uninstall_restores():
    from repro.storage.buffer import BufferPool

    if active() is not None:
        pytest.skip("session detector active; cannot cycle patches here")
    before = BufferPool.fetch
    det = install()
    assert install() is det, "second install returns the active detector"
    assert active() is det
    assert BufferPool.fetch is not before
    assert uninstall() is det
    assert active() is None
    assert BufferPool.fetch is before
    assert uninstall() is None


def test_strict_mode_raises_on_report():
    det = RaceDetector(strict=True)
    site = racedetect.AccessSite(
        owner="t1", op="write", site="x.py:1 in f", clock=1, locks=()
    )
    with pytest.raises(RaceError):
        det.report(
            kind="write-write", page_id=3, state="shared-modified",
            candidate=(), earlier=site, later=site, evidence="VC evidence: test",
        )
    assert len(det.reports) == 1


def test_duplicate_reports_are_deduplicated():
    det = RaceDetector()
    site = racedetect.AccessSite(
        owner="t1", op="write", site="x.py:1 in f", clock=1, locks=()
    )
    for _ in range(3):
        det.report(
            kind="write-write", page_id=3, state="shared-modified",
            candidate=(), earlier=site, later=site, evidence="VC evidence: test",
        )
    assert len(det.reports) == 1


# -- the Eraser page-state machine ---------------------------------------------


def test_page_state_machine_transitions():
    st = racedetect._PageState()
    assert st.state == "virgin"
    st.advance("t1", write=True, prot=frozenset({page_lock(1)}))
    assert st.state == "exclusive"
    st.advance("t1", write=True, prot=frozenset({page_lock(1)}))
    assert st.state == "exclusive", "same owner keeps exclusive"
    st.advance("t2", write=False, prot=frozenset({page_lock(1)}))
    assert st.state == "shared"
    st.advance("t3", write=True, prot=frozenset({page_lock(1)}))
    assert st.state == "shared-modified"


def test_candidate_lockset_intersects():
    a, b = page_lock(1), page_lock(2)
    st = racedetect._PageState()
    st.advance("t1", write=True, prot=frozenset({a, b}))
    st.advance("t2", write=True, prot=frozenset({a}))
    assert st.candidate == frozenset({a})


# -- happens-before edges ------------------------------------------------------


def test_lock_release_acquire_orders_writes(detector):
    db = _tiny_db()
    sched = _scheduler(db)
    root = db.tree().root_id
    resource = page_lock(root)

    def locked_writer(think):
        yield Acquire(resource, LockMode.X)
        yield Call(lambda: _touch(db, root))
        yield Think(think)
        yield Release(resource, LockMode.X)

    sched.spawn(locked_writer(0.3), name="w1")
    sched.spawn(locked_writer(0.1), name="w2", at=0.1)
    sched.run()
    assert not sched.failed
    assert detector.reports == []
    assert detector.checks["write-check"] >= 2


def test_unlocked_concurrent_writes_race(detector):
    db = _tiny_db()
    sched = _scheduler(db)
    root = db.tree().root_id

    def unlocked_writer():
        yield Think(0.2)
        yield Call(lambda: _touch(db, root))
        yield Think(0.2)

    sched.spawn(unlocked_writer(), name="w1")
    sched.spawn(unlocked_writer(), name="w2", at=0.1)
    sched.run()
    assert not sched.failed
    kinds = {report.kind for report in detector.reports}
    assert "write-write" in kinds
    report = next(r for r in detector.reports if r.kind == "write-write")
    assert report.page_id == root
    assert report.earlier.locks == () and report.later.locks == ()
    assert "VC evidence" in report.evidence


def test_spawn_edge_orders_child_after_parent(detector):
    db = _tiny_db()
    sched = _scheduler(db)
    root = db.tree().root_id

    def child():
        yield Call(lambda: _touch(db, root))

    def parent():
        yield Call(lambda: _touch(db, root))
        yield Call(lambda: sched.spawn(child(), name="child"))

    sched.spawn(parent(), name="parent")
    sched.run()
    assert not sched.failed
    assert detector.reports == []


def test_finish_edge_orders_later_transactions(detector):
    db = _tiny_db()
    sched = _scheduler(db)
    root = db.tree().root_id

    def writer():
        yield Call(lambda: _touch(db, root))

    sched.spawn(writer(), name="w1")
    sched.spawn(writer(), name="w2", at=5.0)  # starts after w1 finished
    sched.run()
    assert not sched.failed
    assert detector.reports == []


# -- optimistic windows --------------------------------------------------------


def test_validated_optimistic_reads_are_benign(detector):
    db = _tiny_db(optimistic=True)
    sched = _scheduler(db)
    sched.spawn(reader_search(db, "primary", 10, think=0.05), name="r1")
    sched.spawn(
        updater_insert(db, "primary", Record(11, "w"), think=0.05),
        name="u1", at=0.05,
    )
    sched.spawn(reader_search(db, "primary", 30, think=0.05), name="r2", at=0.1)
    sched.run()
    assert not sched.failed
    assert detector.reports == []
    assert detector.checks["window-capture"] > 0, "optimistic path was exercised"
    assert detector.checks["validation"] > 0


def test_unvalidated_unlocked_read_is_reported(detector):
    db = _tiny_db()
    sched = _scheduler(db)
    root = db.tree().root_id

    def sniffer():
        # Reads the page frame, never validates, never locks.
        yield Call(lambda: db.store.buffer.fetch(root))
        yield Think(0.5)

    def writer():
        yield Acquire(page_lock(root), LockMode.X)
        yield Call(lambda: _touch(db, root))
        yield Release(page_lock(root), LockMode.X)

    sched.spawn(sniffer(), name="sniffer")
    sched.spawn(writer(), name="writer", at=0.1)
    sched.run()
    assert not sched.failed
    kinds = {report.kind for report in detector.reports}
    assert "unvalidated-read" in kinds


# -- the explorer hook ---------------------------------------------------------


def _racy_world() -> World:
    db = _tiny_db()
    sched = _scheduler(db)
    root = db.tree().root_id

    def unlocked_writer():
        yield Think(0.2)
        yield Call(lambda: _touch(db, root))
        yield Think(0.2)

    sched.spawn(unlocked_writer(), name="w1")
    sched.spawn(unlocked_writer(), name="w2", at=0.1)
    return World(db=db, scheduler=sched)


def test_race_explorer_synthesizes_data_race_violation():
    scenario = Scenario(
        name="racy-pair",
        description="two unlocked writers touch the same frame",
        build=_racy_world,
        invariants=("btree-structure",),
    )
    before = active()
    explorer = RaceExplorer()
    run = explorer.execute(scenario)
    assert run.violation is not None
    assert run.violation.invariant == "data-race"
    assert "write-write" in run.violation.message
    assert explorer.last_reports
    assert active() is before, "explorer leaves the install state as found"


def test_race_explorer_clean_scenario_has_no_violation():
    db_holder = {}

    def clean_world() -> World:
        db = _tiny_db()
        db_holder["db"] = db
        sched = _scheduler(db)
        sched.spawn(
            updater_insert(db, "primary", Record(13, "w"), think=0.05),
            name="u1",
        )
        return World(db=db, scheduler=sched)

    scenario = Scenario(
        name="clean-insert",
        description="one locked updater",
        build=clean_world,
        invariants=("btree-structure",),
    )
    before = active()
    explorer = RaceExplorer()
    run = explorer.execute(scenario)
    assert run.violation is None
    assert explorer.last_reports == []
    assert active() is before
