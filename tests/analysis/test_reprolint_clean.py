"""The real tree lints clean: ``python -m reprolint src tests`` exits 0.

This is the acceptance gate the CI ``lint`` job enforces; running it from
the tier-1 suite as well means a PR cannot land a violation and only find
out in CI.  Full (un-selected) runs also police stale suppressions, so a
directive whose rule stopped firing fails these tests too.
"""

from tests.analysis.conftest import REPO_ROOT

from reprolint.engine import lint_paths


def test_src_and_tests_lint_clean():
    findings = lint_paths(["src", "tests"], root=REPO_ROOT)
    assert findings == [], "\n".join(str(f) for f in findings)


def test_tools_lint_clean():
    # The linter holds itself to its own hygiene rules.
    findings = lint_paths(["tools"], root=REPO_ROOT)
    assert findings == [], "\n".join(str(f) for f in findings)


def test_benchmarks_and_examples_lint_clean():
    # The perf harness and the runnable examples ship the same hygiene
    # bar as the library; CI lints them with the same invocation.
    findings = lint_paths(["benchmarks", "examples"], root=REPO_ROOT)
    assert findings == [], "\n".join(str(f) for f in findings)
