"""The runtime sanitizer catches deliberately injected protocol breaks:
Table-1 violations smuggled into the holder table, WAL-bypassing disk
writes, page-LSN regressions, and wrong deadlock victims."""

from collections import Counter

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    LockTableViolation,
    VersionStampViolation,
    VictimPolicyViolation,
    WALOrderViolation,
)
from repro.config import TreeConfig
from repro.db import Database
from repro.locks.manager import LockManager
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock
from repro.storage.page import Record


class Owner:
    def __init__(self, name, is_reorganizer=False):
        self.name = name
        self.is_reorganizer = is_reorganizer

    def __repr__(self):
        return self.name


@pytest.fixture
def lm(san):
    return LockManager()


RES = page_lock(7)


# -- Table-1 holder-set validation --------------------------------------------


class TestLockTable:
    def test_clean_protocol_traffic_is_quiet(self, san, lm):
        a, b = Owner("a"), Owner("b")
        lm.request(a, RES, LockMode.S)
        lm.request(b, RES, LockMode.S)
        lm.release(a, RES, LockMode.S)
        lm.release(b, RES, LockMode.S)
        assert san.checks["lock-table"] > 0
        assert san.new_violations() == []

    def test_injected_incompatible_pair_is_caught(self, san, lm):
        a, b, c = Owner("a"), Owner("b"), Owner("c")
        lm.request(a, RES, LockMode.S)
        # Smuggle an X grant in behind the manager's back; the very next
        # public operation touching the resource must detect S vs X (No).
        lm._holders[RES][b] = Counter({LockMode.X: 1})
        with pytest.raises(LockTableViolation, match="Table 1: No"):
            lm.request(c, RES, LockMode.IS)
        assert san.new_violations("lock-table")

    def test_injected_blank_cell_pairing_is_caught(self, san, lm):
        a, b = Owner("a"), Owner("b")
        lm.request(a, RES, LockMode.IS)
        # IS with R is a blank Table-1 cell: never requested together.
        lm._holders[RES][b] = Counter({LockMode.R: 1})
        with pytest.raises(LockTableViolation, match="blank Table-1"):
            lm.request(a, RES, LockMode.IS)

    def test_held_rs_is_caught(self, san, lm):
        a, b = Owner("a"), Owner("b")
        lm.request(a, RES, LockMode.S)
        # RS is instant-duration; a *held* RS can only mean a grant-path bug.
        lm._holders[RES][b] = Counter({LockMode.RS: 1})
        with pytest.raises(LockTableViolation, match="instant-duration"):
            lm.release(a, RES, LockMode.S)

    def test_non_strict_records_instead_of_raising(self):
        if sanitizer.active() is not None:
            pytest.skip("session sanitizer already installed in strict mode")
        san = sanitizer.install(strict=False)
        try:
            manager = LockManager()
            a, b = Owner("a"), Owner("b")
            manager.request(a, RES, LockMode.S)
            manager._holders[RES][b] = Counter({LockMode.X: 1})
            manager.request(Owner("c"), RES, LockMode.IS)
            assert any(d.kind == "lock-table" for d in san.violations)
        finally:
            sanitizer.uninstall()


# -- deadlock victim policy ----------------------------------------------------


class TestVictimPolicy:
    def _build_cycle(self, lm):
        reorg = Owner("reorg", is_reorganizer=True)
        user = Owner("user")
        a, b = page_lock(1), page_lock(2)
        lm.request(reorg, a, LockMode.X)
        lm.request(user, b, LockMode.X)
        lm.request(reorg, b, LockMode.X)  # waits on user
        lm.request(user, a, LockMode.X)  # waits on reorg -> cycle
        return reorg, user

    def test_correct_victim_is_quiet(self, san, lm):
        reorg, _user = self._build_cycle(lm)
        victims = lm.resolve_deadlocks()
        assert victims == [reorg]
        assert san.checks["victim-policy"] > 0
        assert san.new_violations("victim-policy") == []

    def test_sacrificing_a_user_transaction_is_caught(self, san, lm):
        _reorg, user = self._build_cycle(lm)
        with pytest.raises(VictimPolicyViolation, match="always forces"):
            lm._deliver_deadlock(user)


# -- WAL ordering --------------------------------------------------------------


@pytest.fixture
def db(san):
    db = Database(
        TreeConfig(leaf_capacity=8, internal_capacity=8, buffer_pool_pages=64)
    )
    tree = db.create_tree()
    for key in range(32):
        tree.insert(Record(key, "payload"))
    return db


class TestWALOrdering:
    def test_normal_flush_path_is_quiet(self, san, db):
        db.flush()
        assert san.checks["write-ahead"] > 0
        assert san.new_violations("write-ahead") == []

    def test_wal_bypassing_disk_write_is_caught(self, san, db):
        dirty_page = next(
            frame.page
            for frame in db.store.buffer._frames.values()
            if frame.dirty and frame.page.page_lsn > db.log.flushed_lsn
        )
        with pytest.raises(WALOrderViolation, match="write-ahead"):
            db.store.disk.write(dirty_page)  # reprolint: disable=no-raw-disk-write -- the raw write IS what the sanitizer must catch

    def test_page_lsn_regression_is_caught(self, san, db):
        page_id = next(iter(db.store.buffer._frames))
        db.store.buffer.mark_dirty(page_id, db.log.last_lsn)
        with pytest.raises(WALOrderViolation, match="regress"):
            db.store.buffer.mark_dirty(page_id, db.log.last_lsn - 1)

    def test_stamping_unappended_lsn_is_caught(self, san, db):
        page_id = next(iter(db.store.buffer._frames))
        with pytest.raises(WALOrderViolation, match="only appended"):
            db.store.buffer.mark_dirty(page_id, db.log.last_lsn + 1000)

    def test_suspended_skips_checks(self, san, db):
        dirty_page = next(
            frame.page
            for frame in db.store.buffer._frames.values()
            if frame.dirty and frame.page.page_lsn > db.log.flushed_lsn
        )
        with san.suspended():
            db.store.disk.write(dirty_page)  # reprolint: disable=no-raw-disk-write -- the raw write IS what the sanitizer must catch
        assert san.new == []


# -- fetch coverage ------------------------------------------------------------


class TestFetchCoverage:
    def test_dirty_fetch_without_lock_is_warned(self, san, db):
        lm = LockManager()
        me, other = Owner("me"), Owner("other")
        page_id = next(
            pid
            for pid, frame in db.store.buffer._frames.items()
            if frame.dirty
        )
        lm.request(other, page_lock(page_id), LockMode.S)
        ctx = sanitizer._CTX
        ctx.owner, ctx.lock_manager = me, lm
        try:
            db.store.buffer.fetch(page_id)
        finally:
            ctx.owner = ctx.lock_manager = None
        assert san.new_warnings("dirty-fetch")

    def test_foreign_rx_fetch_is_warned_not_raised(self, san, db):
        lm = LockManager()
        me, reorg = Owner("me"), Owner("reorg", is_reorganizer=True)
        page_id = next(iter(db.store.buffer._frames))
        lm.request(reorg, page_lock(page_id), LockMode.RX)
        ctx = sanitizer._CTX
        ctx.owner, ctx.lock_manager = me, lm
        try:
            db.store.buffer.fetch(page_id)  # navigation read: legal
        finally:
            ctx.owner = ctx.lock_manager = None
        assert san.new_warnings("rx-foreign-fetch")
        assert san.new_violations("rx-foreign-fetch") == []


# -- version stamps ------------------------------------------------------------


def _seed_stamp_skip_bug(buffer, page_id):
    """Mutate a frame the way a buggy ``mark_dirty`` would: dirty it and
    advance its page LSN, but 'forget' the version-stamp bump the
    optimistic read path depends on."""
    frame = buffer._frames[page_id]
    frame.dirty = True
    frame.page.page_lsn += 1


class TestVersionStamps:
    def test_proper_mutation_under_pin_is_quiet(self, san, db):
        buffer = db.store.buffer
        page_id = next(iter(buffer._frames))
        buffer.pin(page_id)
        buffer.mark_dirty(page_id, db.log.last_lsn)
        buffer.unpin(page_id)
        assert san.checks["version-stamp"] > 0
        assert san.new_violations("version-stamp") == []

    def test_seeded_stamp_skip_is_caught(self, san, db):
        buffer = db.store.buffer
        page_id = next(iter(buffer._frames))
        buffer.pin(page_id)
        _seed_stamp_skip_bug(buffer, page_id)
        with pytest.raises(VersionStampViolation, match="version-stamp bump"):
            buffer.unpin(page_id)

    def test_fetch_pin_path_snapshots_too(self, san, db):
        buffer = db.store.buffer
        page_id = next(iter(buffer._frames))
        buffer.fetch(page_id, pin=True)
        _seed_stamp_skip_bug(buffer, page_id)
        with pytest.raises(VersionStampViolation, match="version-stamp bump"):
            buffer.unpin(page_id)

    def test_nested_pins_keep_first_snapshot_and_bump_recovers(self, san, db):
        buffer = db.store.buffer
        page_id = next(iter(buffer._frames))
        buffer.pin(page_id)
        buffer.pin(page_id)
        _seed_stamp_skip_bug(buffer, page_id)
        with pytest.raises(VersionStampViolation, match="version-stamp bump"):
            buffer.unpin(page_id)
        # Bumping the stamp (what the fix would do) clears the condition;
        # both outstanding unpins then validate and release cleanly.
        buffer.bump_version(page_id)
        buffer.unpin(page_id)
        buffer.unpin(page_id)
        assert len(san.new_violations("version-stamp")) == 1

    def test_unmutated_pin_unpin_is_quiet(self, san, db):
        buffer = db.store.buffer
        page_id = next(iter(buffer._frames))
        before = len(san.new_violations("version-stamp"))
        buffer.pin(page_id)
        buffer.unpin(page_id)
        assert len(san.new_violations("version-stamp")) == before


# -- lifecycle -----------------------------------------------------------------


class TestLifecycle:
    def test_install_is_idempotent(self, san):
        assert sanitizer.install() is san.instance

    def test_uninstall_restores_originals(self):
        if sanitizer.active() is not None:
            pytest.skip("session sanitizer active; cannot cycle patches here")
        from repro.storage.buffer import BufferPool
        from repro.txn.scheduler import Scheduler

        fetch_before = BufferPool.fetch
        step_before = Scheduler._step
        request_before = LockManager.request
        sanitizer.install()
        assert BufferPool.fetch is not fetch_before
        sanitizer.uninstall()
        assert BufferPool.fetch is fetch_before
        assert Scheduler._step is step_before
        assert LockManager.request is request_before

    def test_config_flag_installs(self):
        pre = sanitizer.active()
        db = Database(TreeConfig(sanitizer=True))
        try:
            assert sanitizer.active() is not None
            db.create_tree().insert(Record(1, "x"))
        finally:
            if pre is None:
                sanitizer.uninstall()
