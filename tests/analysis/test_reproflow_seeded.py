"""Seeded-bug acceptance tests for reproflow (issue 8).

Three deliberately planted defects — an exception-path pin leak, a lock
acquired in a helper that escapes without release, and a lock-order
inversion — must each be caught in a *single* ``analyze_files`` run, with
an interprocedural call-path witness naming the root, the hop and the
site.  Clean control fixtures with the same shapes (but correct
``try/finally`` or pairing) must produce zero findings, so the analyses
discriminate rather than pattern-match.
"""

import ast

from repro.analysis.flowgraph import analyze_files

PIN_LEAK = '''\
def acquire(buf, pid):
    buf.pin(pid)


def work(pid):
    raise ValueError(pid)


def entry(buf, pid):
    acquire(buf, pid)
    work(pid)
    buf.unpin(pid)
'''

PIN_CLEAN = '''\
def acquire(buf, pid):
    buf.pin(pid)


def work(pid):
    raise ValueError(pid)


def entry(buf, pid):
    acquire(buf, pid)
    try:
        work(pid)
    finally:
        buf.unpin(pid)
'''

LOCK_ESCAPE = '''\
def grab(lm, owner, key):
    lm.request(owner, tree_lock(key), X)


def entry(lm, owner):
    grab(lm, owner, "t")
    compute()
'''

LOCK_CLEAN = '''\
def grab(lm, owner, key):
    lm.request(owner, tree_lock(key), X)


def entry(lm, owner):
    grab(lm, owner, "t")
    compute()
    lm.release_all(owner)
'''

LOCK_ORDER = '''\
def forward(lm, o):
    lm.request(o, tree_lock("a"), X)
    lm.request(o, tree_lock("b"), X)
    lm.release_all(o)


def backward(lm, o):
    lm.request(o, tree_lock("b"), X)
    lm.request(o, tree_lock("a"), X)
    lm.release_all(o)
'''

ORDER_CLEAN = '''\
def forward(lm, o):
    lm.request(o, tree_lock("a"), X)
    lm.request(o, tree_lock("b"), X)
    lm.release_all(o)


def also_forward(lm, o):
    lm.request(o, tree_lock("a"), X)
    lm.request(o, tree_lock("b"), X)
    lm.release_all(o)
'''


def _analyze(sources):
    files = [(rel, ast.parse(src)) for rel, src in sources.items()]
    return analyze_files(files)


def _one_run():
    """All seeded bugs and all clean controls through one analyze_files."""
    return _analyze({
        "fix/pin_leak.py": PIN_LEAK,
        "fix/pin_clean.py": PIN_CLEAN,
        "fix/lock_escape.py": LOCK_ESCAPE,
        "fix/lock_clean.py": LOCK_CLEAN,
        "fix/lock_order.py": LOCK_ORDER,
        "fix/order_clean.py": ORDER_CLEAN,
    })


def test_exception_path_pin_leak_caught_with_witness():
    report = _one_run()
    hits = [
        f for f in report.findings
        if f.analysis == "pin-balance" and f.path == "fix/pin_leak.py"
    ]
    assert len(hits) == 1, [str(f) for f in report.findings]
    (finding,) = hits
    assert finding.line == 2  # the buf.pin(pid) site inside acquire()
    assert "exception" in finding.message
    witness = "\n".join(finding.witness)
    # Interprocedural: the witness walks root -> hop -> site.
    assert "entry()" in witness
    assert "acquire()" in witness
    assert "fix/pin_leak.py:2" in witness


def test_lock_escape_through_helper_caught_with_witness():
    report = _one_run()
    hits = [
        f for f in report.findings
        if f.analysis == "lock-pairing" and f.path == "fix/lock_escape.py"
    ]
    assert len(hits) == 1, [str(f) for f in report.findings]
    (finding,) = hits
    assert finding.line == 2  # the lm.request(...) site inside grab()
    witness = "\n".join(finding.witness)
    assert "entry()" in witness
    assert "grab()" in witness
    assert "fix/lock_escape.py:2" in witness


def test_lock_order_inversion_caught_with_both_edges():
    report = _one_run()
    hits = [
        f for f in report.findings
        if f.analysis == "lock-order" and f.path == "fix/lock_order.py"
    ]
    assert hits, [str(f) for f in report.findings]
    finding = hits[0]
    witness = "\n".join(finding.witness)
    # Both inverted acquisition orders appear in the cycle witness.
    assert "tree_lock('a')" in witness
    assert "tree_lock('b')" in witness
    assert "forward" in witness
    assert "backward" in witness


def test_clean_controls_report_nothing():
    report = _analyze({
        "fix/pin_clean.py": PIN_CLEAN,
        "fix/lock_clean.py": LOCK_CLEAN,
        "fix/order_clean.py": ORDER_CLEAN,
    })
    assert report.findings == [], [str(f) for f in report.findings]


def test_clean_controls_stay_clean_alongside_seeded_bugs():
    # The control files must stay silent even in the combined run: no
    # finding may point into a *_clean.py fixture.
    report = _one_run()
    noise = [f for f in report.findings if "clean" in f.path]
    assert noise == [], [str(f) for f in noise]
