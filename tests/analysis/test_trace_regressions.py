"""Replay one minimized historical trace per invariant.

Each ``traces/*.trace`` file pins a schedule that once exposed (or was
minimized while hunting) a protocol bug.  Replaying it is deterministic and
cheap — one world build, one run — so these act as targeted regression
tests: the named invariant must hold along the exact interleaving.
"""

from pathlib import Path

import pytest

from tests.analysis.conftest import REPO_ROOT  # noqa: F401 (sys.path side effect)

from repro.analysis import invariants
from repro.analysis.explorer import Explorer

from reprocheck.scenarios import SCENARIOS

TRACES_DIR = Path(__file__).resolve().parent / "traces"


def load_trace(path: Path) -> dict:
    meta: dict[str, str] = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, sep, value = line.partition(":")
        assert sep, f"{path.name}: malformed line {line!r}"
        meta.setdefault(key.strip(), value.strip())
    for required in ("scenario", "invariant", "trace"):
        assert required in meta, f"{path.name}: missing {required!r}"
    return meta


TRACE_FILES = sorted(TRACES_DIR.glob("*.trace"))


@pytest.mark.parametrize("path", TRACE_FILES, ids=lambda p: p.stem)
def test_historical_trace_replays_clean(path):
    meta = load_trace(path)
    scenario = SCENARIOS[meta["scenario"]]
    explorer = Explorer(invariants=[meta["invariant"]])
    outcome = explorer.replay(scenario, meta["trace"])
    assert outcome.violation is None, outcome.violation


def test_one_trace_per_invariant():
    covered = {load_trace(path)["invariant"] for path in TRACE_FILES}
    assert covered == set(invariants.REGISTRY)
