"""The shard router and the extent-lease machinery it stands on."""

import pytest

from repro.config import ShardConfig, TreeConfig
from repro.errors import ExtentFullError, StorageError
from repro.shard.router import ShardRouter
from repro.storage.store import LEAF_EXTENT, StorageManager


class TestShardRouter:
    def test_separator_count_must_match(self):
        with pytest.raises(ValueError, match="separators"):
            ShardRouter((10,), 3)

    def test_separators_strictly_increasing(self):
        with pytest.raises(ValueError, match="increasing"):
            ShardRouter((10, 10), 3)

    def test_point_routing(self):
        router = ShardRouter((100, 200), 3)
        assert router.shard_for(-5) == 0
        assert router.shard_for(99) == 0
        assert router.shard_for(100) == 1  # separator key goes right
        assert router.shard_for(199) == 1
        assert router.shard_for(200) == 2
        assert router.shard_for(10_000) == 2

    def test_range_routing_is_contiguous(self):
        router = ShardRouter((100, 200), 3)
        assert list(router.shards_for_range(0, 50)) == [0]
        assert list(router.shards_for_range(50, 150)) == [0, 1]
        assert list(router.shards_for_range(0, 500)) == [0, 1, 2]
        assert list(router.shards_for_range(500, 400)) == []

    def test_key_range_of(self):
        router = ShardRouter((100, 200), 3)
        assert router.key_range_of(0) == (None, 100)
        assert router.key_range_of(1) == (100, 200)
        assert router.key_range_of(2) == (200, None)


class TestExtentLeases:
    def make_store(self):
        return StorageManager(
            TreeConfig(
                leaf_capacity=4,
                internal_capacity=4,
                leaf_extent_pages=64,
                internal_extent_pages=32,
                buffer_pool_pages=16,
            )
        )

    def test_overlapping_leases_rejected(self):
        fm = self.make_store().free_map
        fm.grant_lease(LEAF_EXTENT, 0, 32)
        with pytest.raises(StorageError, match="overlap"):
            fm.grant_lease(LEAF_EXTENT, 31, 64)
        fm.grant_lease(LEAF_EXTENT, 32, 64)  # exact adjacency is fine

    def test_lease_must_fit_extent(self):
        fm = self.make_store().free_map
        with pytest.raises(StorageError):
            fm.grant_lease(LEAF_EXTENT, 0, 65)

    def test_allocate_in_lease_stays_in_bounds(self):
        fm = self.make_store().free_map
        lease = fm.grant_lease(LEAF_EXTENT, 8, 12)
        got = {fm.allocate_in_lease(lease) for _ in range(4)}
        assert got == {8, 9, 10, 11}
        with pytest.raises(ExtentFullError):
            fm.allocate_in_lease(lease)

    def test_allocate_specific_page_outside_lease_rejected(self):
        fm = self.make_store().free_map
        lease = fm.grant_lease(LEAF_EXTENT, 8, 12)
        with pytest.raises(StorageError):
            fm.allocate_in_lease(lease, 20)

    def test_first_free_in_lease(self):
        fm = self.make_store().free_map
        lease = fm.grant_lease(LEAF_EXTENT, 8, 12)
        assert fm.first_free_in_lease(lease) == 8
        fm.allocate_in_lease(lease, 8)
        assert fm.first_free_in_lease(lease) == 9

    def test_drop_leases(self):
        fm = self.make_store().free_map
        fm.grant_lease(LEAF_EXTENT, 0, 32)
        fm.drop_leases(LEAF_EXTENT)
        fm.grant_lease(LEAF_EXTENT, 16, 48)  # no stale overlap check


class TestShardConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardConfig(n_shards=0)
        with pytest.raises(ValueError):
            ShardConfig(n_shards=2, separators=(1, 2))
        with pytest.raises(ValueError):
            ShardConfig(n_shards=3, separators=(5, 5))
        cfg = ShardConfig(n_shards=3, separators=(5, 9))
        assert cfg.tree_prefix == "shard"
