"""The sharded facade: routing, merged scans, identity, durability."""

import random

import pytest

from repro.config import ReorgConfig, ShardConfig, SidePointerKind, TreeConfig
from repro.db import Database
from repro.shard import ParallelReorganizer, ShardedDatabase
from repro.storage.page import Record


def tiny_config() -> TreeConfig:
    return TreeConfig(
        leaf_capacity=8,
        internal_capacity=8,
        leaf_extent_pages=1024,
        internal_extent_pages=512,
        buffer_pool_pages=256,
        side_pointers=SidePointerKind.ONE_WAY,
    )


def sparse_records(n=1200, deleted=0.6, seed=7):
    records = [Record(k, f"v{k}") for k in range(n)]
    doomed = random.Random(seed).sample(range(n), int(n * deleted))
    return records, doomed


def load_sharded(n_shards, n=1200):
    sdb = ShardedDatabase(tiny_config(), ShardConfig(n_shards=n_shards))
    records, doomed = sparse_records(n)
    sdb.bulk_load(records, leaf_fill=1.0, internal_fill=0.6)
    for key in doomed:
        sdb.delete(key)
    return sdb, sorted(set(range(n)) - set(doomed))


def leaf_layout(store, tree):
    return [
        (pid, [(r.key, r.payload) for r in store.get_leaf(pid).records])
        for pid in tree.leaf_ids_in_key_order()
    ]


class TestRoutingAndScans:
    def test_point_ops_route_and_count(self):
        sdb, alive = load_sharded(4)
        assert sdb.search(alive[0]) is not None
        assert sdb.search(alive[0]).key == alive[0]
        dead = next(k for k in range(1200) if k not in alive)
        assert sdb.search(dead) is None
        sdb.insert(Record(dead, "back"))
        assert sdb.search(dead).payload == "back"
        assert sdb.record_count() == len(alive) + 1
        routed = sum(h.stats.routed_inserts for h in sdb.handles)
        assert routed == 1
        assert sum(h.stats.routed_lookups for h in sdb.handles) == 4

    def test_merged_scan_equals_single_tree(self):
        sdb, alive = load_sharded(4)
        merged = [(r.key, r.payload) for r in sdb.range_scan(0, 1199)]
        assert merged == [(k, f"v{k}") for k in alive]
        # Sub-ranges crossing one separator merge correctly too.
        sep = sdb.router.separators[1]
        lo, hi = sep - 50, sep + 50
        part = [(r.key, r.payload) for r in sdb.range_scan(lo, hi)]
        assert part == [(k, f"v{k}") for k in alive if lo <= k <= hi]

    def test_validate_covers_every_shard(self):
        sdb, _ = load_sharded(3)
        sdb.validate()

    def test_derived_separators_balance_shards(self):
        sdb, alive = load_sharded(4)
        counts = [h.tree().record_count() for h in sdb.handles]
        assert sum(counts) == len(alive)
        assert max(counts) - min(counts) < len(alive) // 2

    def test_skewed_records_need_explicit_separators(self):
        sdb = ShardedDatabase(tiny_config(), ShardConfig(n_shards=4))
        with pytest.raises(ValueError, match="separators"):
            sdb.bulk_load([Record(1, "x")] * 40)

    def test_scan_routes_per_shard_not_per_leaf(self, monkeypatch):
        """Regression: the merged scan must probe the router O(#shards)
        times per scan — the shard boundary check is hoisted out of the
        per-leaf walk — and the clamped per-shard bounds must not change
        the result."""
        from repro.shard.router import ShardRouter

        sdb, alive = load_sharded(4)
        probes: list[int] = []
        original = ShardRouter.shard_for

        def counting(self, key):
            probes.append(key)
            return original(self, key)

        monkeypatch.setattr(ShardRouter, "shard_for", counting)
        merged = [(r.key, r.payload) for r in sdb.range_scan(0, 1199)]
        assert merged == [(k, f"v{k}") for k in alive]
        # shards_for_range probes the endpoints once each; nothing else in
        # the scan may touch the router, however many leaves are walked.
        assert len(probes) == 2
        probes.clear()
        sep = sdb.router.separators[1]
        lo, hi = sep - 50, sep + 50
        part = [(r.key, r.payload) for r in sdb.range_scan(lo, hi)]
        assert part == [(k, f"v{k}") for k in alive if lo <= k <= hi]
        assert len(probes) == 2


class TestOneShardIdentity:
    def test_layout_byte_identical_to_unsharded(self):
        db = Database(tiny_config())
        records, doomed = sparse_records()
        tree = db.bulk_load_tree(records, leaf_fill=1.0, internal_fill=0.6)
        for key in doomed:
            tree.delete(key)
        sdb, _ = load_sharded(1)
        handle = sdb.handle(0)
        assert leaf_layout(sdb.store, handle.tree()) == leaf_layout(
            db.store, db.tree()
        )


class TestShardedDurability:
    def test_checkpoint_crash_recover_restores_pass3(self):
        sdb, alive = load_sharded(2)
        h1 = sdb.handle(1)
        h1.pass3.reorg_bit = True
        h1.pass3.stable_key = 777
        h1.pass3.side_file_entries.append(("insert", 778, 1))
        sdb.flush()
        sdb.checkpoint()
        sdb.crash()
        assert h1.pass3.stable_key is None or h1.pass3.stable_key != 777
        report = sdb.recover()
        assert sdb.handle(0).pass3.reorg_bit in (0, False)
        assert sdb.handle(1).pass3.reorg_bit
        assert sdb.handle(1).pass3.stable_key == 777
        assert list(sdb.handle(1).pass3.side_file_entries) == [
            ("insert", 778, 1)
        ]
        assert set(report.shard_pass3) == {"shard0", "shard1"}
        merged = [r.key for r in sdb.range_scan(0, 1199)]
        assert merged == alive

    def test_crash_regrants_leases_on_rebuilt_map(self):
        sdb, _ = load_sharded(2)
        sdb.flush()
        sdb.checkpoint()
        before = [
            (h.store.leaf_lease.start, h.store.leaf_lease.end)
            for h in sdb.handles
        ]
        sdb.crash()
        sdb.recover()
        after = [
            (h.store.leaf_lease.start, h.store.leaf_lease.end)
            for h in sdb.handles
        ]
        assert before == after
        # Allocation still honours the lease after recovery.
        page = sdb.handle(1).store.allocate_leaf()
        assert before[1][0] <= page.page_id < before[1][1]


class TestParallelReorgOutcome:
    def test_reorg_preserves_records_and_speeds_up(self):
        sdb1, alive = load_sharded(1)
        sdb1.flush()
        sdb1.checkpoint()
        m1 = ParallelReorganizer(
            sdb1,
            ReorgConfig(target_fill=0.9),
            unit_pause=0.1,
            scan_pause=0.1,
            op_duration=1.0,
        ).run()
        sdb4, _ = load_sharded(4)
        sdb4.flush()
        sdb4.checkpoint()
        reorg = ParallelReorganizer(
            sdb4,
            ReorgConfig(target_fill=0.9),
            unit_pause=0.1,
            scan_pause=0.1,
            op_duration=1.0,
        )
        m4 = reorg.run()
        assert m4 < m1 / 2
        for sdb in (sdb1, sdb4):
            sdb.validate()
            assert [r.key for r in sdb.range_scan(0, 1199)] == alive
        assert set(reorg.results) == {h.tree_name for h in sdb4.handles}
        assert all(h.stats.reorg_units > 0 for h in sdb4.handles)
        assert all(h.stats.reorg_makespan <= m4 for h in sdb4.handles)

    def test_unit_ids_globally_unique_across_shards(self):
        from repro.wal.records import ReorgBeginRecord

        sdb, _ = load_sharded(3)
        sdb.flush()
        sdb.checkpoint()
        ParallelReorganizer(sdb, ReorgConfig(target_fill=0.9)).run()
        begins = [
            r.unit_id
            for r in sdb.log.records_from(1)
            if isinstance(r, ReorgBeginRecord)
        ]
        assert len(begins) == len(set(begins))
