"""End-to-end lifecycle: years of database life, compressed.

Cycles of workload churn, on-line reorganization under concurrency, crash,
recovery, and more churn — asserting after every phase that the tree
validates and contains exactly the model's records.
"""

import random

import pytest

from repro.btree.protocols import reader_search, updater_delete, updater_insert
from repro.btree.stats import collect_stats
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import LogCrashInjector, crash_recover
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler
from repro.txn.transaction import Transaction
from repro.wal.records import CommitRecord, EndRecord


def committed_op(db, tree, model, op, key):
    txn = Transaction()
    if op == "insert" and key not in model:
        tree.insert(Record(key, f"v{key}"), txn)
        model[key] = f"v{key}"
    elif op == "delete" and key in model:
        tree.delete(key, txn)
        del model[key]
    else:
        return
    db.log.append(CommitRecord(txn_id=txn.txn_id, prev_lsn=txn.last_lsn))
    db.log.append(EndRecord(txn_id=txn.txn_id))


def churn(db, tree, model, rng, rounds, key_space):
    for _ in range(rounds):
        op = "delete" if (model and rng.random() < 0.6) else "insert"
        key = (
            rng.choice(tuple(model)) if op == "delete" and model
            else rng.randrange(key_space)
        )
        committed_op(db, tree, model, op, key)


def check(db, model):
    tree = db.tree()
    tree.validate()
    assert sorted(r.key for r in tree.items()) == sorted(model)
    return tree


class TestLifecycle:
    def test_three_epochs_with_crashes(self):
        rng = random.Random(2024)
        db = Database(
            TreeConfig(
                leaf_capacity=8,
                internal_capacity=6,
                leaf_extent_pages=1024,
                internal_extent_pages=512,
                buffer_pool_pages=96,
            )
        )
        model: dict[int, str] = {}
        tree = db.bulk_load_tree([Record(k, f"v{k}") for k in range(800)])
        model.update({k: f"v{k}" for k in range(800)})
        config = ReorgConfig(target_fill=0.9, stable_point_interval=3)

        for epoch in range(3):
            # 1. churn
            churn(db, db.tree(), model, rng, rounds=600, key_space=3000)
            db.log.flush()
            check(db, model)
            # 2. crash mid-workload, recover
            loser = Transaction()
            tree = db.tree()
            probe = max(model) + 1
            tree.insert(Record(probe, "loser"), loser)
            db.log.flush()
            crash_recover(db)
            check(db, model)
            # 3. reorganize, crashing it the first time
            crashed = False
            try:
                with LogCrashInjector(db.log, after_records=37 + epoch * 11):
                    Reorganizer(db, db.tree(), config).run()
            except CrashPoint:
                crashed = True
            if crashed:
                recovery = crash_recover(db)
                Reorganizer(db, db.tree(), config).forward_recover(recovery)
                reorg = Reorganizer(db, db.tree(), config)
                if db.store.get(db.tree().root_id).kind.value == "internal":
                    reorg.run()
            check(db, model)
            # 4. checkpoint and carry on
            db.checkpoint()
        stats = collect_stats(db.tree())
        assert stats.leaf_fill > 0.5
        assert stats.disk_order_fraction == 1.0

    def test_concurrent_epoch_then_synchronous_epoch(self):
        """A DES epoch (protocols under contention) followed by synchronous
        churn must compose cleanly on the same database."""
        db = Database(
            TreeConfig(
                leaf_capacity=8,
                internal_capacity=6,
                leaf_extent_pages=1024,
                internal_extent_pages=512,
                buffer_pool_pages=128,
            )
        )
        tree = db.bulk_load_tree(
            [Record(k, "x") for k in range(600)], internal_fill=0.5
        )
        rng = random.Random(5)
        for key in rng.sample(range(600), 400):
            tree.delete(key)
        model = {r.key: r.payload for r in tree.items()}

        # Concurrent epoch.
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        protocol = ReorgProtocol(
            db, "primary", ReorgConfig(), unit_pause=0.02, op_duration=0.1
        )
        sched.spawn(
            full_reorganization(protocol), name="reorg", is_reorganizer=True
        )
        inserts = [10_000 + i for i in range(40)]
        deletes = rng.sample(sorted(model), 30)
        for i, key in enumerate(inserts):
            sched.spawn(
                updater_insert(db, "primary", Record(key, "new")), at=0.3 * i
            )
        for i, key in enumerate(deletes):
            sched.spawn(updater_delete(db, "primary", key), at=0.4 * i + 0.1)
        for i, key in enumerate(list(model)[:30]):
            sched.spawn(reader_search(db, "primary", key), at=0.25 * i)
        sched.run()
        assert sched.failed == []
        for key in inserts:
            model[key] = "new"
        for key in deletes:
            model.pop(key, None)
        tree = check(db, model)

        # Synchronous epoch on the switched tree.
        for key in range(20_000, 20_100):
            tree.insert(Record(key, "post"))
            model[key] = "post"
        Reorganizer(db, tree, ReorgConfig()).run()
        check(db, model)

    def test_repeated_reorganizations_are_stable(self):
        """Reorganizing an already-reorganized tree is near-free and keeps
        converging to the same compact shape."""
        db = Database(
            TreeConfig(
                leaf_capacity=16,
                internal_capacity=8,
                leaf_extent_pages=1024,
                internal_extent_pages=512,
            )
        )
        tree = db.bulk_load_tree([Record(k) for k in range(2000)])
        rng = random.Random(7)
        for key in rng.sample(range(2000), 1400):
            tree.delete(key)
        config = ReorgConfig(target_fill=0.9)
        first = Reorganizer(db, db.tree(), config).run()
        assert first.pass1.units > 0
        second = Reorganizer(db, db.tree(), config).run()
        # Second run finds almost nothing to do.
        assert second.pass1.units <= max(2, first.pass1.units // 10)
        assert second.pass2.operations == 0
        db.tree().validate()
