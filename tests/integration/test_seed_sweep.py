"""Seed-sweep robustness: the full concurrent experiment across many
deterministic seeds.

Each seed produces a different workload mix, arrival pattern and sparse
tree; across all of them the invariants must hold: no transaction fails,
the tree validates, the reorganizer terminates, and the paper-vs-Smith
ordering of E2 is preserved.
"""

import pytest

from repro.btree.stats import collect_stats
from repro.config import ReorgConfig, TreeConfig
from repro.sim.driver import ExperimentSetup, run_concurrent_experiment
from repro.sim.workload import WorkloadConfig

SEEDS = [3, 17, 42, 99, 123]


def setup_for(seed):
    return ExperimentSetup(
        tree_config=TreeConfig(
            leaf_capacity=16,
            internal_capacity=8,
            leaf_extent_pages=1024,
            internal_extent_pages=256,
            buffer_pool_pages=256,
        ),
        reorg_config=ReorgConfig(target_fill=0.9),
        workload=WorkloadConfig(
            n_transactions=120,
            key_space=2000,
            mean_interarrival=0.3,
            seed=seed,
        ),
        n_records=2000,
        fill_after=0.3,
        op_duration=0.25,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_paper_reorganizer_robust_across_seeds(seed):
    db, metrics = run_concurrent_experiment(
        setup_for(seed), reorganizer="paper"
    )
    assert metrics.aborted == 0
    assert metrics.completed == metrics.user_txns
    assert metrics.reorg_elapsed > 0
    tree = db.tree()
    tree.validate()
    assert collect_stats(tree).leaf_fill > 0.5
    assert not db.pass3.reorg_bit
    assert not db.progress.unit_in_flight


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_paper_beats_smith_across_seeds(seed):
    _, paper = run_concurrent_experiment(setup_for(seed), reorganizer="paper")
    _, smith = run_concurrent_experiment(setup_for(seed), reorganizer="smith90")
    assert paper.blocked_txns < smith.blocked_txns
    assert paper.mean_wait < smith.mean_wait
