"""Crash-offset audit of the complete three-pass reorganization.

Crashes the full pipeline at log-append offsets spanning pass 1, pass 2,
pass 3 and the switch; recovery + forward recovery must restore the exact
record set at *every* offset.  The committed test strides the offsets to
stay fast; ``CRASH_AUDIT=full`` sweeps every single one (the full sweep is
run-clean as of this commit: 190/190 offsets).
"""

import os

import pytest

from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import LogCrashInjector, crash_recover
from repro.storage.page import Record

CONFIG = ReorgConfig(stable_point_interval=2)


def build():
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=512,
            internal_extent_pages=256,
            buffer_pool_pages=64,
        )
    )
    tree = db.bulk_load_tree(
        [Record(k, "v") for k in range(240)], leaf_fill=1.0, internal_fill=0.5
    )
    for k in range(240):
        if k % 4 != 0:
            tree.delete(k)
    db.flush()
    db.checkpoint()
    return db


def calibrate():
    db = build()
    mark = db.log.last_lsn
    Reorganizer(db, db.tree(), CONFIG).run()
    total = db.log.last_lsn - mark
    expected = sorted(r.key for r in db.tree().items())
    return total, expected


def audit_offset(crash_after, expected):
    db = build()
    reorg = Reorganizer(db, db.tree(), CONFIG)
    try:
        with LogCrashInjector(db.log, after_records=crash_after):
            reorg.run()
        crashed = False
    except CrashPoint:
        crashed = True
    if crashed:
        recovery = crash_recover(db)
        fresh = Reorganizer(db, db.tree(), CONFIG)
        report = fresh.forward_recover(recovery)
        if report.switch is None:
            fresh.run()
    tree = db.tree()
    tree.validate()
    assert sorted(r.key for r in tree.items()) == expected, crash_after


def test_crash_audit_across_all_passes():
    total, expected = calibrate()
    stride = 1 if os.environ.get("CRASH_AUDIT") == "full" else 7
    for crash_after in range(2, total + 1, stride):
        audit_offset(crash_after, expected)
