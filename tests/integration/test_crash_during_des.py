"""Crash injection *during* the concurrency simulation.

A system failure hits while user transactions and the reorganizer are
interleaved on the scheduler; recovery + forward recovery must restore a
valid tree whose content reflects exactly the operations that had applied
(the DES protocols auto-commit each single-operation transaction at the
instant its engine call runs, so applied = committed).
"""

import pytest

from repro.btree.protocols import updater_delete, updater_insert
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import crash_recover
from repro.sim.workload import build_sparse_tree
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler
from repro.wal.records import LeafDeleteRecord, LeafInsertRecord


def make_db():
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=1024,
            internal_extent_pages=512,
            buffer_pool_pages=128,
        )
    )
    build_sparse_tree(db, n_records=600, fill_after=0.35)
    db.flush()
    db.checkpoint()
    return db


class FlushingLog:
    """Context manager: every append is flushed (the crash keeps all)."""

    def __init__(self, log):
        self.log = log
        self._original = None

    def __enter__(self):
        self._original = self.log.append

        def flushing_append(record):
            lsn = self._original(record)
            self.log.flush()
            return lsn

        self.log.append = flushing_append
        return self

    def __exit__(self, *exc):
        self.log.append = self._original


@pytest.mark.parametrize("crash_time", [2.0, 6.0, 12.0])
def test_crash_mid_simulation_recovers_consistently(crash_time):
    db = make_db()
    baseline = {r.key for r in db.tree().items()}
    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(), unit_pause=0.02, op_duration=0.2
    )
    sched.spawn(
        full_reorganization(protocol), name="reorg", is_reorganizer=True
    )
    for i in range(80):
        if i % 2 == 0:
            sched.spawn(
                updater_insert(db, "primary", Record(10_000 + i, "w")),
                at=0.2 * i,
            )
        else:
            victim = sorted(baseline)[i % len(baseline)]
            sched.spawn(updater_delete(db, "primary", victim), at=0.2 * i)

    with FlushingLog(db.log):
        sched.run(until=crash_time)
    # The power fails here: everything volatile is gone mid-flight.
    recovery = crash_recover(db)
    reorg = Reorganizer(db, db.tree(), ReorgConfig())
    reorg.forward_recover(recovery)
    tree = db.tree()
    tree.validate()

    # Applied-equals-committed: reconstruct the expected content from the
    # stable log's leaf records (net effect per key).
    expected = set(baseline)
    for record in db.log.records_from(1):
        if isinstance(record, LeafInsertRecord):
            expected.add(record.record.key)
        elif isinstance(record, LeafDeleteRecord):
            expected.discard(record.record.key)
    # CLR-compensated keys (undone work) net out through the same scan
    # because CLRs are logged as inserts/deletes too... they are
    # CompensationRecords, handled by redo; reconcile via the tree:
    actual = {r.key for r in tree.items()}
    # Every key the log net-inserted and never compensated must be present;
    # the cheap sufficient check: actual is internally consistent with the
    # log-derived set modulo compensations.
    from repro.wal.records import CompensationRecord

    for record in db.log.records_from(1):
        if isinstance(record, CompensationRecord):
            if record.is_insert:
                expected.add(record.record.key)
            else:
                expected.discard(record.record.key)
    assert actual == expected


def test_system_continues_after_recovery():
    """After the crash and recovery the same database serves new work and
    can be reorganized again."""
    db = make_db()
    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(), unit_pause=0.02, op_duration=0.2
    )
    sched.spawn(
        full_reorganization(protocol), name="reorg", is_reorganizer=True
    )
    with FlushingLog(db.log):
        sched.run(until=4.0)
    recovery = crash_recover(db)
    Reorganizer(db, db.tree(), ReorgConfig()).forward_recover(recovery)
    # New epoch: fresh scheduler over the recovered database.
    sched2 = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocol2 = ReorgProtocol(db, "primary", ReorgConfig())
    sched2.spawn(
        full_reorganization(protocol2), name="reorg2", is_reorganizer=True
    )
    for i in range(30):
        sched2.spawn(
            updater_insert(db, "primary", Record(50_000 + i, "post")),
            at=0.1 * i,
        )
    sched2.run()
    assert sched2.failed == []
    tree = db.tree()
    tree.validate()
    for i in range(30):
        assert tree.search(50_000 + i) is not None
