"""Tests for the reader/updater DES protocols (sections 4.1.2-4.1.3)."""

import pytest

from repro.btree.protocols import (
    reader_range_scan,
    reader_search,
    updater_delete,
    updater_insert,
)
from repro.config import TreeConfig
from repro.db import Database
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock
from repro.storage.page import Record
from repro.txn.ops import Acquire, Release, ReleaseAll, Think
from repro.txn.scheduler import Scheduler


def make_db(n=200, leaf_capacity=8):
    db = Database(
        TreeConfig(
            leaf_capacity=leaf_capacity,
            internal_capacity=6,
            leaf_extent_pages=256,
            internal_extent_pages=128,
            buffer_pool_pages=64,
        )
    )
    db.bulk_load_tree([Record(k, f"v{k}") for k in range(n)], leaf_fill=1.0)
    return db


def make_scheduler(db):
    return Scheduler(db.locks, store=db.store, log=db.log, io_time=0.1, hit_time=0.01)


class TestReader:
    def test_search_finds_record(self):
        db = make_db()
        sched = make_scheduler(db)
        sched.spawn(reader_search(db, "primary", 42))
        sched.run()
        assert sched.completed[0][1].payload == "v42"

    def test_search_missing_returns_none(self):
        db = make_db()
        sched = make_scheduler(db)
        sched.spawn(reader_search(db, "primary", 100_000))
        sched.run()
        assert sched.completed[0][1] is None

    def test_all_locks_released_after_search(self):
        db = make_db()
        sched = make_scheduler(db)
        txn = sched.spawn(reader_search(db, "primary", 3))
        sched.run()
        assert db.locks.owned_resources(txn) == []

    def test_range_scan_returns_ordered_records(self):
        db = make_db()
        sched = make_scheduler(db)
        sched.spawn(reader_range_scan(db, "primary", 10, 40))
        sched.run()
        assert [r.key for r in sched.completed[0][1]] == list(range(10, 41))

    def test_reader_backs_off_from_rx_and_completes(self):
        """A reorganizer-style process holds RX on the reader's target leaf;
        the reader must back off via instant RS and finish after release."""
        db = make_db()
        tree = db.tree()
        leaf = tree.path_to_leaf(0)[-1]
        base = tree.path_to_leaf(0)[-2]
        sched = make_scheduler(db)

        def fake_reorganizer():
            yield Acquire(page_lock(base), LockMode.R)
            yield Acquire(page_lock(leaf), LockMode.RX)
            yield Think(5.0)
            yield ReleaseAll()

        sched.spawn(fake_reorganizer(), name="reorg", is_reorganizer=True)
        reader_txn = sched.spawn(reader_search(db, "primary", 0), at=1.0)
        sched.run()
        assert sched.completed, "reader must eventually complete"
        results = {t.name: r for t, r in sched.completed}
        assert reader_txn.metrics.rx_backoffs >= 1
        # The RS wait kept the reader blocked until the reorganizer ended.
        assert reader_txn.metrics.end_time >= 5.0
        assert any(
            r is not None and getattr(r, "key", None) == 0
            for r in results.values()
        )


class TestUpdater:
    def test_insert_success(self):
        db = make_db()
        sched = make_scheduler(db)
        sched.spawn(updater_insert(db, "primary", Record(100_000, "new")))
        sched.run()
        assert sched.completed[0][1] is True
        assert db.tree().search(100_000).payload == "new"
        db.tree().validate()

    def test_duplicate_insert_returns_false(self):
        db = make_db()
        sched = make_scheduler(db)
        sched.spawn(updater_insert(db, "primary", Record(5, "dup")))
        sched.run()
        assert sched.completed[0][1] is False

    def test_delete_success(self):
        db = make_db()
        sched = make_scheduler(db)
        sched.spawn(updater_delete(db, "primary", 7))
        sched.run()
        assert sched.completed[0][1] is True
        assert db.tree().search(7) is None
        db.tree().validate()

    def test_insert_causing_split_uses_structural_path(self):
        db = make_db(n=64, leaf_capacity=4)  # bulk-loaded full: any insert splits
        sched = make_scheduler(db)
        sched.spawn(updater_insert(db, "primary", Record(1_000, "s")))
        sched.run()
        assert sched.completed[0][1] is True
        tree = db.tree()
        tree.validate()
        assert tree.search(1_000) is not None

    def test_delete_draining_leaf_uses_structural_path(self):
        db = make_db(n=64, leaf_capacity=4)
        tree = db.tree()
        first_leaf = db.store.get_leaf(tree.leftmost_leaf_id())
        keys = [r.key for r in first_leaf.records]
        sched = make_scheduler(db)
        for i, key in enumerate(keys):
            sched.spawn(updater_delete(db, "primary", key), at=float(i))
        sched.run()
        tree = db.tree()
        tree.validate()
        for key in keys:
            assert tree.search(key) is None

    def test_concurrent_updaters_serialize_on_leaf(self):
        db = make_db()
        sched = make_scheduler(db)
        # Two updaters of neighbouring keys in the same leaf.
        sched.spawn(updater_insert(db, "primary", Record(100_001, "a"), think=2.0))
        second = sched.spawn(
            updater_insert(db, "primary", Record(100_002, "b"), think=2.0),
            at=0.5,
        )
        sched.run()
        assert all(r is True for _, r in sched.completed)
        assert second.metrics.blocks >= 1
        db.tree().validate()

    def test_many_concurrent_transactions_preserve_integrity(self):
        import random

        rng = random.Random(5)
        db = make_db(n=400)
        sched = make_scheduler(db)
        expected = set(range(400))
        clock = 0.0
        for i in range(120):
            clock += rng.random() * 0.2
            op = rng.random()
            key = rng.randrange(600)
            if op < 0.5:
                sched.spawn(reader_search(db, "primary", key), at=clock)
            elif op < 0.75:
                sched.spawn(
                    updater_insert(db, "primary", Record(key, "w")), at=clock
                )
                expected.add(key)
            else:
                sched.spawn(updater_delete(db, "primary", key), at=clock)
                expected.discard(key)
        sched.run()
        tree = db.tree()
        tree.validate()
        # Inserts/deletes of the same key race; just verify integrity and
        # that nothing deadlocked into a stall.
        assert sched.failed == []


class TestRecordLevelLocking:
    """Section 4.1.2's aside: page S downgraded to IS plus a record S."""

    def test_downgrade_and_record_lock_held_to_txn_end(self):
        from repro.btree.protocols import reader_search_record_locking
        from repro.locks.resources import record_lock

        db = make_db()
        tree = db.tree()
        leaf = tree.path_to_leaf(5)[-1]
        sched = make_scheduler(db)
        observed = {}

        def prober():
            # While the reader thinks (holding IS + record S), another
            # reader of the page proceeds and the lock state is visible.
            yield Think(1.0)
            observed["leaf_modes"] = dict(db.locks.holders_of(page_lock(leaf)))
            observed["record_holders"] = dict(
                db.locks.holders_of(record_lock(5))
            )
            return None

        reader = sched.spawn(
            reader_search_record_locking(db, "primary", 5, think=3.0)
        )
        sched.spawn(prober())
        sched.run()
        assert next(r for t, r in sched.completed if t is reader).key == 5
        leaf_modes = [
            m for modes in observed["leaf_modes"].values() for m in modes
        ]
        assert LockMode.IS in leaf_modes
        assert LockMode.S not in leaf_modes  # the page S was downgraded
        assert observed["record_holders"], "record S held to txn end"
        # Everything released at the end.
        assert db.locks.holders_of(record_lock(5)) == {}

    def test_record_level_reader_coexists_with_page_updater(self):
        from repro.btree.protocols import reader_search_record_locking
        from repro.locks.modes import LockMode as LM

        db = make_db()
        tree = db.tree()
        leaf = tree.path_to_leaf(5)[-1]
        sched = make_scheduler(db)

        def record_level_updater():
            # An updater doing record-level locking IX-locks the page; that
            # is compatible with the reader's downgraded IS.
            yield Think(0.5)
            yield Acquire(page_lock(leaf), LM.IX)
            got_at = sched.now
            yield ReleaseAll()
            return got_at

        reader = sched.spawn(
            reader_search_record_locking(db, "primary", 5, think=5.0)
        )
        updater = sched.spawn(record_level_updater())
        sched.run()
        got_at = next(r for t, r in sched.completed if t is updater)
        # The updater did not wait for the reader's think window to end.
        assert got_at < 1.0
        del reader
