"""Property-based tests: the B+-tree behaves like a sorted dict.

Hypothesis drives random operation sequences against the tree and a plain
dict model; after every batch the tree must validate and agree with the
model on content, order, and range queries.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree.bulkload import bulk_load
from repro.btree.tree import BPlusTree
from repro.config import SidePointerKind
from repro.storage.page import Record

from tests.conftest import make_env

KEYS = st.integers(min_value=-10_000, max_value=10_000)

# An operation is ("insert", key) or ("delete", key).
OPS = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), KEYS),
    min_size=1,
    max_size=200,
)

SIDE_KINDS = st.sampled_from(
    [SidePointerKind.NONE, SidePointerKind.ONE_WAY, SidePointerKind.TWO_WAY]
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS, side=SIDE_KINDS)
def test_tree_matches_dict_model(ops, side):
    store, log = make_env(
        leaf_capacity=4, internal_capacity=4, side_pointers=side
    )
    tree = BPlusTree.create(store, log)
    model: dict[int, str] = {}
    for action, key in ops:
        if action == "insert":
            if key not in model:
                tree.insert(Record(key, f"v{key}"))
                model[key] = f"v{key}"
        else:
            if key in model:
                tree.delete(key)
                del model[key]
    tree.validate()
    assert [r.key for r in tree.items()] == sorted(model)
    for key in list(model)[:20]:
        assert tree.search(key).payload == model[key]


@settings(max_examples=40, deadline=None)
@given(ops=OPS, low=KEYS, high=KEYS)
def test_range_scan_matches_model(ops, low, high):
    store, log = make_env(leaf_capacity=4, internal_capacity=4)
    tree = BPlusTree.create(store, log)
    model: set[int] = set()
    for action, key in ops:
        if action == "insert" and key not in model:
            tree.insert(Record(key))
            model.add(key)
        elif action == "delete" and key in model:
            tree.delete(key)
            model.discard(key)
    expected = sorted(k for k in model if low <= k <= high)
    assert [r.key for r in tree.range_scan(low, high)] == expected


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(KEYS, unique=True, min_size=1, max_size=300),
    leaf_fill=st.floats(min_value=0.3, max_value=1.0),
    internal_fill=st.floats(min_value=0.5, max_value=1.0),
)
def test_bulk_load_equivalent_to_inserts(keys, leaf_fill, internal_fill):
    records = [Record(k, f"v{k}") for k in sorted(keys)]
    store, log = make_env(leaf_capacity=8, internal_capacity=8)
    tree = bulk_load(
        store, log, records, leaf_fill=leaf_fill, internal_fill=internal_fill
    )
    tree.validate()
    assert [r.key for r in tree.items()] == sorted(keys)
    # Bulk-loaded trees are updatable afterwards.
    probe = max(keys) + 1
    tree.insert(Record(probe))
    assert tree.search(probe) is not None
    tree.validate()


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(KEYS, unique=True, min_size=5, max_size=200))
def test_bulk_load_leaves_are_in_disk_and_key_order(keys):
    records = [Record(k) for k in sorted(keys)]
    store, log = make_env(leaf_capacity=4, internal_capacity=4)
    tree = bulk_load(store, log, records, leaf_fill=1.0)
    leaf_ids = tree.leaf_ids_in_key_order()
    assert leaf_ids == sorted(leaf_ids)
    assert leaf_ids == list(range(leaf_ids[0], leaf_ids[0] + len(leaf_ids)))
