"""Tests for the latch-free optimistic read path (docs/optimistic_reads.md).

Single-schedule behaviour only — dispatch, lock-free execution, restart on
a version-stamp mismatch, RX downgrade, and the buffer-pool version
funnel.  Cross-schedule correctness is the model checker's job
(`optimistic-reader-vs-reorg` in tools/reprocheck), and the BENCH layer
pins the lock-traffic and digest-identity numbers.
"""

import pytest

from repro.btree.protocols import (
    OPTIMISTIC_STATS,
    reader_range_scan,
    reader_search,
)
from repro.config import TreeConfig
from repro.db import Database
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock
from repro.storage.page import LeafPage, Record
from repro.txn.ops import Acquire, ReleaseAll, Think
from repro.txn.scheduler import Scheduler


def make_db(n=200, leaf_capacity=8, *, optimistic=True):
    db = Database(
        TreeConfig(
            leaf_capacity=leaf_capacity,
            internal_capacity=6,
            leaf_extent_pages=256,
            internal_extent_pages=128,
            buffer_pool_pages=64,
            optimistic_reads=optimistic,
        )
    )
    db.bulk_load_tree([Record(k, f"v{k}") for k in range(n)], leaf_fill=1.0)
    return db


def make_scheduler(db):
    return Scheduler(db.locks, store=db.store, log=db.log, io_time=0.1, hit_time=0.01)


@pytest.fixture(autouse=True)
def _fresh_stats():
    OPTIMISTIC_STATS.reset()
    yield
    OPTIMISTIC_STATS.reset()


class TestDispatch:
    def test_flag_off_runs_the_locked_protocol(self):
        db = make_db(optimistic=False)
        sched = make_scheduler(db)
        sched.spawn(reader_search(db, "primary", 42))
        sched.run()
        assert sched.completed[0][1].payload == "v42"
        assert db.locks.stats.requests > 0
        assert OPTIMISTIC_STATS.searches == 0

    def test_flag_on_point_read_takes_no_locks(self):
        db = make_db()
        before = db.locks.stats.requests
        sched = make_scheduler(db)
        txn = sched.spawn(reader_search(db, "primary", 42))
        sched.run()
        assert sched.completed[0][1].payload == "v42"
        assert db.locks.stats.requests == before
        assert db.locks.owned_resources(txn) == []
        assert OPTIMISTIC_STATS.searches == 1
        assert OPTIMISTIC_STATS.validations > 0

    def test_missing_key_returns_none_without_locks(self):
        db = make_db()
        before = db.locks.stats.requests
        sched = make_scheduler(db)
        sched.spawn(reader_search(db, "primary", 100_000))
        sched.run()
        assert sched.completed[0][1] is None
        assert db.locks.stats.requests == before

    def test_range_scan_matches_tree_scan_without_locks(self):
        db = make_db()
        before = db.locks.stats.requests
        sched = make_scheduler(db)
        sched.spawn(reader_range_scan(db, "primary", 10, 40))
        sched.run()
        assert [r.key for r in sched.completed[0][1]] == list(range(10, 41))
        assert db.locks.stats.requests == before
        assert OPTIMISTIC_STATS.scans == 1


class TestConflicts:
    def test_mutation_under_think_restarts_and_reads_fresh_state(self):
        """A writer dirties the reader's leaf during its think pause; the
        post-pause validation must fail, and the restarted descent must
        return the currently-correct answer."""
        from repro.btree.protocols import updater_delete

        db = make_db()
        tree = db.tree()
        target_leaf = tree.path_to_leaf(5)[-1]
        before = db.store.version_of(target_leaf)
        sched = make_scheduler(db)
        reader = sched.spawn(reader_search(db, "primary", 5, think=2.0))
        # Key 6 shares the reader's leaf; deleting it mid-think dirties
        # that leaf, so the reader's post-pause validation must fail.
        sched.spawn(updater_delete(db, "primary", 6), at=0.5)
        sched.run()
        assert next(r for t, r in sched.completed if t is reader).key == 5
        assert db.store.version_of(target_leaf) > before
        assert OPTIMISTIC_STATS.restarts >= 1

    def test_rx_holder_forces_downgrade_to_locked_protocol(self):
        """An optimistic reader that meets a held RX must abandon the
        lock-free attempt: the Table-1 back-off then plays out exactly as
        for a locked reader (instant RS, wait for the unit to finish)."""
        db = make_db()
        tree = db.tree()
        leaf = tree.path_to_leaf(0)[-1]
        base = tree.path_to_leaf(0)[-2]
        sched = make_scheduler(db)

        def fake_reorganizer():
            yield Acquire(page_lock(base), LockMode.R)
            yield Acquire(page_lock(leaf), LockMode.RX)
            yield Think(5.0)
            yield ReleaseAll()

        sched.spawn(fake_reorganizer(), name="reorg", is_reorganizer=True)
        reader = sched.spawn(reader_search(db, "primary", 0), at=1.0)
        sched.run()
        assert next(r for t, r in sched.completed if t is reader).key == 0
        assert OPTIMISTIC_STATS.downgrades == 1
        assert reader.metrics.rx_backoffs >= 1
        assert reader.metrics.end_time >= 5.0

    def test_scan_downgrades_when_chain_walk_meets_rx(self):
        db = make_db()
        tree = db.tree()
        mid_leaf = tree.path_to_leaf(100)[-1]
        base = tree.path_to_leaf(100)[-2]
        sched = make_scheduler(db)

        def fake_reorganizer():
            yield Acquire(page_lock(base), LockMode.R)
            yield Acquire(page_lock(mid_leaf), LockMode.RX)
            yield Think(5.0)
            yield ReleaseAll()

        sched.spawn(fake_reorganizer(), name="reorg", is_reorganizer=True)
        scan = sched.spawn(reader_range_scan(db, "primary", 50, 150), at=1.0)
        sched.run()
        result = next(r for t, r in sched.completed if t is scan)
        assert [r.key for r in result] == list(range(50, 151))
        assert OPTIMISTIC_STATS.downgrades == 1


class TestVersionFunnel:
    def test_logged_mutation_bumps_the_leaf_stamp(self):
        db = make_db()
        tree = db.tree()
        leaf = tree.path_to_leaf(5)[-1]
        before = db.store.version_of(leaf)
        tree.delete(5)
        assert db.store.version_of(leaf) > before

    def test_drop_bumps_and_keeps_the_stamp_against_aba(self):
        """Free + re-allocate of the same page id must never return the
        stamp an optimistic reader captured before the free."""
        db = make_db()
        buffer = db.store.buffer
        page = LeafPage(9_999, 8)
        buffer.put_new(page)
        captured = buffer.version_of(9_999)
        assert captured > 0
        buffer.drop(9_999)
        after_drop = buffer.version_of(9_999)
        assert after_drop > captured
        buffer.put_new(LeafPage(9_999, 8))
        assert buffer.version_of(9_999) > after_drop

    def test_explicit_bump_invalidates_without_content_change(self):
        db = make_db()
        root = db.tree().root_id
        before = db.store.version_of(root)
        db.store.buffer.bump_version(root)
        assert db.store.version_of(root) == before + 1
