"""Unit tests for bulk loading and tree statistics."""

import pytest

from repro.btree.bulkload import build_upper_levels, bulk_load
from repro.btree.stats import collect_stats, measure_range_scan
from repro.errors import BTreeError
from repro.storage.page import Record

from tests.conftest import make_env


def records(n, step=1):
    return [Record(k, f"v{k}") for k in range(0, n * step, step)]


class TestBulkLoad:
    def test_empty_input_builds_empty_tree(self):
        store, log = make_env()
        tree = bulk_load(store, log, [])
        assert tree.record_count() == 0
        tree.validate()

    def test_single_leaf_tree(self):
        store, log = make_env(leaf_capacity=8)
        tree = bulk_load(store, log, records(5))
        assert tree.height() == 1
        tree.validate()

    def test_fill_factor_respected(self):
        store, log = make_env(leaf_capacity=10)
        tree = bulk_load(store, log, records(100), leaf_fill=0.5)
        stats = collect_stats(tree)
        assert stats.leaf_count == 20  # 5 records per page
        assert stats.leaf_fill == pytest.approx(0.5)

    def test_unsorted_input_rejected(self):
        store, log = make_env()
        with pytest.raises(BTreeError):
            bulk_load(store, log, [Record(2), Record(1)])

    def test_duplicate_input_rejected(self):
        store, log = make_env()
        with pytest.raises(BTreeError):
            bulk_load(store, log, [Record(1), Record(1)])

    def test_existing_name_rejected(self):
        store, log = make_env()
        bulk_load(store, log, records(3))
        with pytest.raises(BTreeError):
            bulk_load(store, log, records(3))

    def test_two_trees_coexist_under_different_names(self):
        store, log = make_env()
        a = bulk_load(store, log, records(30), name="a")
        b = bulk_load(
            store, log, [Record(k) for k in range(1000, 1030)], name="b"
        )
        a.validate()
        b.validate()
        assert a.search(0) is not None
        assert b.search(1000) is not None

    def test_build_upper_levels_rejects_empty(self):
        store, log = make_env()
        with pytest.raises(BTreeError):
            build_upper_levels(store, log, [], fill=1.0)

    def test_build_upper_levels_callback_counts_pages(self):
        store, log = make_env(internal_capacity=4)
        entries = [(k, k) for k in range(10)]
        # Children ids must exist for nothing here: upper levels only
        # reference them.  Use fill 1.0 -> 3 base pages + 1 root.
        built = []
        build_upper_levels(
            store, log, entries, fill=1.0, on_page_built=built.append
        )
        assert len(built) == 4
        assert built[0].level == 1
        assert built[-1].level == 2


class TestStats:
    def test_stats_on_packed_tree(self):
        store, log = make_env(leaf_capacity=10)
        tree = bulk_load(store, log, records(100), leaf_fill=1.0)
        stats = collect_stats(tree)
        assert stats.record_count == 100
        assert stats.leaf_fill == pytest.approx(1.0)
        assert stats.disk_order_fraction == 1.0
        assert stats.ascending_fraction == 1.0

    def test_stats_detect_sparseness(self):
        store, log = make_env(leaf_capacity=10)
        tree = bulk_load(store, log, records(100), leaf_fill=1.0)
        # Delete 70% uniformly.
        for key in range(100):
            if key % 10 < 7 and tree.search(key) is not None:
                tree.delete(key)
        stats = collect_stats(tree)
        assert stats.leaf_fill < 0.5

    def test_stats_detect_disk_disorder(self):
        """Random inserts cause splits that break disk order."""
        import random

        rng = random.Random(11)
        keys = list(range(400))
        rng.shuffle(keys)
        store, log = make_env(leaf_capacity=8)
        from repro.btree.tree import BPlusTree

        tree = BPlusTree.create(store, log)
        for key in keys:
            tree.insert(Record(key))
        stats = collect_stats(tree)
        assert stats.disk_order_fraction < 0.9

    def test_scan_cost_sequential_vs_scattered(self):
        """The motivating effect: packed trees scan almost seek-free."""
        store, log = make_env(leaf_capacity=8)
        tree = bulk_load(store, log, records(200), leaf_fill=1.0)
        store.flush_all()
        packed = measure_range_scan(tree, 0, 199)
        assert packed.records_returned == 200
        assert packed.seeks <= 1  # only the initial positioning seek

    def test_scan_cost_counts_only_overlapping_leaves(self):
        store, log = make_env(leaf_capacity=10)
        tree = bulk_load(store, log, records(100), leaf_fill=1.0)
        store.flush_all()
        cost = measure_range_scan(tree, 0, 9)
        assert cost.pages_read == 1
        assert cost.records_returned == 10
