"""Unit tests for B+-tree structure and operations."""

import pytest

from repro.btree.tree import BPlusTree
from repro.config import SidePointerKind
from repro.errors import BTreeError, KeyNotFoundError
from repro.storage.page import NO_PAGE, PageKind, Record
from repro.txn.transaction import Transaction

from tests.conftest import make_env


def make_tree(**env_kwargs):
    store, log = make_env(**env_kwargs)
    tree = BPlusTree.create(store, log)
    return tree


def fill_tree(tree, keys):
    for k in keys:
        tree.insert(Record(k, f"v{k}"))


class TestCreation:
    def test_empty_tree_is_a_leaf_root(self):
        tree = make_tree()
        root = tree.store.get(tree.root_id)
        assert root.kind is PageKind.LEAF
        assert tree.height() == 1
        assert tree.search(1) is None

    def test_create_twice_raises(self):
        tree = make_tree()
        with pytest.raises(BTreeError):
            BPlusTree.create(tree.store, tree.log)

    def test_attach_missing_raises(self):
        store, log = make_env()
        with pytest.raises(BTreeError):
            BPlusTree.attach(store, log)

    def test_attach_existing(self):
        tree = make_tree()
        fill_tree(tree, [1, 2, 3])
        again = BPlusTree.attach(tree.store, tree.log)
        assert again.search(2).payload == "v2"


class TestInsertAndSearch:
    def test_insert_search_round_trip(self):
        tree = make_tree()
        fill_tree(tree, [5, 1, 9])
        assert tree.search(5).payload == "v5"
        assert tree.search(2) is None

    def test_root_leaf_split_grows_height(self):
        tree = make_tree(leaf_capacity=4)
        fill_tree(tree, range(5))
        assert tree.height() == 2
        tree.validate()

    def test_many_inserts_sequential(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        fill_tree(tree, range(200))
        tree.validate()
        assert tree.record_count() == 200
        assert [r.key for r in tree.items()] == list(range(200))

    def test_many_inserts_reverse(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        fill_tree(tree, reversed(range(200)))
        tree.validate()
        assert [r.key for r in tree.items()] == list(range(200))

    def test_many_inserts_shuffled(self):
        import random

        rng = random.Random(7)
        keys = list(range(300))
        rng.shuffle(keys)
        tree = make_tree(leaf_capacity=6, internal_capacity=5)
        fill_tree(tree, keys)
        tree.validate()
        assert [r.key for r in tree.items()] == list(range(300))

    def test_internal_split_and_root_growth(self):
        tree = make_tree(leaf_capacity=2, internal_capacity=3)
        fill_tree(tree, range(30))
        assert tree.height() >= 3
        tree.validate()

    def test_txn_chain_recorded(self):
        tree = make_tree()
        txn = Transaction("writer")
        tree.insert(Record(1), txn)
        first = txn.last_lsn
        tree.insert(Record(2), txn)
        assert txn.last_lsn > first
        record = tree.log.get(txn.last_lsn)
        assert record.prev_lsn == first
        assert record.txn_id == txn.txn_id


class TestDelete:
    def test_delete_returns_record(self):
        tree = make_tree()
        fill_tree(tree, [1, 2])
        assert tree.delete(1).payload == "v1"
        assert tree.search(1) is None

    def test_delete_missing_raises(self):
        tree = make_tree()
        with pytest.raises(KeyNotFoundError):
            tree.delete(404)

    def test_free_at_empty_deallocates_leaf(self):
        tree = make_tree(leaf_capacity=2)
        fill_tree(tree, range(10))
        leaf_count_before = len(tree.leaf_ids_in_key_order())
        # Empty out one leaf entirely.
        first_leaf = tree.store.get_leaf(tree.leftmost_leaf_id())
        victims = [r.key for r in first_leaf.records]
        freed_id = first_leaf.page_id
        for key in victims:
            tree.delete(key)
        assert tree.store.free_map.is_free(freed_id)
        assert len(tree.leaf_ids_in_key_order()) == leaf_count_before - 1
        tree.validate()

    def test_sparse_leaves_are_not_consolidated(self):
        """Free-at-empty: leaves at 1 record stay allocated (no merging)."""
        tree = make_tree(leaf_capacity=4)
        fill_tree(tree, range(40))
        leaf_ids = tree.leaf_ids_in_key_order()
        # Delete all but the smallest record of every leaf.
        for leaf_id in leaf_ids:
            leaf = tree.store.get_leaf(leaf_id)
            for key in [r.key for r in leaf.records][1:]:
                tree.delete(key)
        assert tree.leaf_ids_in_key_order() == leaf_ids
        tree.validate()

    def test_delete_everything_leaves_empty_tree(self):
        tree = make_tree(leaf_capacity=2, internal_capacity=3)
        fill_tree(tree, range(20))
        for key in range(20):
            tree.delete(key)
        assert tree.record_count() == 0
        root = tree.store.get(tree.root_id)
        assert root.kind is PageKind.LEAF
        tree.validate()

    def test_reinsert_after_drain(self):
        tree = make_tree(leaf_capacity=2, internal_capacity=3)
        fill_tree(tree, range(20))
        for key in range(20):
            tree.delete(key)
        fill_tree(tree, range(100, 120))
        assert tree.record_count() == 20
        tree.validate()

    def test_free_at_empty_propagates_up(self):
        tree = make_tree(leaf_capacity=2, internal_capacity=3)
        fill_tree(tree, range(40))
        internal_before = self._count_internal(tree)
        for key in range(20):
            tree.delete(key)
        assert self._count_internal(tree) < internal_before
        tree.validate()

    @staticmethod
    def _count_internal(tree):
        count = 0
        stack = [tree.root_id]
        while stack:
            page = tree.store.get(stack.pop())
            if page.kind is PageKind.INTERNAL:
                count += 1
                stack.extend(page.children())
        return count


class TestRangeScan:
    def test_scan_within_one_leaf(self):
        tree = make_tree()
        fill_tree(tree, range(0, 20, 2))
        assert [r.key for r in tree.range_scan(4, 10)] == [4, 6, 8, 10]

    def test_scan_across_leaves(self):
        tree = make_tree(leaf_capacity=3)
        fill_tree(tree, range(50))
        assert [r.key for r in tree.range_scan(10, 30)] == list(range(10, 31))

    def test_scan_bounds_outside_data(self):
        tree = make_tree(leaf_capacity=3)
        fill_tree(tree, range(10, 20))
        assert [r.key for r in tree.range_scan(-5, 100)] == list(range(10, 20))
        assert tree.range_scan(50, 60) == []
        assert tree.range_scan(9, 5) == []

    def test_scan_empty_tree(self):
        tree = make_tree()
        assert tree.range_scan(0, 10) == []


class TestSidePointers:
    @pytest.mark.parametrize(
        "kind", [SidePointerKind.ONE_WAY, SidePointerKind.TWO_WAY]
    )
    def test_chain_maintained_through_splits(self, kind):
        tree = make_tree(leaf_capacity=3, side_pointers=kind)
        fill_tree(tree, range(60))
        tree.validate()  # validates the chain

    @pytest.mark.parametrize(
        "kind", [SidePointerKind.ONE_WAY, SidePointerKind.TWO_WAY]
    )
    def test_chain_maintained_through_free_at_empty(self, kind):
        import random

        rng = random.Random(3)
        tree = make_tree(leaf_capacity=3, side_pointers=kind)
        keys = list(range(60))
        fill_tree(tree, keys)
        rng.shuffle(keys)
        for key in keys[:45]:
            tree.delete(key)
        tree.validate()
        survivors = sorted(keys[45:])
        assert [r.key for r in tree.items()] == survivors

    def test_two_way_scan_uses_pointers(self):
        tree = make_tree(leaf_capacity=3, side_pointers=SidePointerKind.TWO_WAY)
        fill_tree(tree, range(30))
        assert [r.key for r in tree.range_scan(0, 29)] == list(range(30))

    def test_no_side_pointers_leaves_defaults(self):
        tree = make_tree(leaf_capacity=3)
        fill_tree(tree, range(30))
        for leaf_id in tree.leaf_ids_in_key_order():
            leaf = tree.store.get_leaf(leaf_id)
            assert leaf.next_leaf == NO_PAGE
            assert leaf.prev_leaf == NO_PAGE


class TestBasePageHelpers:
    def test_base_page_for_returns_parent_of_leaf(self):
        tree = make_tree(leaf_capacity=3, internal_capacity=3)
        fill_tree(tree, range(40))
        base = tree.base_page_for(0)
        assert base.level == 1
        leaf_id = tree.path_to_leaf(0)[-1]
        assert leaf_id in base.children()

    def test_base_page_for_leaf_root_is_none(self):
        tree = make_tree()
        fill_tree(tree, [1])
        assert tree.base_page_for(1) is None

    def test_low_marks_set_on_base_pages(self):
        tree = make_tree(leaf_capacity=3, internal_capacity=3)
        fill_tree(tree, range(60))
        base = tree.base_page_for(0)
        assert base.low_mark is not None
