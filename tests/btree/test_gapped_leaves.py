"""Gapped leaf layout: config helpers, bulk load, absorption, rebuild.

``TreeConfig(leaf_gap_fraction=...)`` reserves slack slots in every leaf a
builder lays out, so later inserts land in the gap instead of splitting.
The knob is interpreted in exactly one place —
:func:`repro.config.leaf_gap_slots` / :func:`repro.config.gapped_leaf_fill`
(enforced statically by the ``gap-via-config`` reprolint rule) — and flows
from there into bulk load and the pass 1/2/3 rebuild arithmetic.
"""

import pytest

from repro.config import (
    ReorgConfig,
    TreeConfig,
    gapped_leaf_fill,
    leaf_gap_slots,
)
from repro.db import Database
from repro.perf import PERF
from repro.reorg.compact import LeafCompactor
from repro.reorg.placement import gapped_leaf_fill_count
from repro.storage.page import Record


def gap_config(gap=0.25, cap=16):
    return TreeConfig(
        leaf_capacity=cap,
        internal_capacity=8,
        leaf_extent_pages=256,
        internal_extent_pages=64,
        buffer_pool_pages=128,
        leaf_gap_fraction=gap,
    )


def leaf_sizes(tree):
    return [
        tree.store.get_leaf(pid).num_items
        for pid in tree.leaf_ids_in_key_order()
    ]


class TestConfigHelpers:
    def test_gap_slots_floor(self):
        assert leaf_gap_slots(gap_config(0.0)) == 0
        assert leaf_gap_slots(gap_config(0.25, cap=16)) == 4
        assert leaf_gap_slots(gap_config(0.1, cap=16)) == 1
        # floor, not round: 0.49 of 4 slots is 1 slot, not 2
        assert leaf_gap_slots(gap_config(0.49, cap=4)) == 1

    def test_gapped_fill_clamps_to_packed_capacity(self):
        config = gap_config(0.25, cap=16)
        assert gapped_leaf_fill(config, 1.0) == 12
        assert gapped_leaf_fill(config, 0.5) == 8  # below the clamp
        assert gapped_leaf_fill(config, 0.8) == 12  # 12.8 clamped to 12

    def test_zero_gap_is_the_historical_arithmetic(self):
        config = gap_config(0.0, cap=16)
        for fill in (1.0, 0.9, 0.5, 0.01):
            assert gapped_leaf_fill(config, fill) == max(1, int(16 * fill))

    def test_placement_reexport_matches(self):
        config = gap_config(0.25, cap=16)
        assert gapped_leaf_fill_count(config, 0.9) == gapped_leaf_fill(
            config, 0.9
        )

    def test_validation_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            gap_config(1.0)
        with pytest.raises(ValueError):
            gap_config(-0.1)
        # fraction < 1 always leaves at least one packed slot
        assert gapped_leaf_fill(gap_config(0.99, cap=4), 1.0) == 1


class TestGappedBulkLoad:
    def test_leaves_built_with_gap(self):
        PERF.reset()
        db = Database(gap_config(0.25, cap=16))
        tree = db.bulk_load_tree(
            [Record(k, "v") for k in range(120)], leaf_fill=1.0
        )
        sizes = leaf_sizes(tree)
        assert all(size <= 12 for size in sizes)
        assert sizes[:-1] == [12] * (len(sizes) - 1)
        assert PERF.gap.gapped_leaves_built == len(sizes)
        tree.validate()

    def test_zero_gap_packs_full(self):
        PERF.reset()
        db = Database(gap_config(0.0, cap=16))
        tree = db.bulk_load_tree(
            [Record(k, "v") for k in range(120)], leaf_fill=1.0
        )
        assert max(leaf_sizes(tree)) == 16
        assert PERF.gap.gapped_leaves_built == 0

    def test_gap_does_not_change_contents(self):
        records = [Record(k, f"v{k}") for k in range(200)]
        contents = []
        for gap in (0.0, 0.25):
            db = Database(gap_config(gap))
            tree = db.bulk_load_tree(list(records), leaf_fill=1.0)
            contents.append([(r.key, r.payload) for r in tree.items()])
        assert contents[0] == contents[1]


class TestInsertAbsorption:
    def test_gap_absorbs_inserts_without_splitting(self):
        PERF.reset()
        db = Database(gap_config(0.25, cap=16))
        tree = db.bulk_load_tree(
            [Record(2 * k, "v") for k in range(96)], leaf_fill=1.0
        )
        # 8 leaves x 4 slack slots: these interior inserts fit gap-only
        for key in (1, 3, 5, 25, 27, 49, 51, 75, 77, 101, 121, 141):
            tree.insert(Record(key, "w"))
        assert PERF.gap.leaf_splits == 0
        assert PERF.gap.absorbed_inserts == 12
        assert db.frag_stats().absorbed_inserts == 12
        tree.validate()

    def test_gapless_same_stream_splits(self):
        PERF.reset()
        db = Database(gap_config(0.0, cap=16))
        tree = db.bulk_load_tree(
            [Record(2 * k, "v") for k in range(96)], leaf_fill=1.0
        )
        for key in (1, 3, 5, 25, 27, 49, 51, 75, 77, 101, 121, 141):
            tree.insert(Record(key, "w"))
        assert PERF.gap.leaf_splits > 0
        assert PERF.gap.absorbed_inserts == 0

    def test_overflowing_the_gap_still_splits_correctly(self):
        PERF.reset()
        db = Database(gap_config(0.25, cap=8))
        tree = db.bulk_load_tree(
            [Record(4 * k, "v") for k in range(40)], leaf_fill=1.0
        )
        for k in range(160):
            if k % 4:
                tree.insert(Record(k, "w"))
        assert PERF.gap.leaf_splits > 0
        assert tree.record_count() == 160
        tree.validate()


class TestRebuildKeepsGap:
    def test_compaction_packs_to_gapped_target(self):
        db = Database(gap_config(0.25, cap=16))
        tree = db.bulk_load_tree(
            [Record(k, "v") for k in range(320)], leaf_fill=1.0
        )
        for k in range(320):
            if k % 2:
                tree.delete(k)
        before = [(r.key, r.payload) for r in tree.items()]
        LeafCompactor(db, tree, ReorgConfig(target_fill=1.0)).run()
        # the rebuilt leaves respect the gap clamp, not raw capacity
        assert max(leaf_sizes(tree)) <= 12
        assert [(r.key, r.payload) for r in tree.items()] == before
        tree.validate()
