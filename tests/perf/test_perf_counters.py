"""Tests for the perf instrumentation layer.

Two properties matter:

* the counters are *deterministic*: two identical seeded DES runs produce
  identical counter snapshots (timers are wall-clock and excluded);
* the lock-manager fast path is *invisible* semantically: every Table-1
  mode pair resolves to the same outcome whether or not the first request
  took the uncontended fast path.
"""

import pytest

from repro.config import ReorgConfig, TreeConfig
from repro.errors import LockProtocolViolation, RXConflictError
from repro.locks.manager import LockManager, RequestState
from repro.locks.modes import LockMode, compatibility_cell
from repro.locks.resources import page_lock
from repro.perf import PERF
from repro.sim.driver import ExperimentSetup, run_concurrent_experiment
from repro.sim.workload import WorkloadConfig

HOLDABLE_MODES = [
    LockMode.IS, LockMode.IX, LockMode.S, LockMode.X, LockMode.R, LockMode.RX,
]
ALL_MODES = HOLDABLE_MODES + [LockMode.RS]


class Owner:
    def __init__(self, name, is_reorganizer=False):
        self.name = name
        self.is_reorganizer = is_reorganizer

    def __repr__(self):
        return self.name


def _small_setup(seed: int = 11) -> ExperimentSetup:
    """A scaled-down E2 cell: enough traffic to exercise every counter."""
    return ExperimentSetup(
        tree_config=TreeConfig(
            leaf_capacity=16,
            internal_capacity=8,
            leaf_extent_pages=256,
            internal_extent_pages=64,
            buffer_pool_pages=128,
        ),
        reorg_config=ReorgConfig(target_fill=0.9),
        workload=WorkloadConfig(
            n_transactions=40,
            key_space=600,
            mean_interarrival=0.25,
            zipf_theta=0.0,
            seed=seed,
        ),
        n_records=600,
        fill_after=0.3,
        op_duration=0.3,
    )


class TestCounterDeterminism:
    def test_identical_seeded_runs_produce_identical_counters(self):
        snapshots = []
        for _ in range(2):
            PERF.reset()
            run_concurrent_experiment(_small_setup(), reorganizer="paper")
            snapshots.append(PERF.counters.snapshot())
        assert snapshots[0] == snapshots[1]
        # The run must actually have exercised the instrumented paths.
        assert snapshots[0]["des_events"] > 0
        assert snapshots[0]["buffer_hits"] > 0
        assert snapshots[0]["lock_fast_grants"] > 0

    def test_different_seeds_diverge(self):
        PERF.reset()
        run_concurrent_experiment(_small_setup(seed=11), reorganizer="paper")
        first = PERF.counters.snapshot()
        PERF.reset()
        run_concurrent_experiment(_small_setup(seed=12), reorganizer="paper")
        second = PERF.counters.snapshot()
        assert first != second

    def test_reset_keeps_module_aliases_live(self):
        """Hot paths hold a module-level reference to ``PERF.counters``;
        reset() must clear in place, never rebind the object."""
        counters = PERF.counters
        counters.buffer_hits += 5
        PERF.reset()
        assert PERF.counters is counters
        assert PERF.counters.buffer_hits == 0
        counters.buffer_hits += 1
        assert PERF.counters.snapshot()["buffer_hits"] == 1


class TestLockFastPathTable1:
    """Re-check every Table-1 cell through the uncontended fast path.

    The first request on a fresh resource takes the fast path; the second
    request then resolves against that fast-granted holder.  Outcomes must
    match the compatibility table exactly: Yes -> granted, No -> waits
    (RX holder -> RXConflictError back-off), blank -> protocol violation.
    """

    @pytest.mark.parametrize("held", HOLDABLE_MODES)
    @pytest.mark.parametrize("requested", ALL_MODES)
    def test_mode_pair_outcome_matches_table(self, held, requested):
        lm = LockManager()
        a, b = Owner("a"), Owner("b")
        resource = page_lock(1)

        first = lm.request(a, resource, held, instant=False)
        assert first.state is RequestState.GRANTED
        assert lm.stats.fast_path_grants == 1
        assert lm.holds(a, resource, held)

        instant = requested is LockMode.RS
        cell = compatibility_cell(held, requested)
        if cell is None:
            with pytest.raises(LockProtocolViolation):
                lm.request(b, resource, requested, instant=instant)
        elif cell:
            second = lm.request(b, resource, requested, instant=instant)
            expected = (
                RequestState.INSTANT_DONE if instant else RequestState.GRANTED
            )
            assert second.state is expected
        elif held is LockMode.RX:
            with pytest.raises(RXConflictError):
                lm.request(b, resource, requested, instant=instant)
        else:
            second = lm.request(b, resource, requested, instant=instant)
            assert second.state is RequestState.WAITING
        # Only the first (uncontended) request may use the fast path.
        assert lm.stats.fast_path_grants == 1

    def test_instant_fast_path_leaves_no_state(self):
        """An instant-duration fast-path grant (e.g. RS) holds nothing, so
        the next request is uncontended again."""
        lm = LockManager()
        a, b = Owner("a"), Owner("b")
        resource = page_lock(2)
        first = lm.request(a, resource, LockMode.RS, instant=True)
        assert first.state is RequestState.INSTANT_DONE
        assert lm.holders_of(resource) == {}
        second = lm.request(b, resource, LockMode.X)
        assert second.state is RequestState.GRANTED
        assert lm.stats.fast_path_grants == 2

    def test_rs_must_be_instant_even_on_fast_path(self):
        lm = LockManager()
        with pytest.raises(LockProtocolViolation):
            lm.request(Owner("a"), page_lock(3), LockMode.RS, instant=False)

    def test_fast_path_skipped_when_queue_exists(self):
        """A queued waiter blocks the fast path even after the holder
        releases: FIFO order must not be jumped."""
        lm = LockManager()
        a, b, c = Owner("a"), Owner("b"), Owner("c")
        resource = page_lock(4)
        lm.request(a, resource, LockMode.X)
        waiting = lm.request(b, resource, LockMode.X)
        assert waiting.state is RequestState.WAITING
        lm.release(a, resource, LockMode.X)
        # b was granted from the queue; c must now queue behind b's hold.
        assert waiting.state is RequestState.GRANTED
        third = lm.request(c, resource, LockMode.X)
        assert third.state is RequestState.WAITING
        assert lm.stats.fast_path_grants == 1
