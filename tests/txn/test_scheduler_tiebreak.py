"""Equal-time scheduler events are ordered by sequence number only.

Explorer traces (``repro.analysis.explorer``) identify schedules by choice
indices into the *sorted* pending-event list, so the tie-break between
equal-time events must be the per-scheduler sequence counter — never dict
iteration order, callable identity, or anything else that could differ
between runs or Python versions.  The booby-trapped callables below prove
the heap never falls through to comparing the action element.
"""

from functools import partial

import pytest

from repro.locks.manager import LockManager
from repro.locks.modes import LockMode
from repro.txn.ops import Acquire, Release, Think
from repro.txn.scheduler import Scheduler


class _ActionCompared(Exception):
    pass


class BoobyTrap:
    """Callable that detonates if the event heap ever compares it."""

    def __init__(self, order: list, tag: int):
        self.order = order
        self.tag = tag

    def __call__(self):
        self.order.append(self.tag)

    def _explode(self, other):
        raise _ActionCompared("the scheduler compared an action callable")

    __lt__ = __le__ = __gt__ = __ge__ = _explode


def test_equal_time_events_run_in_schedule_order():
    scheduler = Scheduler(LockManager())
    order: list[int] = []
    for tag in range(12):
        scheduler._schedule(1.0, BoobyTrap(order, tag))
    scheduler.run()
    assert order == list(range(12))


def test_equal_time_events_never_compare_actions_in_explored_mode():
    scheduler = Scheduler(LockManager())
    order: list[int] = []
    for tag in range(12):
        scheduler._schedule(1.0, BoobyTrap(order, tag))
    # Reverse order via the policy: same-time events are still presented
    # sorted by seq, and sorting never touches the action element.
    scheduler.pick_next = lambda options: len(options) - 1
    scheduler.run()
    assert order == list(reversed(range(12)))


def test_equal_spawn_times_step_in_spawn_order():
    scheduler = Scheduler(LockManager())
    order: list = []

    def proc(tag):
        order.append(tag)
        yield Think(0.0)
        order.append((tag, "resumed"))

    for tag in "abc":
        scheduler.spawn(proc(tag), name=tag, at=0.0)
    scheduler.run()
    assert order == [
        "a", "b", "c", ("a", "resumed"), ("b", "resumed"), ("c", "resumed")
    ]


def _contended_run(pick_next=None):
    scheduler = Scheduler(LockManager())
    finished: list[str] = []

    def worker(name):
        yield Acquire(("page", 1), LockMode.X)
        yield Think(0.3)
        yield Release(("page", 1), LockMode.X)
        finished.append(name)

    for index in range(3):
        scheduler.spawn(worker(f"w{index}"), name=f"w{index}", at=0.1 * index)
    if pick_next is not None:
        scheduler.pick_next = pick_next
    scheduler.run()
    return scheduler, finished


def test_explored_mode_choice_zero_matches_native_schedule():
    native, native_finished = _contended_run()
    explored, explored_finished = _contended_run(pick_next=lambda options: 0)
    assert explored_finished == native_finished
    assert explored.now == native.now
    assert [t.name for t, _ in explored.completed] == [
        t.name for t, _ in native.completed
    ]


def test_pick_next_out_of_range_is_an_error():
    from repro.errors import ReproError

    def one_think():
        yield Think(0.1)

    scheduler = Scheduler(LockManager())
    scheduler.spawn(one_think(), name="t")
    scheduler.pick_next = lambda options: 99
    with pytest.raises(ReproError, match="pick_next"):
        scheduler.run()


def test_throw_continuations_are_introspectable_partials():
    """Abort/deadlock wake-ups must be partials carrying the process, so
    the explorer can attribute pending events to transactions."""
    scheduler = Scheduler(LockManager())

    def sleeper():
        yield Think(10.0)

    txn = scheduler.spawn(sleeper(), name="sleeper")
    scheduler.run(until=1.0)
    assert scheduler.abort_transaction(txn, "test")
    throw_events = [
        entry for entry in scheduler._heap
        if isinstance(entry[2], partial)
        and entry[2].func.__name__ == "_throw_into"
    ]
    assert len(throw_events) == 1
    process = throw_events[0][2].args[0]
    assert process.txn is txn
