"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import DeadlockError, RXConflictError, TransactionAborted
from repro.locks.manager import LockManager
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock
from repro.storage.store import StorageManager
from repro.config import TreeConfig
from repro.txn.ops import (
    Acquire,
    Call,
    Convert,
    FetchPage,
    Release,
    ReleaseAll,
    Think,
)
from repro.txn.scheduler import Scheduler, SchedulerStall, run_alone
from repro.txn.transaction import Transaction, TxnState

S, X, R, RX, RS = (
    LockMode.S, LockMode.X, LockMode.R, LockMode.RX, LockMode.RS,
)
A = page_lock(1)
B = page_lock(2)
BASE = page_lock(100)


def make_scheduler(**kwargs):
    return Scheduler(LockManager(), **kwargs)


class TestBasics:
    def test_think_advances_clock(self):
        sched = make_scheduler()

        def proc():
            yield Think(5.0)
            yield Think(2.5)
            return "done"

        sched.spawn(proc())
        sched.run()
        assert sched.now == pytest.approx(7.5)
        assert sched.completed[0][1] == "done"

    def test_processes_interleave_by_time(self):
        sched = make_scheduler()
        order = []

        def proc(name, pause):
            yield Think(pause)
            order.append(name)

        sched.spawn(proc("slow", 10.0))
        sched.spawn(proc("fast", 1.0))
        sched.run()
        assert order == ["fast", "slow"]

    def test_spawn_at_delays_start(self):
        sched = make_scheduler()
        starts = []

        def proc():
            starts.append(sched.now)
            yield Think(1.0)

        sched.spawn(proc(), at=3.0)
        sched.run()
        assert starts == [3.0]

    def test_run_until_stops_early(self):
        sched = make_scheduler()

        def proc():
            yield Think(10.0)
            return "late"

        sched.spawn(proc())
        sched.run(until=5.0)
        assert sched.completed == []
        sched.run()
        assert sched.completed[0][1] == "late"

    def test_call_runs_function_synchronously(self):
        sched = make_scheduler()

        def proc():
            value = yield Call(lambda: 21 * 2)
            return value

        sched.spawn(proc())
        sched.run()
        assert sched.completed[0][1] == 42

    def test_fetch_page_costs_depend_on_buffer(self):
        store = StorageManager(TreeConfig(leaf_extent_pages=16, internal_extent_pages=4))
        leaf = store.allocate_leaf()
        store.flush_all()
        sched = Scheduler(LockManager(), store=store, io_time=2.0, hit_time=0.5)

        def proc():
            yield FetchPage(leaf.page_id)  # buffered: hit
            return sched.now

        sched.spawn(proc())
        sched.run()
        assert sched.completed[0][1] == pytest.approx(0.5)

        store.buffer.crash()  # force a miss
        sched2 = Scheduler(LockManager(), store=store, io_time=2.0, hit_time=0.5)

        def proc2():
            yield FetchPage(leaf.page_id)
            return sched2.now

        sched2.spawn(proc2())
        sched2.run()
        assert sched2.completed[0][1] == pytest.approx(2.0)


class TestLocking:
    def test_lock_wait_and_grant(self):
        sched = make_scheduler()
        events = []

        def holder():
            yield Acquire(A, X)
            yield Think(5.0)
            yield Release(A, X)
            events.append(("holder-done", sched.now))

        def waiter():
            yield Think(1.0)  # start after the holder has the lock
            yield Acquire(A, X)
            events.append(("waiter-got-lock", sched.now))
            yield ReleaseAll()

        sched.spawn(holder())
        waiter_txn = sched.spawn(waiter())
        sched.run()
        assert ("waiter-got-lock", 5.0) in events
        assert waiter_txn.metrics.blocks == 1
        assert waiter_txn.metrics.wait_time == pytest.approx(4.0)

    def test_rx_conflict_thrown_into_generator(self):
        sched = make_scheduler()
        outcomes = []

        def reorganizer():
            yield Acquire(A, RX)
            yield Think(10.0)
            yield ReleaseAll()

        def reader():
            yield Think(1.0)
            try:
                yield Acquire(A, S)
            except RXConflictError:
                outcomes.append("backed-off")
                return
            outcomes.append("unexpected-grant")

        sched.spawn(reorganizer(), is_reorganizer=True)
        reader_txn = sched.spawn(reader())
        sched.run()
        assert outcomes == ["backed-off"]
        assert reader_txn.metrics.rx_backoffs == 1

    def test_instant_rs_resumes_when_reorg_releases(self):
        sched = make_scheduler()
        resumed_at = []

        def reorganizer():
            yield Acquire(BASE, R)
            yield Think(8.0)
            yield ReleaseAll()

        def reader():
            yield Think(1.0)
            yield Acquire(BASE, RS, instant=True)
            resumed_at.append(sched.now)

        sched.spawn(reorganizer(), is_reorganizer=True)
        sched.spawn(reader())
        sched.run()
        assert resumed_at == [8.0]

    def test_conversion_op(self):
        sched = make_scheduler()

        def reorganizer():
            yield Acquire(BASE, R)
            yield Convert(BASE, X)
            return "converted"

        sched.spawn(reorganizer(), is_reorganizer=True)
        sched.run()
        assert sched.completed[0][1] == "converted"

    def test_deadlock_victim_gets_exception(self):
        sched = make_scheduler()

        def proc(first, second, pause):
            yield Acquire(first, X)
            yield Think(pause)
            yield Acquire(second, X)
            yield ReleaseAll()
            return "survived"

        t1 = sched.spawn(proc(A, B, 2.0), name="t1")
        t2 = sched.spawn(proc(B, A, 2.0), name="t2")
        sched.run()
        # Exactly one survives, the other dies with DeadlockError.
        assert len(sched.completed) == 1
        assert len(sched.failed) == 1
        victim_txn, exc = sched.failed[0]
        assert isinstance(exc, DeadlockError)
        assert victim_txn in (t1, t2)
        assert victim_txn.state is TxnState.ABORTED

    def test_reorganizer_is_preferred_victim(self):
        sched = make_scheduler()

        def proc(first, second):
            yield Acquire(first, X)
            yield Think(2.0)
            yield Acquire(second, X)
            yield ReleaseAll()

        sched.spawn(proc(A, B), name="user")
        reorg = sched.spawn(proc(B, A), name="reorg", is_reorganizer=True)
        sched.run()
        assert sched.failed[0][0] is reorg

    def test_locks_released_on_completion(self):
        lm = LockManager()
        sched = Scheduler(lm)

        def proc():
            yield Acquire(A, X)
            return "kept lock"

        txn = sched.spawn(proc())
        sched.run()
        assert lm.holders_of(A) == {}

    def test_transaction_aborted_is_recorded_not_raised(self):
        sched = make_scheduler()

        def proc():
            yield Think(1.0)
            raise TransactionAborted("user abort")

        sched.spawn(proc())
        sched.run()
        assert len(sched.failed) == 1


class TestStallDetection:
    def test_stall_raises_when_wait_can_never_be_satisfied(self):
        sched = make_scheduler()

        def holder():
            yield Acquire(A, X)
            yield Think(1.0)
            return "keeps lock forever"  # scheduler releases at finish...

        def waiter():
            yield Acquire(A, X)

        sched.spawn(holder())
        sched.spawn(waiter(), at=0.5)
        # Holder finishes -> locks released -> waiter proceeds: no stall.
        sched.run()
        assert len(sched.completed) == 2

    def test_zero_time_spin_detected(self):
        sched = make_scheduler()

        def spinner():
            while True:
                yield Call(lambda: None)

        sched.spawn(spinner())
        with pytest.raises(SchedulerStall):
            sched.run()


class TestRunAlone:
    def test_run_alone_returns_value(self):
        def proc():
            yield Acquire(A, X)
            yield Think(1.0)
            yield ReleaseAll()
            return 99

        assert run_alone(proc()) == 99

    def test_run_alone_propagates_failure(self):
        def proc():
            yield Think(1.0)
            raise TransactionAborted("boom")

        with pytest.raises(TransactionAborted):
            run_alone(proc())
