"""Scheduler.abort_transaction — the switch's straggler-abort mechanism."""

import pytest

from repro.errors import TransactionAborted
from repro.locks.manager import LockManager
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock
from repro.txn.ops import Acquire, ReleaseAll, Think
from repro.txn.scheduler import Scheduler
from repro.txn.transaction import TxnState

A = page_lock(1)


def test_abort_wakes_a_sleeping_transaction_immediately():
    lm = LockManager()
    sched = Scheduler(lm)

    def sleeper():
        yield Acquire(A, LockMode.S)
        yield Think(10_000.0)
        return "never"

    def killer(target):
        yield Think(1.0)
        ok = sched.abort_transaction(target["txn"], "test abort")
        assert ok

    target = {}
    target["txn"] = sched.spawn(sleeper(), name="sleeper")
    sched.spawn(killer(target), name="killer")
    sched.run()
    assert target["txn"].state is TxnState.ABORTED
    # Its locks were released at abort time, not at timer expiry.
    assert lm.holders_of(A) == {}
    assert target["txn"].metrics.end_time == pytest.approx(1.0)


def test_abort_wakes_a_lock_waiter():
    lm = LockManager()
    sched = Scheduler(lm)

    def holder():
        yield Acquire(A, LockMode.X)
        yield Think(10_000.0)

    def waiter():
        yield Think(0.5)
        yield Acquire(A, LockMode.X)
        return "never"

    def killer(target):
        yield Think(1.0)
        sched.abort_transaction(target["txn"])

    target = {}
    holder_txn = sched.spawn(holder(), name="holder")
    target["txn"] = sched.spawn(waiter(), name="waiter")
    kill_txn = sched.spawn(killer(target), name="killer")
    # Also abort the holder so the run drains.
    def killer2():
        yield Think(2.0)
        sched.abort_transaction(holder_txn)

    sched.spawn(killer2(), name="killer2")
    sched.run()
    assert target["txn"].state is TxnState.ABORTED
    assert holder_txn.state is TxnState.ABORTED
    assert lm.waiters_of(A) == []
    del kill_txn


def test_abort_of_finished_transaction_is_a_noop():
    sched = Scheduler(LockManager())

    def quick():
        yield Think(0.1)
        return 1

    txn = sched.spawn(quick())
    sched.run()
    assert not sched.abort_transaction(txn)
    assert txn.state is TxnState.COMMITTED


def test_protocol_can_catch_a_forced_abort():
    sched = Scheduler(LockManager())
    outcome = {}

    def resilient():
        try:
            yield Think(100.0)
        except TransactionAborted:
            outcome["caught"] = True
            yield ReleaseAll()
            return "cleaned up"

    def killer(target):
        yield Think(1.0)
        sched.abort_transaction(target["txn"])

    target = {}
    target["txn"] = sched.spawn(resilient(), name="resilient")
    sched.spawn(killer(target))
    sched.run()
    assert outcome.get("caught")
    assert target["txn"].state is TxnState.COMMITTED
    assert any(r == "cleaned up" for _, r in sched.completed)
