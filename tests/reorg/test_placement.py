"""Tests for pluggable placement policies (ISSUE 9).

Covers the shared post-reorg shape helper (off-by-one heights), the
BFS -> vEB numbering on perfect and clipped trees, preference resolution
in Find-Free-Space, and end-to-end reorganizations under each policy —
including the sharded case, where every shard's vEB window must stay
inside its internal lease.
"""

import types

import pytest

from repro.config import (
    PlacementPolicyKind,
    ReorgConfig,
    ShardConfig,
    SidePointerKind,
    TreeConfig,
)
from repro.db import Database
from repro.reorg.freespace import find_free_page, resolve_preference
from repro.reorg.placement import (
    KeyOrderPolicy,
    NoPlacementPolicy,
    Pass3Plan,
    VebPolicy,
    bfs_to_veb,
    fill_count,
    make_policy,
    post_reorg_shape,
    predict_base_width,
    veb_order,
)
from repro.reorg.reorganizer import Reorganizer
from repro.shard import ParallelReorganizer, ShardedDatabase
from repro.storage.allocator import FreeSpaceMap
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import PageKind, Record


def make_fsm(leaf_pages=64, internal_pages=32):
    disk = SimulatedDisk(
        [
            Extent("leaf", 0, leaf_pages),
            Extent("internal", leaf_pages, internal_pages),
        ]
    )
    return FreeSpaceMap(disk, ["leaf", "internal"])


class TestShapeHelper:
    def test_fill_count_matches_pass3(self):
        assert fill_count(8, 0.9) == 7
        assert fill_count(16, 0.9) == 14
        assert fill_count(10, 1.0) == 10
        # Tiny fills still hold at least one entry per page.
        assert fill_count(8, 0.05) == 1

    def test_single_leaf(self):
        shape = post_reorg_shape(1, 7)
        assert shape.internal_widths == (1,)
        assert shape.internal_levels == 1
        assert shape.n_internal == 1
        assert shape.height == 2

    def test_empty_tree(self):
        shape = post_reorg_shape(0, 7)
        assert shape.internal_widths == ()
        assert shape.n_internal == 0
        assert shape.height == 0

    def test_exactly_full_fanout(self):
        # f^2 leaves chunk perfectly: f base pages, one root.
        shape = post_reorg_shape(49, 7)
        assert shape.internal_widths == (7, 1)

    def test_one_over_full_fanout(self):
        # One extra leaf forces an extra base page AND an extra level.
        shape = post_reorg_shape(50, 7)
        assert shape.internal_widths == (8, 2, 1)

    def test_widths_top_down(self):
        shape = post_reorg_shape(50, 7)
        assert shape.widths_top_down(include_leaves=False) == (1, 2, 8)
        assert shape.widths_top_down(include_leaves=True) == (1, 2, 8, 50)

    def test_reorg_20k_fixture_shape(self):
        # The perf-harness fixture: 429 leaves at fanout 7.
        shape = post_reorg_shape(429, 7)
        assert shape.internal_widths == (62, 9, 2, 1)
        assert shape.n_internal == 74

    def test_matches_actual_pass3_build(self):
        """The prediction must mirror what pass 3 actually builds."""
        db = Database(
            TreeConfig(
                leaf_capacity=8,
                internal_capacity=6,
                leaf_extent_pages=256,
                internal_extent_pages=128,
            )
        )
        records = [Record(k, "v") for k in range(900)]
        tree = db.bulk_load_tree(records, leaf_fill=1.0, internal_fill=0.6)
        for k in range(0, 900, 2):
            tree.delete(k)
        db.flush()
        db.checkpoint()
        # A mid-scan stable point closes the open base page early, leaving
        # it under-filled — the one effect the pure chunking model does not
        # predict (out-of-plan nodes just fall back to default allocation).
        # Disable them to compare the model against a pure build.
        Reorganizer(
            db, tree, ReorgConfig(target_fill=0.9, stable_point_interval=10_000)
        ).run()
        final = db.tree()
        n_leaves = len(final.leaf_ids_in_key_order())
        shape = post_reorg_shape(n_leaves, fill_count(6, 0.9))
        internal = 0
        stack = [final.root_id]
        while stack:
            page = db.store.get(stack.pop())
            if page.kind is PageKind.INTERNAL:
                internal += 1
                stack.extend(page.children())
        assert internal == shape.n_internal
        assert final.height() == shape.height


class TestPredictBaseWidth:
    """The stable-point-aware base-width simulation (section 7.3)."""

    def test_no_stable_points_is_perfect_chunking(self):
        assert predict_base_width([7, 7, 7], 7, 10_000) == 3
        assert predict_base_width([5, 5, 5], 7, 10_000) == 3

    def test_aligned_closures_add_nothing(self):
        # Every old page closes exactly one new page, so each stable point
        # finds an empty open page and fragments nothing.
        assert predict_base_width([7] * 12, 7, 5) == 12

    def test_misaligned_closures_widen_the_base(self):
        # Hand-simulated: every third old page trips the stable point with
        # a part-filled open page, closing it early.
        assert predict_base_width([5] * 10, 7, 2) == 10
        # The perfect-fill model would predict only ceil(50 / 7) = 8.

    def test_empty_and_invalid(self):
        assert predict_base_width([], 7, 5) == 0
        with pytest.raises(ValueError):
            predict_base_width([1], 0, 5)

    def test_shape_accepts_base_width_override(self):
        shape = post_reorg_shape(50, 7, base_width=10)
        assert shape.internal_widths == (10, 2, 1)

    def test_default_stable_points_are_predicted_exactly(self):
        """Replay the scan arithmetic against a real pass 3 with the
        default stable-point interval: page-for-page agreement is what
        lets the vEB plan cover the whole base level (without it, the
        overflow pages fall out of the plan and the descent adjacency is
        lost — the full-scale regression this guards)."""
        db, tree = _sparse_db(PlacementPolicyKind.VEB)
        config = ReorgConfig(target_fill=0.9)
        reorg = Reorganizer(db, tree, config)
        reorg.run_pass1()
        reorg.run_pass2()
        per_page = fill_count(
            db.store.config.internal_capacity, config.internal_fill
        )
        counts = []
        base = tree.base_page_for(0)
        while base is not None:
            counts.append(len(base.entries))
            base = tree.next_base_page_after(base.entries[-1][0])
        n_leaves = len(tree.leaf_ids_in_key_order())
        predicted = predict_base_width(
            counts, per_page, config.stable_point_interval
        )
        stats, _ = reorg.run_pass3()
        assert stats.new_base_pages == predicted
        # The simulation earned its keep: stable points really widened the
        # base level past the perfect-fill estimate.
        assert predicted > -(-n_leaves // per_page)


class TestVebOrder:
    def test_perfect_tree_round_trips(self):
        widths = (1, 3, 9)
        order = veb_order(widths, 3)
        assert sorted(order) == [
            (d, i) for d, w in enumerate(widths) for i in range(w)
        ]
        ranks = bfs_to_veb(widths, 3)
        assert sorted(ranks.values()) == list(range(13))
        assert ranks[(0, 0)] == 0  # the root leads the layout

    def test_non_perfect_tree_round_trips(self):
        widths = (1, 2, 9, 62)  # the 429-leaf fixture's internal levels
        ranks = bfs_to_veb(widths, 7)
        assert sorted(ranks.values()) == list(range(74))
        assert sorted(ranks) == [
            (d, i) for d, w in enumerate(widths) for i in range(w)
        ]

    def test_root_children_follow_root(self):
        # Height 2: vEB degenerates to BFS — root then its children.
        assert veb_order((1, 4), 4) == [(0, 0), (1, 0), (1, 1), (1, 2), (1, 3)]

    def test_any_level_stays_in_left_to_right_order(self):
        """A vEB order restricted to one level is index order — the
        theorem that makes veb leaf placement coincide with key_order."""
        widths = (1, 5, 23, 111)
        order = veb_order(widths, 5)
        for depth in range(len(widths)):
            level = [i for d, i in order if d == depth]
            assert level == sorted(level)

    def test_parent_to_first_child_adjacency_exists(self):
        # The payoff: some parent/first-child pairs are rank-adjacent,
        # which key-order placement never produces on a descent path.
        widths = (1, 7, 49)
        ranks = bfs_to_veb(widths, 7)
        adjacent = sum(
            1
            for (d, i), r in ranks.items()
            if d + 1 < len(widths)
            and ranks.get((d + 1, i * 7)) == r + 1
        )
        assert adjacent > 0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            veb_order((2, 4), 2)  # no single root
        with pytest.raises(ValueError):
            veb_order((1, 9), 2)  # level grows faster than fanout
        assert veb_order((), 4) == []


class TestPass3Plan:
    def test_table_is_permutation_of_window(self):
        shape = post_reorg_shape(50, 7)  # widths (8, 2, 1)
        plan = Pass3Plan(shape, window_start=100)
        assert sorted(plan.table.values()) == list(range(100, 111))
        # Level numbering: level 1 is the base level, the top is the root.
        assert plan.preference(3, 0) == 100  # root at the window start
        assert plan.preference(1, 0) is not None

    def test_out_of_shape_nodes_have_no_preference(self):
        plan = Pass3Plan(post_reorg_shape(50, 7), window_start=100)
        assert plan.preference(1, 99) is None  # wider than predicted
        assert plan.preference(9, 0) is None  # taller than predicted

    def test_veb_policy_reserves_contiguous_window(self):
        fsm = make_fsm()
        store = types.SimpleNamespace(free_map=fsm)
        plan = VebPolicy().pass3_plan(store, post_reorg_shape(50, 7))
        assert plan is not None
        assert plan.window_start == 64  # internal extent start
        assert plan.window_end == 64 + 11

    def test_veb_policy_degrades_when_fragmented(self):
        fsm = make_fsm(internal_pages=8)
        for _ in range(8):
            fsm.allocate("internal")
        for pid in (64, 66, 68, 70):  # alternating free pages: no run of 3
            fsm.free(pid)
        store = types.SimpleNamespace(free_map=fsm)
        shape = post_reorg_shape(8, 2)  # widths (4, 2, 1): 7 internal pages
        assert VebPolicy().pass3_plan(store, shape) is None

    def test_resolve_falls_back_to_nearest_free(self):
        fsm = make_fsm()
        store = types.SimpleNamespace(free_map=fsm)
        plan = Pass3Plan(post_reorg_shape(50, 7), window_start=64)
        root_preference = plan.preference(3, 0)
        fsm.allocate("internal", root_preference)
        assert plan.resolve(store, level=3, index=0) == root_preference + 1


class TestPolicyObjects:
    def test_make_policy_covers_every_kind(self):
        for kind in PlacementPolicyKind:
            assert make_policy(kind).kind is kind

    def test_key_order_leaf_slots_are_contiguous_from_window_start(self):
        slots = KeyOrderPolicy().leaf_slots(5, 40)
        assert slots == [40, 41, 42, 43, 44]

    def test_veb_leaf_slots_match_key_order(self):
        assert VebPolicy().leaf_slots(9, 0) == KeyOrderPolicy().leaf_slots(9, 0)

    def test_none_policy_skips_pass2(self):
        policy = NoPlacementPolicy()
        assert not policy.places_leaves
        assert policy.leaf_slots(5, 0) is None

    def test_builtin_policies_leave_pass1_alone(self):
        for kind in PlacementPolicyKind:
            policy = make_policy(kind)
            assert (
                policy.pass1_preference(largest_finished=3, current=9) is None
            )


class TestFindFreeSpacePreference:
    def setup_store(self):
        db = Database(
            TreeConfig(
                leaf_capacity=8,
                internal_capacity=6,
                leaf_extent_pages=64,
                internal_extent_pages=32,
            )
        )
        for _ in range(10):
            db.store.allocate_leaf()
        for pid in (2, 5, 7):
            db.store.deallocate(pid)
        return db.store

    def test_no_preference_is_byte_identical_to_historic_behaviour(self):
        """preference=None must leave every policy's answer unchanged —
        the same probes TestFindFreePage pins down, asked through the new
        signature."""
        from repro.config import FreeSpacePolicy

        store = self.setup_store()
        for policy, kwargs, expected in [
            (FreeSpacePolicy.PAPER, dict(largest_finished=2, current=9), 5),
            (FreeSpacePolicy.PAPER, dict(largest_finished=-1, current=9), 2),
            (FreeSpacePolicy.FIRST_FIT, dict(largest_finished=2, current=9), 2),
            (FreeSpacePolicy.NONE, dict(largest_finished=2, current=9), None),
        ]:
            assert (
                find_free_page(store, policy, preference=None, **kwargs)
                == expected
            )

    def test_exact_preference_wins_over_policy(self):
        from repro.config import FreeSpacePolicy

        store = self.setup_store()
        assert (
            find_free_page(
                store,
                FreeSpacePolicy.PAPER,
                largest_finished=2,
                current=9,
                preference=7,
            )
            == 7
        )

    def test_taken_preference_resolves_to_nearest_free(self):
        fsm = make_fsm()
        for _ in range(10):
            fsm.allocate("leaf")
        for pid in (2, 7):
            fsm.free(pid)
        # 4 is taken; free neighbours are 2 (distance 2) and 7 (distance 3).
        assert resolve_preference(fsm, "leaf", 4) == 2
        # 5 is taken; 7 (distance 2) beats 2 (distance 3).
        assert resolve_preference(fsm, "leaf", 5) == 7
        # A free preference resolves to itself.
        assert resolve_preference(fsm, "leaf", 7) == 7

    def test_tie_resolves_to_smaller_page_id(self):
        fsm = make_fsm()
        for _ in range(10):
            fsm.allocate("leaf")
        for pid in (3, 7):
            fsm.free(pid)
        assert resolve_preference(fsm, "leaf", 5) == 3

    def test_preference_clamped_to_lease(self):
        fsm = make_fsm()
        lease = fsm.grant_lease("leaf", 16, 32)
        # Page 0 is free but outside the lease; nearest in-lease free is 16.
        assert resolve_preference(fsm, "leaf", 0, lease=lease) == 16


def _sparse_db(kind, n_records=900):
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=1024,
            internal_extent_pages=512,
            side_pointers=SidePointerKind.ONE_WAY,
            placement_policy=kind,
        )
    )
    records = [Record(k, "v" * 4) for k in range(n_records)]
    tree = db.bulk_load_tree(records, leaf_fill=1.0, internal_fill=0.6)
    for k in range(n_records):
        if k % 3:
            tree.delete(k)
    db.flush()
    db.checkpoint()
    return db, tree


def _internal_ids(db, tree):
    out = []
    stack = [tree.root_id]
    while stack:
        page = db.store.get(stack.pop())
        if page.kind is PageKind.INTERNAL:
            out.append(page.page_id)
            stack.extend(page.children())
    return out


class TestEndToEndPolicies:
    def test_scans_identical_and_veb_window_contiguous(self):
        results = {}
        for kind in PlacementPolicyKind:
            db, tree = _sparse_db(kind)
            report = Reorganizer(db, tree, ReorgConfig(target_fill=0.9)).run()
            final = db.tree()
            final.validate()
            results[kind] = dict(
                scan=[(r.key, r.payload) for r in final.range_scan(0, 10_000)],
                leaves=final.leaf_ids_in_key_order(),
                internal=sorted(_internal_ids(db, final)),
                pass2_ops=report.pass2.operations if report.pass2 else 0,
            )
        key_order = results[PlacementPolicyKind.KEY_ORDER]
        veb = results[PlacementPolicyKind.VEB]
        none = results[PlacementPolicyKind.NONE]
        # Records are invariant under placement.
        assert key_order["scan"] == veb["scan"] == none["scan"]
        # vEB's leaf placement IS key order; only internal pages move.
        assert veb["leaves"] == key_order["leaves"]
        assert veb["pass2_ops"] == key_order["pass2_ops"] > 0
        # The `none` policy skips pass 2, so its leaves stay scattered.
        assert none["pass2_ops"] == 0
        assert none["leaves"] != key_order["leaves"]
        # The vEB upper levels occupy one contiguous window.
        ids = veb["internal"]
        assert ids[-1] - ids[0] + 1 == len(ids)

    def test_veb_reorg_survives_catchup_splits(self):
        """Concurrent-style inserts between passes grow the tree past the
        predicted shape; out-of-plan nodes fall back to default
        allocation and the tree must still validate."""
        db, tree = _sparse_db(PlacementPolicyKind.VEB)
        reorg = Reorganizer(db, tree, ReorgConfig(target_fill=0.9))
        reorg.run_pass1()
        for k in range(10_000, 10_300):
            tree.insert(Record(k, "new"))
        reorg.run_pass2()
        reorg.run_pass3()
        final = db.tree()
        final.validate()
        assert [r.key for r in final.range_scan(10_000, 10_299)] == list(
            range(10_000, 10_300)
        )


class TestShardedVebPlacement:
    def test_each_shard_window_stays_inside_its_lease(self):
        results = {}
        for kind in (PlacementPolicyKind.KEY_ORDER, PlacementPolicyKind.VEB):
            sdb = ShardedDatabase(
                TreeConfig(
                    leaf_capacity=8,
                    internal_capacity=6,
                    leaf_extent_pages=1024,
                    internal_extent_pages=256,
                    side_pointers=SidePointerKind.ONE_WAY,
                ),
                ShardConfig(n_shards=2, placement_policy=kind),
            )
            records = [Record(k, "v" * 4) for k in range(1200)]
            sdb.bulk_load(records, leaf_fill=1.0, internal_fill=0.6)
            for k in range(1200):
                if k % 3:
                    sdb.delete(k)
            sdb.flush()
            sdb.checkpoint()
            ParallelReorganizer(sdb, ReorgConfig(target_fill=0.9)).run()
            sdb.validate()
            for handle in sdb.handles:
                lease = handle.store.internal_lease
                ids = _internal_ids(handle, handle.tree())
                assert all(lease.start <= pid < lease.end for pid in ids), (
                    f"shard {handle.index} placed internal pages outside "
                    f"its lease under {kind.value}"
                )
                if kind is PlacementPolicyKind.VEB:
                    ids = sorted(ids)
                    assert ids[-1] - ids[0] + 1 == len(ids)
            results[kind] = [
                (r.key, r.payload) for r in sdb.range_scan(0, 10_000)
            ]
        assert (
            results[PlacementPolicyKind.KEY_ORDER]
            == results[PlacementPolicyKind.VEB]
        )
