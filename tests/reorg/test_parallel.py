"""Tests for the parallel-compaction extension (paper's future work, §9)."""

import pytest

from repro.btree.stats import collect_stats
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.reorg.parallel import build_parallel_pass1, partition_base_pages
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import LogCrashInjector, crash_recover
from repro.sim.workload import build_sparse_tree
from repro.txn.scheduler import Scheduler


def make_db(n=1200):
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=8,
            leaf_extent_pages=1024,
            internal_extent_pages=512,
            buffer_pool_pages=256,
        )
    )
    build_sparse_tree(db, n_records=n, fill_after=0.3)
    db.flush()
    db.checkpoint()
    return db


def run_parallel_pass1(db, n_workers, *, unit_pause=0.01, op_duration=0.05):
    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocols = build_parallel_pass1(
        db, "primary", ReorgConfig(), n_workers,
        unit_pause=unit_pause, op_duration=op_duration,
    )
    txns = [
        sched.spawn(p.pass1(), name=f"worker-{i}", is_reorganizer=True)
        for i, p in enumerate(protocols)
    ]
    sched.run()
    assert sched.failed == []
    return sched, txns


class TestPartitioning:
    def test_partitions_are_disjoint_and_cover_everything(self):
        db = make_db()
        partitions = partition_base_pages(db, "primary", 4)
        flat = [pid for part in partitions for pid in part]
        assert len(flat) == len(set(flat))
        single = partition_base_pages(db, "primary", 1)
        assert sorted(flat) == sorted(single[0])

    def test_worker_count_clamped_to_base_pages(self):
        db = make_db(n=100)
        partitions = partition_base_pages(db, "primary", 64)
        assert all(part for part in partitions)


class TestParallelCompaction:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_result_equivalent_to_sequential(self, workers):
        db = make_db()
        expected = sorted(r.key for r in db.tree().items())
        run_parallel_pass1(db, workers)
        tree = db.tree()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == expected
        assert collect_stats(tree).leaf_fill > 0.55

    def test_parallelism_shortens_the_compaction(self):
        """With per-unit work time, K workers finish ~K times faster."""
        db1 = make_db()
        sched1, _ = run_parallel_pass1(db1, 1, op_duration=0.2)
        db4 = make_db()
        sched4, _ = run_parallel_pass1(db4, 4, op_duration=0.2)
        assert sched4.now < sched1.now * 0.55
        db1.tree().validate()
        db4.tree().validate()

    def test_unit_ids_are_globally_monotonic(self):
        from repro.wal.records import ReorgBeginRecord

        db = make_db()
        run_parallel_pass1(db, 3)
        begins = [
            r.unit_id
            for r in db.log.records_from(1)
            if isinstance(r, ReorgBeginRecord)
        ]
        assert begins == sorted(begins) or len(set(begins)) == len(begins)
        assert len(set(begins)) == len(begins)

    def test_workers_never_share_a_destination_page(self):
        from repro.wal.records import ReorgBeginRecord

        db = make_db()
        run_parallel_pass1(db, 4)
        dests = [
            r.dest_page
            for r in db.log.records_from(1)
            if isinstance(r, ReorgBeginRecord)
            and r.dest_page not in r.leaf_pages  # new-place units only
        ]
        assert len(dests) == len(set(dests))


class TestParallelRecovery:
    def test_crash_with_multiple_inflight_units_recovers_all(self):
        """The generalized progress table: several pending units after one
        crash, each forward-recovered."""
        db = make_db()
        expected = sorted(r.key for r in db.tree().items())
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        protocols = build_parallel_pass1(
            db, "primary", ReorgConfig(), 4, op_duration=0.3
        )
        for i, p in enumerate(protocols):
            sched.spawn(p.pass1(), name=f"worker-{i}", is_reorganizer=True)
        crashed = False
        try:
            # Fire while several units are mid-move (op_duration staggers
            # them across simulated time; the injector counts appends).
            with LogCrashInjector(db.log, after_records=30):
                sched.run()
        except CrashPoint:
            crashed = True
        assert crashed
        recovery = crash_recover(db)
        assert len(recovery.pending_units) >= 1
        reorg = Reorganizer(db, db.tree(), ReorgConfig())
        reorg.forward_recover(recovery)
        assert not db.progress.unit_in_flight
        tree = db.tree()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == expected

    def test_checkpoint_mid_parallel_run_carries_all_units(self):
        db = make_db()
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        protocols = build_parallel_pass1(
            db, "primary", ReorgConfig(), 3, op_duration=0.5
        )
        for i, p in enumerate(protocols):
            sched.spawn(p.pass1(), name=f"w{i}", is_reorganizer=True)
        # Run a slice, checkpoint with units in flight, crash, recover.
        sched.run(until=1.0)
        in_flight = db.progress.units_in_flight
        db.checkpoint()
        db.log.flush()
        db.crash()
        recovery = db.recover()
        assert {u.unit_id for u in recovery.pending_units} >= set(in_flight)
        reorg = Reorganizer(db, db.tree(), ReorgConfig())
        reorg.forward_recover(recovery)
        db.tree().validate()
