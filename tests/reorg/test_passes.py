"""Tests for pass 1 (compaction) and pass 2 (swap/move)."""

import pytest

from repro.btree.stats import collect_stats
from repro.config import FreeSpacePolicy, ReorgConfig, SidePointerKind, TreeConfig
from repro.db import Database
from repro.reorg.compact import LeafCompactor
from repro.reorg.swap import SwapMovePass
from repro.reorg.unit import UnitEngine
from repro.storage.page import Record


def sparse_db(
    n=400,
    keep_every=4,
    leaf_capacity=8,
    side=SidePointerKind.NONE,
    seed=None,
):
    db = Database(
        TreeConfig(
            leaf_capacity=leaf_capacity,
            internal_capacity=8,
            leaf_extent_pages=512,
            internal_extent_pages=128,
            side_pointers=side,
            buffer_pool_pages=128,
        )
    )
    tree = db.bulk_load_tree([Record(k, f"v{k}") for k in range(n)], leaf_fill=1.0)
    if seed is None:
        victims = [k for k in range(n) if k % keep_every != 0]
    else:
        import random

        rng = random.Random(seed)
        victims = rng.sample(range(n), int(n * (1 - 1 / keep_every)))
    for k in victims:
        tree.delete(k)
    tree.validate()
    return db, tree


class TestPass1:
    def test_compaction_raises_fill_factor(self):
        db, tree = sparse_db()
        before = collect_stats(tree)
        assert before.leaf_fill < 0.4
        stats = LeafCompactor(db, tree, ReorgConfig(target_fill=0.9)).run()
        after = collect_stats(tree)
        assert stats.units > 0
        # Units never span base pages (section 3), so boundary groups stay
        # partial; the mean fill lands below the 0.9 target but well above
        # the sparse starting point.
        assert after.leaf_fill > 0.6
        assert after.leaf_count < before.leaf_count / 2
        tree.validate()

    def test_no_records_lost(self):
        db, tree = sparse_db(seed=5)
        before = [(r.key, r.payload) for r in tree.items()]
        LeafCompactor(db, tree, ReorgConfig()).run()
        assert [(r.key, r.payload) for r in tree.items()] == before

    def test_paper_policy_mixes_in_place_and_new_place(self):
        db, tree = sparse_db()
        stats = LeafCompactor(
            db, tree, ReorgConfig(free_space_policy=FreeSpacePolicy.PAPER)
        ).run()
        assert stats.units == stats.in_place_units + stats.new_place_units

    def test_policy_none_is_all_in_place(self):
        db, tree = sparse_db()
        stats = LeafCompactor(
            db, tree, ReorgConfig(free_space_policy=FreeSpacePolicy.NONE)
        ).run()
        assert stats.new_place_units == 0
        assert stats.in_place_units == stats.units > 0
        tree.validate()

    def test_target_fill_respected_on_average(self):
        db, tree = sparse_db()
        LeafCompactor(db, tree, ReorgConfig(target_fill=0.75)).run()
        after = collect_stats(tree)
        # Greedy grouping fills up to (not over) the target.
        assert after.leaf_fill <= 0.75 + 1e-9
        assert after.leaf_fill > 0.5

    def test_dense_tree_is_a_noop(self):
        db = Database(
            TreeConfig(
                leaf_capacity=8,
                internal_capacity=8,
                leaf_extent_pages=128,
                internal_extent_pages=64,
            )
        )
        tree = db.bulk_load_tree([Record(k) for k in range(100)], leaf_fill=1.0)
        stats = LeafCompactor(db, tree, ReorgConfig(target_fill=0.9)).run()
        assert stats.units == 0
        assert stats.leaves_before == stats.leaves_after

    @pytest.mark.parametrize(
        "side", [SidePointerKind.ONE_WAY, SidePointerKind.TWO_WAY]
    )
    def test_side_pointer_configs(self, side):
        db, tree = sparse_db(side=side, seed=9)
        LeafCompactor(db, tree, ReorgConfig()).run()
        tree.validate()

    def test_uniform_random_deletes(self):
        db, tree = sparse_db(seed=42)
        before = sorted(r.key for r in tree.items())
        LeafCompactor(db, tree, ReorgConfig()).run()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == before


class TestPass2:
    def run_both_passes(self, policy=FreeSpacePolicy.PAPER, **kwargs):
        db, tree = sparse_db(**kwargs)
        engine = UnitEngine(db, tree)
        LeafCompactor(
            db, tree, ReorgConfig(free_space_policy=policy), engine
        ).run()
        stats = SwapMovePass(db, tree, engine).run()
        return db, tree, stats

    def test_leaves_contiguous_in_key_order_after_pass2(self):
        db, tree, _ = self.run_both_passes()
        chain = tree.leaf_ids_in_key_order()
        extent = db.store.disk.extent("leaf")
        assert chain == list(range(extent.start, extent.start + len(chain)))
        tree.validate()

    def test_no_records_lost_through_both_passes(self):
        db, tree = sparse_db(seed=17)
        before = [(r.key, r.payload) for r in tree.items()]
        engine = UnitEngine(db, tree)
        LeafCompactor(db, tree, ReorgConfig(), engine).run()
        SwapMovePass(db, tree, engine).run()
        assert [(r.key, r.payload) for r in tree.items()] == before
        tree.validate()

    def test_pass2_is_idempotent(self):
        db, tree, first = self.run_both_passes()
        engine = UnitEngine(db, tree)
        second = SwapMovePass(db, tree, engine).run()
        assert second.operations == 0
        assert second.already_placed == len(tree.leaf_ids_in_key_order())

    def test_disk_order_fraction_is_one_after_pass2(self):
        db, tree, _ = self.run_both_passes(seed=23)
        stats = collect_stats(tree)
        assert stats.disk_order_fraction == 1.0

    @pytest.mark.parametrize(
        "side", [SidePointerKind.ONE_WAY, SidePointerKind.TWO_WAY]
    )
    def test_pass2_with_side_pointers(self, side):
        db, tree, _ = self.run_both_passes(side=side, seed=3)
        tree.validate()
        assert collect_stats(tree).disk_order_fraction == 1.0

    def test_paper_policy_needs_fewer_swaps_than_none(self):
        """The section 6.1 claim, qualitatively: the heuristic placement
        greatly reduces pass-2 swaps versus in-place-only compaction."""
        _, _, with_heuristic = self.run_both_passes(
            policy=FreeSpacePolicy.PAPER, seed=7
        )
        _, _, without = self.run_both_passes(policy=FreeSpacePolicy.NONE, seed=7)
        assert with_heuristic.swaps <= without.swaps

    def test_single_leaf_tree_skips_pass2(self):
        db = Database(
            TreeConfig(
                leaf_capacity=8,
                internal_capacity=8,
                leaf_extent_pages=64,
                internal_extent_pages=32,
            )
        )
        tree = db.bulk_load_tree([Record(1), Record(2)])
        stats = SwapMovePass(db, tree).run()
        assert stats.operations == 0
