"""Tests for the reorganizer's DES protocols running under contention."""

import pytest

from repro.btree.protocols import reader_search, updater_insert
from repro.btree.stats import collect_stats
from repro.config import FreeSpacePolicy, ReorgConfig, TreeConfig
from repro.db import Database
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.sim.workload import build_sparse_tree
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler


def make_db(n=600, fill_after=0.3):
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=512,
            internal_extent_pages=256,
            buffer_pool_pages=128,
        )
    )
    build_sparse_tree(db, n_records=n, fill_after=fill_after)
    return db


def make_scheduler(db):
    return Scheduler(db.locks, store=db.store, log=db.log, io_time=0.05, hit_time=0.005)


class TestReorgProtocolAlone:
    def test_pass1_protocol_compacts(self):
        db = make_db()
        before = collect_stats(db.tree())
        sched = make_scheduler(db)
        protocol = ReorgProtocol(db, "primary", ReorgConfig())
        sched.spawn(protocol.pass1(), name="reorg", is_reorganizer=True)
        sched.run()
        stats = sched.completed[0][1]
        assert stats["units"] > 0
        after = collect_stats(db.tree())
        assert after.leaf_fill > before.leaf_fill
        db.tree().validate()

    def test_full_protocol_matches_synchronous_result(self):
        db = make_db()
        keys_before = [r.key for r in db.tree().items()]
        sched = make_scheduler(db)
        protocol = ReorgProtocol(db, "primary", ReorgConfig())
        sched.spawn(
            full_reorganization(protocol), name="reorg", is_reorganizer=True
        )
        sched.run()
        tree = db.tree()
        tree.validate()
        assert [r.key for r in tree.items()] == keys_before
        stats = collect_stats(tree)
        assert stats.disk_order_fraction == 1.0
        assert not db.pass3.reorg_bit

    def test_pass2_protocol_orders_leaves(self):
        db = make_db()
        sched = make_scheduler(db)
        protocol = ReorgProtocol(
            db, "primary", ReorgConfig(free_space_policy=FreeSpacePolicy.NONE)
        )

        def both_passes():
            yield from protocol.pass1()
            result = yield from protocol.pass2()
            return result

        sched.spawn(both_passes(), name="reorg", is_reorganizer=True)
        sched.run()
        stats = sched.completed[0][1]
        assert stats["swaps"] + stats["moves"] > 0
        chain = db.tree().leaf_ids_in_key_order()
        assert chain == sorted(chain)
        db.tree().validate()


class TestReorgUnderContention:
    def test_readers_survive_full_reorganization(self):
        db = make_db()
        live_keys = [r.key for r in db.tree().items()]
        sched = make_scheduler(db)
        protocol = ReorgProtocol(
            db, "primary", ReorgConfig(), unit_pause=0.05, op_duration=0.2
        )
        sched.spawn(
            full_reorganization(protocol), name="reorg", is_reorganizer=True
        )
        for i, key in enumerate(live_keys[:60]):
            sched.spawn(reader_search(db, "primary", key), at=0.1 * i)
        sched.run()
        results = [r for t, r in sched.completed if t.name.startswith("txn")]
        assert sched.failed == []
        found = [
            r for _, r in sched.completed
            if isinstance(r, Record)
        ]
        assert len(found) == 60  # every reader saw its record
        db.tree().validate()

    def test_updaters_and_reorganizer_interleave(self):
        db = make_db()
        sched = make_scheduler(db)
        protocol = ReorgProtocol(
            db, "primary", ReorgConfig(), unit_pause=0.05, op_duration=0.2
        )
        sched.spawn(
            full_reorganization(protocol), name="reorg", is_reorganizer=True
        )
        new_keys = list(range(10_000, 10_040))
        for i, key in enumerate(new_keys):
            sched.spawn(
                updater_insert(db, "primary", Record(key, "hot")),
                at=0.2 * i,
            )
        sched.run()
        assert sched.failed == []
        tree = db.tree()
        tree.validate()
        for key in new_keys:
            assert tree.search(key) is not None, key

    def test_inserts_behind_pass3_scan_reach_new_tree(self):
        db = make_db()
        sched = make_scheduler(db)
        protocol = ReorgProtocol(
            db, "primary", ReorgConfig(), scan_pause=0.3, op_duration=0.05
        )
        sched.spawn(
            full_reorganization(protocol), name="reorg", is_reorganizer=True
        )
        # A stream of inserts at low keys, arriving throughout the run so
        # some land behind the pass-3 scan and travel via the side file.
        keys = [1 + 2 * i for i in range(50)]
        for i, key in enumerate(keys):
            sched.spawn(
                updater_insert(db, "primary", Record(key, "sf")), at=0.5 * i
            )
        sched.run()
        assert sched.failed == []
        tree = db.tree()
        tree.validate()
        inserted = [k for k in keys if tree.search(k) is not None]
        assert len(inserted) >= 45  # duplicates of survivors may fail
        assert not db.pass3.reorg_bit

    def test_reorganizer_yields_at_deadlock(self):
        """A long-running reader that collides with the reorganizer's RX
        acquisition must never be chosen as the victim."""
        db = make_db()
        sched = make_scheduler(db)
        protocol = ReorgProtocol(
            db, "primary", ReorgConfig(), op_duration=0.5
        )
        sched.spawn(protocol.pass1(), name="reorg", is_reorganizer=True)
        live_keys = [r.key for r in db.tree().items()]
        for i, key in enumerate(live_keys[:30]):
            sched.spawn(
                reader_search(db, "primary", key, think=1.0), at=0.05 * i
            )
        sched.run()
        # No user transaction may die with a DeadlockError.
        from repro.errors import DeadlockError

        user_deadlocks = [
            exc for txn, exc in sched.failed
            if not txn.is_reorganizer and isinstance(exc, DeadlockError)
        ]
        assert user_deadlocks == []
        db.tree().validate()
