"""The reorganizer's deadlock behaviour (sections 4.1 and 5.2).

Section 4.1: because the reorganizer takes all its R and RX locks before
moving data, "by forcing it to give up its locks, it usually won't have to
roll back a lot of work.  However, once it has obtained its R locks and all
its RX locks, the reorganizer must still convert its R locks to X locks to
update the base pages.  Then there can still be a deadlock.  However, more
than one user transaction has to be involved, producing a deadlock cycle of
length at least three."

Section 5.2: "work must be undone if the reorganizer has already moved
records and gets into a deadlock situation. ... the chain of prev LSNs can
be used to find log records to undo a reorganization unit."

This test constructs exactly that three-party cycle in the DES:

* user A holds S on the unit's base page (compatible with the
  reorganizer's R) and then waits for user B's X lock on an unrelated leaf;
* the reorganizer moves the unit's records and requests the R -> X
  conversion, which waits on A's S;
* user B requests S on the base page, which queues behind the waiting X
  conversion (FIFO fairness) — closing the cycle B -> reorganizer -> A -> B.

The victim must be the reorganizer; its unit is undone (records moved
back), and it retries and completes once the users drain.
"""

import pytest

from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock
from repro.reorg.protocols import ReorgProtocol
from repro.sim.workload import build_sparse_tree
from repro.txn.ops import Acquire, Release, ReleaseAll, Think
from repro.txn.scheduler import Scheduler
from repro.txn.transaction import TxnState
from repro.wal.records import ReorgMoveInRecord


def make_db():
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=16,
            leaf_extent_pages=512,
            internal_extent_pages=128,
            buffer_pool_pages=128,
        )
    )
    build_sparse_tree(db, n_records=400, fill_after=0.3)
    db.flush()
    db.checkpoint()
    return db


def test_three_party_conversion_deadlock_reorganizer_yields():
    db = make_db()
    tree = db.tree()
    expected = sorted(r.key for r in tree.items())
    base = tree.base_page_for(0)
    base_id = base.page_id
    # An unrelated leaf, under a different base page, for the A -> B edge.
    other_leaf = tree.path_to_leaf(max(expected))[-1]
    assert base.index_of_child(other_leaf) < 0

    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(), op_duration=2.0
    )
    events = []

    def user_b():
        # Holds X on the unrelated leaf for a long time, and mid-way asks
        # for S on the base page (queueing behind the reorganizer's
        # waiting X conversion).
        yield Acquire(page_lock(other_leaf), LockMode.X)
        yield Think(4.0)
        yield Acquire(page_lock(base_id), LockMode.S)
        events.append(("b-got-base-s", sched.now))
        yield Think(0.5)
        yield ReleaseAll()

    def user_a():
        # Grabs S on the base page while the reorganizer holds R (they are
        # compatible), then waits for B's leaf.
        yield Acquire(page_lock(base_id), LockMode.S)
        events.append(("a-got-base-s", sched.now))
        yield Acquire(page_lock(other_leaf), LockMode.X)
        events.append(("a-got-leaf", sched.now))
        yield ReleaseAll()

    sched.spawn(user_b(), name="user-b", at=0.0)
    sched.spawn(user_a(), name="user-a", at=0.5)
    # The reorganizer starts after A holds the base S; its op_duration of
    # 2.0 keeps records-moved state alive until the conversion collides.
    reorg_txn = sched.spawn(
        protocol.pass1(), name="reorg", at=1.0, is_reorganizer=True
    )
    sched.run()

    # Nobody died except (transiently) the reorganizer's unit: the users
    # complete, the reorganizer retried and finished pass 1.
    assert sched.failed == []
    assert reorg_txn.state is TxnState.COMMITTED
    stats = next(r for t, r in sched.completed if t is reorg_txn)
    assert stats["retries"] >= 1, "the reorganizer must have been the victim"
    assert stats["undone"] >= 1, (
        "the deadlock struck after records moved: section 5.2 undo must run"
    )
    # The undo moved records back: inverse MOVE pairs appear in the log
    # (same unit id, org/dest swapped relative to the original moves).
    moves = [r for r in db.log.records_from(1) if isinstance(r, ReorgMoveInRecord)]
    unit_ids = {m.unit_id for m in moves}
    reversed_pairs = 0
    for m in moves:
        if any(
            n.org_page == m.dest_page and n.dest_page == m.org_page
            and n.unit_id == m.unit_id and n.lsn > m.lsn
            for n in moves
        ):
            reversed_pairs += 1
    assert reversed_pairs >= 1
    del unit_ids
    # And the tree is complete and healthy.
    tree = db.tree()
    tree.validate()
    assert sorted(r.key for r in tree.items()) == expected


def test_deadlock_before_moves_costs_no_work():
    """The common case: the reorganizer yields while still acquiring RX
    locks — nothing to undo ("it usually won't have to roll back a lot of
    work")."""
    db = make_db()
    tree = db.tree()
    base = tree.base_page_for(0)
    first_leaf = base.children()[0]
    other_leaf = tree.path_to_leaf(
        max(r.key for r in tree.items())
    )[-1]

    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocol = ReorgProtocol(db, "primary", ReorgConfig(), op_duration=0.5)

    def user_holding_unit_leaf():
        # Holds S on a unit leaf so the reorganizer's RX waits; then waits
        # on something the reorganizer (transitively) blocks.
        yield Acquire(page_lock(first_leaf), LockMode.S)
        yield Think(1.5)
        yield Acquire(page_lock(base.page_id), LockMode.X)
        yield ReleaseAll()

    sched.spawn(user_holding_unit_leaf(), name="user", at=0.0)
    reorg_txn = sched.spawn(
        protocol.pass1(), name="reorg", at=0.2, is_reorganizer=True
    )
    sched.run()
    assert sched.failed == []
    assert reorg_txn.state is TxnState.COMMITTED
    stats = next(r for t, r in sched.completed if t is reorg_txn)
    # Either no deadlock materialized (timing) or it did with zero undo.
    assert stats["undone"] == 0
    db.tree().validate()
