"""Tests for pass 3 (upper-level rebuild, side file) and the switch."""

import pytest

from repro.btree.stats import collect_stats
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import ReorgError
from repro.reorg.reorganizer import Reorganizer
from repro.reorg.shrink import SCAN_DONE_KEY, TreeShrinker
from repro.reorg.switch import Switcher, current_lock_name
from repro.storage.page import PageKind, Record


def tall_sparse_db(n=600, keep_every=4, internal_capacity=4):
    """A tree whose internal levels became sparse through deletions."""
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=internal_capacity,
            leaf_extent_pages=512,
            internal_extent_pages=512,
            buffer_pool_pages=128,
        )
    )
    tree = db.bulk_load_tree(
        [Record(k, f"v{k}") for k in range(n)],
        leaf_fill=1.0,
        internal_fill=0.5,  # sparse internals: lots to shrink
    )
    for k in range(n):
        if k % keep_every != 0:
            tree.delete(k)
    tree.validate()
    return db, tree


def run_pass3(db, tree, config=None, **kwargs):
    reorg = Reorganizer(db, tree, config or ReorgConfig())
    return reorg.run_pass3(**kwargs)


class TestShrink:
    def test_height_reduced(self):
        db, tree = tall_sparse_db()
        height_before = tree.height()
        run_pass3(db, tree)
        tree = db.tree()
        assert tree.height() < height_before
        tree.validate()

    def test_records_unchanged(self):
        db, tree = tall_sparse_db()
        before = [(r.key, r.payload) for r in tree.items()]
        run_pass3(db, tree)
        tree = db.tree()
        assert [(r.key, r.payload) for r in tree.items()] == before

    def test_leaves_not_touched(self):
        """Pass 3 is new-place for internal pages only: leaf page ids and
        contents are identical before and after."""
        db, tree = tall_sparse_db()
        leaves_before = tree.leaf_ids_in_key_order()
        run_pass3(db, tree)
        assert db.tree().leaf_ids_in_key_order() == leaves_before

    def test_old_internal_pages_reclaimed(self):
        db, tree = tall_sparse_db()
        old_internals = self._internal_ids(db, tree)
        _, switch_stats = run_pass3(db, tree)
        assert switch_stats.old_internal_freed == len(old_internals)
        for pid in old_internals:
            assert db.store.free_map.is_free(pid)

    def test_new_internals_at_target_fill(self):
        db, tree = tall_sparse_db()
        run_pass3(db, tree, ReorgConfig(internal_fill=1.0))
        tree = db.tree()
        stats = collect_stats(tree)
        # With fill 1.0 the new internal count is near the minimum.
        import math

        min_base_pages = math.ceil(stats.leaf_count / db.config.internal_capacity)
        # Geometric series over the levels, plus per-level ceil slack.
        assert stats.internal_count <= 2 * min_base_pages + stats.height
        tree.validate()

    def test_stable_points_logged(self):
        db, tree = tall_sparse_db()
        config = ReorgConfig(stable_point_interval=2)
        pass3_stats, _ = run_pass3(db, tree, config)
        assert pass3_stats.stable_points >= 2

    def test_root_pointer_switched(self):
        db, tree = tall_sparse_db()
        old_root = tree.root_id
        _, switch_stats = run_pass3(db, tree)
        assert switch_stats.old_root == old_root
        assert db.tree().root_id == switch_stats.new_root
        assert db.tree().root_id != old_root

    def test_lock_name_changes_at_switch(self):
        db, tree = tall_sparse_db()
        name_before = current_lock_name(db, tree.name)
        run_pass3(db, tree)
        assert current_lock_name(db, tree.name) != name_before

    def test_reorg_bit_cleared_after_switch(self):
        db, tree = tall_sparse_db()
        run_pass3(db, tree)
        assert not db.pass3.reorg_bit
        assert db.pass3.side_file_entries == []

    def test_single_leaf_tree_rejected(self):
        db = Database(
            TreeConfig(
                leaf_capacity=8, internal_capacity=4,
                leaf_extent_pages=64, internal_extent_pages=32,
            )
        )
        tree = db.bulk_load_tree([Record(1)])
        with pytest.raises(ReorgError):
            run_pass3(db, tree)

    def test_height_two_tree_shrinks_to_compact_form(self):
        db = Database(
            TreeConfig(
                leaf_capacity=4, internal_capacity=8,
                leaf_extent_pages=64, internal_extent_pages=64,
            )
        )
        tree = db.bulk_load_tree([Record(k) for k in range(32)], leaf_fill=1.0)
        assert tree.height() == 2
        run_pass3(db, tree, ReorgConfig(internal_fill=1.0))
        tree = db.tree()
        tree.validate()
        assert tree.height() == 2
        assert tree.record_count() == 32

    @staticmethod
    def _internal_ids(db, tree):
        ids = set()
        stack = [tree.root_id]
        while stack:
            page = db.store.get(stack.pop())
            if page.kind is PageKind.INTERNAL:
                ids.add(page.page_id)
                stack.extend(page.children())
        return ids


class TestSideFileCatchUp:
    def test_concurrent_splits_behind_scan_are_caught_up(self):
        """Inserts behind the scan cause leaf splits whose base entries go
        through the side file and land in the new tree."""
        db, tree = tall_sparse_db()
        inserted = []
        state = {"next": 1}

        def during_scan(shrinker):
            # Fill up a leaf far behind the scan position to force splits.
            if not shrinker.scanning:
                return
            ck = shrinker.get_current()
            if ck <= 0 or ck >= SCAN_DONE_KEY:
                return
            for _ in range(3):
                key = state["next"]
                state["next"] += 2  # odd keys, all were deleted earlier
                if key >= ck:
                    break
                tree.insert(Record(key, "hot"))
                inserted.append(key)

        pass3_stats, _ = run_pass3(db, tree, during_scan=during_scan)
        assert inserted, "the workload should have inserted behind the scan"
        new_tree = db.tree()
        new_tree.validate()
        for key in inserted:
            assert new_tree.search(key) is not None
        assert pass3_stats.sidefile_applied >= 0

    def test_deletes_behind_scan_are_caught_up(self):
        db, tree = tall_sparse_db()
        deleted = []

        def during_scan(shrinker):
            if not shrinker.scanning or deleted:
                return
            ck = shrinker.get_current()
            # Drain the first leaf entirely -> free-at-empty -> base delete.
            first_leaf = db.store.get_leaf(tree.leftmost_leaf_id())
            keys = [r.key for r in first_leaf.records]
            if keys and max(keys) < ck:
                for key in keys:
                    tree.delete(key)
                    deleted.append(key)

        run_pass3(db, tree, during_scan=during_scan)
        assert deleted
        new_tree = db.tree()
        new_tree.validate()
        for key in deleted:
            assert new_tree.search(key) is None

    def test_changes_ahead_of_scan_skip_side_file(self):
        db, tree = tall_sparse_db()
        observed = {"appended": 0}

        def during_scan(shrinker):
            if not shrinker.scanning:
                return
            ck = shrinker.get_current()
            if ck >= SCAN_DONE_KEY or observed["appended"]:
                return
            before = len(db.pass3.side_file_entries)
            # Insert far ahead of the scan: must NOT go to the side file.
            probe = ck + 100_000
            if tree.search(probe) is None:
                tree.insert(Record(probe))
            observed["appended"] = len(db.pass3.side_file_entries) - before

        run_pass3(db, tree, during_scan=during_scan)
        assert observed["appended"] == 0
        db.tree().validate()

    def test_catchup_rounds_converge(self):
        db, tree = tall_sparse_db()
        rounds = {"n": 0}

        def during_catchup(shrinker):
            # Two extra rounds of stragglers, then silence.
            if rounds["n"] < 2:
                key = 1 + 2 * rounds["n"]
                if tree.search(key) is None:
                    tree.insert(Record(key))
                rounds["n"] += 1

        pass3_stats, _ = run_pass3(db, tree, during_catchup=during_catchup)
        assert pass3_stats.catchup_rounds >= 1
        db.tree().validate()


class TestFullReorganization:
    def test_three_passes_end_to_end(self):
        db, tree = tall_sparse_db()
        before = [(r.key, r.payload) for r in tree.items()]
        stats_before = collect_stats(tree)
        report = Reorganizer(db, tree, ReorgConfig(target_fill=0.9)).run()
        tree = db.tree()
        tree.validate()
        after = collect_stats(tree)
        assert [(r.key, r.payload) for r in tree.items()] == before
        assert report.pass1 is not None and report.pass1.units > 0
        assert report.pass2 is not None
        assert report.pass3 is not None and report.switch is not None
        assert after.leaf_fill > stats_before.leaf_fill
        assert after.height <= stats_before.height
        assert after.disk_order_fraction == 1.0

    def test_swap_pass_can_be_skipped(self):
        db, tree = tall_sparse_db()
        report = Reorganizer(
            db, tree, ReorgConfig(do_swap_pass=False)
        ).run()
        assert report.pass2 is None
        db.tree().validate()

    def test_tree_usable_after_full_reorg(self):
        db, tree = tall_sparse_db()
        Reorganizer(db, tree, ReorgConfig()).run()
        tree = db.tree()
        tree.insert(Record(100_001, "post"))
        assert tree.search(100_001).payload == "post"
        assert tree.delete(0).key == 0
        tree.validate()

    def test_reorg_is_repeatable(self):
        db, tree = tall_sparse_db()
        Reorganizer(db, tree, ReorgConfig()).run()
        # Degrade again, reorganize again.
        tree = db.tree()
        for k in list(r.key for r in tree.items())[::2]:
            tree.delete(k)
        Reorganizer(db, tree, ReorgConfig()).run()
        db.tree().validate()
