"""Side pointers (section 4.3) under concurrent reorganization.

"Many B+-trees have side pointers at the leaf level to make searching in
key order more efficient.  If leaves are moved, these side-pointers must be
adjusted. ... we will let the reorganizer acquire all the necessary locks
before it starts moving records.  This includes locks that are necessary
for updating the side-pointers."
"""

import pytest

from repro.btree.protocols import reader_range_scan, updater_insert
from repro.btree.stats import collect_stats
from repro.config import ReorgConfig, SidePointerKind, TreeConfig
from repro.db import Database
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.sim.workload import build_sparse_tree
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler


def make_db(kind):
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=512,
            internal_extent_pages=256,
            side_pointers=kind,
            buffer_pool_pages=128,
        )
    )
    build_sparse_tree(db, n_records=500, fill_after=0.3)
    return db


@pytest.mark.parametrize(
    "kind", [SidePointerKind.ONE_WAY, SidePointerKind.TWO_WAY]
)
class TestSidePointerConcurrency:
    def test_full_reorg_under_contention_keeps_chain(self, kind):
        db = make_db(kind)
        live = [r.key for r in db.tree().items()]
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        protocol = ReorgProtocol(
            db, "primary", ReorgConfig(), unit_pause=0.03, op_duration=0.15
        )
        sched.spawn(
            full_reorganization(protocol), name="reorg", is_reorganizer=True
        )
        for i in range(40):
            sched.spawn(
                reader_range_scan(
                    db, "primary", live[(i * 7) % len(live)],
                    live[(i * 7) % len(live)] + 40,
                ),
                at=0.2 * i,
            )
            if i % 4 == 0:
                sched.spawn(
                    updater_insert(db, "primary", Record(5000 + i, "w")),
                    at=0.2 * i + 0.1,
                )
        sched.run()
        assert sched.failed == []
        tree = db.tree()
        tree.validate()  # validates the pointer chain against key order
        assert collect_stats(tree).disk_order_fraction == 1.0

    def test_neighbour_locks_taken_before_moves(self, kind):
        """The protocol acquires X on out-of-unit neighbours before any
        record movement: observe at least one such acquisition."""
        from repro.locks.modes import LockMode

        db = make_db(kind)
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        protocol = ReorgProtocol(db, "primary", ReorgConfig())
        leaf_x_acquisitions = []
        original = db.locks.request

        def spy(owner, resource, mode, **kwargs):
            if (
                getattr(owner, "is_reorganizer", False)
                and mode is LockMode.X
                and isinstance(resource, tuple)
                and resource[0] == "page"
                and db.store.disk.extent_of(resource[1]).name == "leaf"
            ):
                leaf_x_acquisitions.append(resource[1])
            return original(owner, resource, mode, **kwargs)

        db.locks.request = spy
        sched.spawn(protocol.pass1(), name="reorg", is_reorganizer=True)
        sched.run()
        assert sched.failed == []
        assert leaf_x_acquisitions, (
            "with side pointers, the reorganizer must X-lock out-of-unit "
            "neighbour leaves (section 4.3)"
        )
        db.tree().validate()
