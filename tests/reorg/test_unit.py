"""Unit tests for reorganization units (compact / move / swap)."""

import pytest

from repro.btree.bulkload import bulk_load
from repro.config import SidePointerKind, TreeConfig
from repro.db import Database
from repro.errors import ReorgError
from repro.reorg.unit import UnitEngine
from repro.storage.page import Record
from repro.wal.records import (
    ReorgBeginRecord,
    ReorgEndRecord,
    ReorgModifyRecord,
    ReorgMoveInRecord,
    ReorgMoveOutRecord,
    ReorgSwapRecord,
    ReorgUnitType,
)


def sparse_db(
    n=96,
    keep_every=4,
    leaf_capacity=8,
    side=SidePointerKind.NONE,
    careful=True,
):
    """A tree bulk-loaded full, then thinned to 1/keep_every occupancy."""
    db = Database(
        TreeConfig(
            leaf_capacity=leaf_capacity,
            internal_capacity=8,
            leaf_extent_pages=256,
            internal_extent_pages=128,
            side_pointers=side,
            careful_writing=careful,
            buffer_pool_pages=64,
        )
    )
    records = [Record(k, f"v{k}") for k in range(n)]
    tree = db.bulk_load_tree(records, leaf_fill=1.0)
    for k in range(n):
        if k % keep_every != 0:
            tree.delete(k)
    tree.validate()
    return db, tree


class TestCompactUnit:
    def test_in_place_compaction_merges_group(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:3]
        counts = sum(db.store.get_leaf(c).num_items for c in group)
        result = engine.compact_unit(
            base.page_id, group, group[0], dest_is_new=False
        )
        assert result.unit_type is ReorgUnitType.COMPACT
        assert db.store.get_leaf(group[0]).num_items == counts
        for freed in group[1:]:
            assert db.store.free_map.is_free(freed)
        tree.validate()

    def test_new_place_compaction_switches_to_empty_page(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:3]
        empty = db.store.free_map.free_page_ids("leaf")[0]
        before = sorted(r.key for r in tree.items())
        result = engine.compact_unit(base.page_id, group, empty, dest_is_new=True)
        assert result.dest_page == empty
        for freed in group:
            assert db.store.free_map.is_free(freed)
        tree.validate()
        assert sorted(r.key for r in tree.items()) == before

    def test_records_preserved_exactly(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        before = [(r.key, r.payload) for r in tree.items()]
        base = tree.base_page_for(0)
        group = base.children()[:4]
        engine.compact_unit(base.page_id, group, group[0], dest_is_new=False)
        assert [(r.key, r.payload) for r in tree.items()] == before

    def test_base_page_entries_updated(self):
        db, tree = sparse_db()
        base = tree.base_page_for(0)
        group = base.children()[:3]
        n_entries = base.num_items
        UnitEngine(db, tree).compact_unit(
            base.page_id, group, group[0], dest_is_new=False
        )
        base = db.store.get_internal(base.page_id)
        assert base.num_items == n_entries - 2
        # The kept entry's key equals the compacted leaf's min key.
        index = base.index_of_child(group[0])
        assert base.entries[index][0] == db.store.get_leaf(group[0]).min_key()

    def test_log_record_sequence(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:2]
        mark = db.log.last_lsn
        engine.compact_unit(base.page_id, group, group[0], dest_is_new=False)
        records = list(db.log.records_from(mark + 1))
        kinds = [type(r).__name__ for r in records]
        assert kinds[0] == "ReorgBeginRecord"
        assert kinds[-1] == "ReorgEndRecord"
        assert "ReorgMoveOutRecord" in kinds
        assert "ReorgMoveInRecord" in kinds
        assert "ReorgModifyRecord" in kinds

    def test_unit_chain_prev_lsns(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:2]
        engine.compact_unit(base.page_id, group, group[0], dest_is_new=False)
        # Walk back from END through the unit chain to BEGIN.
        end = next(
            r for r in reversed(list(db.log.records_from(1)))
            if isinstance(r, ReorgEndRecord)
        )
        chain = list(db.log.walk_chain(end.lsn))
        assert isinstance(chain[-1], ReorgBeginRecord)

    def test_progress_table_updated(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:2]
        result = engine.compact_unit(base.page_id, group, group[0], dest_is_new=False)
        assert not db.progress.unit_in_flight
        assert db.progress.largest_finished_key == result.largest_key

    def test_careful_writing_logs_keys_only(self):
        db, tree = sparse_db(careful=True)
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:2]
        mark = db.log.last_lsn
        engine.compact_unit(base.page_id, group, group[0], dest_is_new=False)
        moves = [
            r for r in db.log.records_from(mark + 1)
            if isinstance(r, (ReorgMoveInRecord, ReorgMoveOutRecord))
        ]
        assert moves and all(r.records == () for r in moves)
        assert all(r.keys for r in moves)

    def test_without_careful_writing_full_contents_logged(self):
        db, tree = sparse_db(careful=False)
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:2]
        mark = db.log.last_lsn
        engine.compact_unit(base.page_id, group, group[0], dest_is_new=False)
        moves = [
            r for r in db.log.records_from(mark + 1)
            if isinstance(r, (ReorgMoveInRecord, ReorgMoveOutRecord))
        ]
        assert moves and all(r.records for r in moves)

    def test_dest_validation(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:2]
        with pytest.raises(ReorgError):
            engine.compact_unit(base.page_id, group, group[0], dest_is_new=True)
        empty = db.store.free_map.free_page_ids("leaf")[0]
        with pytest.raises(ReorgError):
            engine.compact_unit(base.page_id, group, empty, dest_is_new=False)

    @pytest.mark.parametrize(
        "side", [SidePointerKind.ONE_WAY, SidePointerKind.TWO_WAY]
    )
    def test_side_pointers_maintained(self, side):
        db, tree = sparse_db(side=side)
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:3]
        engine.compact_unit(base.page_id, group, group[0], dest_is_new=False)
        tree.validate()


class TestMoveUnit:
    def test_move_to_empty_page(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        source = base.children()[0]
        contents = [r.key for r in db.store.get_leaf(source).records]
        empty = db.store.free_map.free_page_ids("leaf")[0]
        result = engine.move_unit(base.page_id, source, empty)
        assert result.unit_type is ReorgUnitType.MOVE
        assert db.store.free_map.is_free(source)
        assert [r.key for r in db.store.get_leaf(empty).records] == contents
        tree.validate()

    @pytest.mark.parametrize(
        "side", [SidePointerKind.ONE_WAY, SidePointerKind.TWO_WAY]
    )
    def test_move_fixes_side_pointers(self, side):
        db, tree = sparse_db(side=side)
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(40)
        source = base.children()[1]
        empty = db.store.free_map.free_page_ids("leaf")[0]
        engine.move_unit(base.page_id, source, empty)
        tree.validate()


class TestSwapUnit:
    def _two_leaves_two_bases(self, tree):
        """A pair of leaves under two different base pages."""
        bases = []
        stack = [tree.root_id]
        store = tree.store
        from repro.storage.page import PageKind

        while stack:
            page = store.get(stack.pop())
            if page.kind is PageKind.INTERNAL:
                if page.level == 1:
                    bases.append(page)
                else:
                    stack.extend(page.children())
        assert len(bases) >= 2
        bases.sort(key=lambda b: b.min_key())
        return bases[0], bases[0].children()[0], bases[1], bases[1].children()[0]

    def test_swap_exchanges_contents(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base_a, leaf_a, base_b, leaf_b = self._two_leaves_two_bases(tree)
        keys_a = db.store.get_leaf(leaf_a).keys()
        keys_b = db.store.get_leaf(leaf_b).keys()
        engine.swap_unit(base_a.page_id, leaf_a, base_b.page_id, leaf_b)
        assert db.store.get_leaf(leaf_a).keys() == keys_b
        assert db.store.get_leaf(leaf_b).keys() == keys_a
        tree.validate()

    def test_swap_within_one_base_page(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        leaf_a, leaf_b = base.children()[0], base.children()[1]
        before = [r.key for r in tree.items()]
        engine.swap_unit(base.page_id, leaf_a, base.page_id, leaf_b)
        tree.validate()
        assert [r.key for r in tree.items()] == before

    def test_swap_logs_full_contents_of_at_least_one_page(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base_a, leaf_a, base_b, leaf_b = self._two_leaves_two_bases(tree)
        mark = db.log.last_lsn
        engine.swap_unit(base_a.page_id, leaf_a, base_b.page_id, leaf_b)
        swap = next(
            r for r in db.log.records_from(mark + 1)
            if isinstance(r, ReorgSwapRecord)
        )
        assert swap.records_a  # full contents of page A always logged

    def test_swap_with_self_rejected(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        leaf = base.children()[0]
        with pytest.raises(ReorgError):
            engine.swap_unit(base.page_id, leaf, base.page_id, leaf)

    @pytest.mark.parametrize(
        "side", [SidePointerKind.ONE_WAY, SidePointerKind.TWO_WAY]
    )
    def test_swap_fixes_side_pointers(self, side):
        db, tree = sparse_db(side=side)
        engine = UnitEngine(db, tree)
        base_a, leaf_a, base_b, leaf_b = self._two_leaves_two_bases(tree)
        engine.swap_unit(base_a.page_id, leaf_a, base_b.page_id, leaf_b)
        tree.validate()

    def test_adjacent_leaf_swap_with_side_pointers(self):
        db, tree = sparse_db(side=SidePointerKind.TWO_WAY)
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        leaf_a, leaf_b = base.children()[0], base.children()[1]
        engine.swap_unit(base.page_id, leaf_a, base.page_id, leaf_b)
        tree.validate()
