"""Edge cases of the parallel pass-1 builder (paper's future work, §9).

Companion to test_parallel.py: degenerate worker counts, empty
partitions, and a worker dying mid-unit while the rest finish.
"""

from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.reorg.parallel import (
    ParallelReorgProtocol,
    _SharedUnitIds,
    build_parallel_pass1,
    partition_base_pages,
)
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import crash_recover
from repro.sim.workload import build_sparse_tree
from repro.txn.scheduler import Scheduler


def make_db(n=300):
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=8,
            leaf_extent_pages=1024,
            internal_extent_pages=512,
            buffer_pool_pages=256,
        )
    )
    build_sparse_tree(db, n_records=n, fill_after=0.3)
    db.flush()
    db.checkpoint()
    return db


class TestMoreWorkersThanPartitions:
    def test_builder_clamps_to_base_page_count(self):
        """Asking for far more workers than base pages must not create
        idle/empty workers — one non-empty partition per protocol."""
        db = make_db(n=100)
        base_ids = partition_base_pages(db, "primary", 1)[0]
        protocols = build_parallel_pass1(db, "primary", ReorgConfig(), 64)
        assert len(protocols) <= len(base_ids)
        assert all(p.base_partition for p in protocols)
        covered = [pid for p in protocols for pid in p.base_partition]
        assert sorted(covered) == sorted(base_ids)

    def test_oversubscribed_run_still_compacts_correctly(self):
        db = make_db(n=100)
        expected = sorted(r.key for r in db.tree().items())
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        protocols = build_parallel_pass1(db, "primary", ReorgConfig(), 64)
        for i, proto in enumerate(protocols):
            sched.spawn(proto.pass1(), name=f"w{i}", is_reorganizer=True)
        sched.run()
        assert sched.failed == []
        tree = db.tree()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == expected


class TestEmptyPartition:
    def test_empty_partition_worker_is_a_clean_noop(self):
        """A worker given no base pages (the builder never produces one,
        but a hand-built schedule can) completes without touching the
        tree or the unit-id stream."""
        db = make_db(n=100)
        expected = sorted(r.key for r in db.tree().items())
        ids = _SharedUnitIds()
        proto = ParallelReorgProtocol(
            db, "primary", ReorgConfig(), base_partition=[], shared_ids=ids
        )
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        sched.spawn(proto.pass1(), name="idle-worker", is_reorganizer=True)
        sched.run()
        assert sched.failed == []
        assert len(sched.completed) == 1
        assert next(ids) == 1  # no unit ids consumed
        tree = db.tree()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == expected
        assert not db.progress.unit_in_flight

    def test_empty_partition_alongside_real_workers(self):
        db = make_db()
        expected = sorted(r.key for r in db.tree().items())
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        protocols = build_parallel_pass1(db, "primary", ReorgConfig(), 2)
        shared = protocols[0].engine._unit_ids
        idle = ParallelReorgProtocol(
            db, "primary", ReorgConfig(), base_partition=[], shared_ids=shared
        )
        for i, proto in enumerate(protocols + [idle]):
            sched.spawn(proto.pass1(), name=f"w{i}", is_reorganizer=True)
        sched.run()
        assert sched.failed == []
        assert len(sched.completed) == 3
        tree = db.tree()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == expected


class TestWorkerFailureMidUnit:
    def test_aborted_worker_lands_in_failed_others_finish(self):
        """Kill one worker mid-run: it must surface in ``sched.failed``
        while the surviving workers complete their partitions and the
        tree stays intact (units are atomic, so no half-moved records)."""
        db = make_db()
        expected = sorted(r.key for r in db.tree().items())
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        protocols = build_parallel_pass1(
            db, "primary", ReorgConfig(), 3, op_duration=0.3
        )
        txns = [
            sched.spawn(p.pass1(), name=f"w{i}", is_reorganizer=True)
            for i, p in enumerate(protocols)
        ]
        # Let every worker get into the thick of its partition, then
        # abort one mid-unit and let the rest run to completion.
        sched.run(until=1.0)
        sched.abort_transaction(txns[0])
        sched.run()
        assert len(sched.failed) == 1
        assert sched.failed[0][0] is txns[0]
        completed = {t for t, _ in sched.completed}
        for survivor in txns[1:]:
            assert survivor in completed
        # The dead worker's in-flight unit is an orphan in the progress
        # table; forward recovery (the same machinery a crash uses) must
        # finish it and hand back every record.
        recovery = crash_recover(db)
        Reorganizer(db, db.tree(), ReorgConfig()).forward_recover(recovery)
        assert not db.progress.unit_in_flight
        tree = db.tree()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == expected
