"""Unit tests for the side file and Find-Free-Space policies."""

import pytest

from repro.config import FreeSpacePolicy, TreeConfig
from repro.db import Database
from repro.reorg.freespace import find_free_page
from repro.reorg.sidefile import SideFile
from repro.storage.page import Record
from repro.txn.transaction import Transaction
from repro.wal.records import SideFileApplyRecord, SideFileInsertRecord


def make_db():
    return Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=64,
            internal_extent_pages=32,
        )
    )


class TestSideFile:
    def test_append_logs_and_mirrors_into_pass3_state(self):
        db = make_db()
        side = SideFile(db)
        side.append(10, 3, "insert")
        assert db.pass3.side_file_entries == [(10, 3, "insert")]
        records = [
            r for r in db.log.records_from(1)
            if isinstance(r, SideFileInsertRecord)
        ]
        assert len(records) == 1
        assert (records[0].key, records[0].child, records[0].op) == (10, 3, "insert")

    def test_append_chains_into_the_causing_transaction(self):
        db = make_db()
        side = SideFile(db)
        txn = Transaction()
        side.append(10, 3, "insert", txn)
        record = db.log.get(txn.last_lsn)
        assert isinstance(record, SideFileInsertRecord)
        assert record.txn_id == txn.txn_id

    def test_invalid_op_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            SideFile(db).append(1, 1, "upsert")

    def test_pop_and_log_applied(self):
        db = make_db()
        side = SideFile(db)
        side.append(10, 3, "insert")
        side.append(20, 4, "delete")
        entry = side.pop_front()
        assert entry == (10, 3, "insert")
        side.log_applied(entry, new_base_page=99)
        applies = [
            r for r in db.log.records_from(1)
            if isinstance(r, SideFileApplyRecord)
        ]
        assert len(applies) == 1
        assert applies[0].new_base_page == 99
        assert len(side) == 1

    def test_drop_after_key(self):
        db = make_db()
        side = SideFile(db)
        for key in (5, 15, 25):
            side.append(key, 0, "insert")
        dropped = side.drop_after_key(15)
        assert dropped == 2
        assert side.entries == [(5, 0, "insert")]

    def test_restore(self):
        db = make_db()
        side = SideFile(db)
        side.restore([(1, 2, "insert")])
        assert db.pass3.side_file_entries == [(1, 2, "insert")]


class TestFindFreePage:
    def setup_store(self):
        db = make_db()
        # Allocate leaf pages 0..9; free 2, 5, 7.
        for _ in range(10):
            db.store.allocate_leaf()
        for pid in (2, 5, 7):
            db.store.deallocate(pid)
        return db.store

    def test_paper_policy_picks_first_between_l_and_c(self):
        store = self.setup_store()
        assert find_free_page(
            store, FreeSpacePolicy.PAPER, largest_finished=2, current=9
        ) == 5
        assert find_free_page(
            store, FreeSpacePolicy.PAPER, largest_finished=-1, current=9
        ) == 2
        assert find_free_page(
            store, FreeSpacePolicy.PAPER, largest_finished=5, current=7
        ) is None

    def test_first_fit_ignores_bounds(self):
        store = self.setup_store()
        assert find_free_page(
            store, FreeSpacePolicy.FIRST_FIT, largest_finished=5, current=6
        ) == 2

    def test_none_always_none(self):
        store = self.setup_store()
        assert find_free_page(
            store, FreeSpacePolicy.NONE, largest_finished=-1, current=99
        ) is None

    def test_paper_policy_excludes_c_itself(self):
        store = self.setup_store()
        # Free page 7 is NOT before C=7.
        assert find_free_page(
            store, FreeSpacePolicy.PAPER, largest_finished=5, current=8
        ) == 7
        assert find_free_page(
            store, FreeSpacePolicy.PAPER, largest_finished=5, current=7
        ) is None
