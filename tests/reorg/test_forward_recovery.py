"""Forward recovery: crash-interrupted reorganizations finish their work.

The paper's claim (section 5.1): "The reorganization unit will be able to
finish the work instead of rolling back and wasting the work that has
already been done. ... Not only does it not do undo, it also goes forward
to finish the unfinished work."

These tests crash a reorganization at *every* log-append boundary of its
first few units (exhaustive window sweep), recover, forward-recover, and
verify the tree is intact and the unit completed exactly once.
"""

import pytest

from repro.config import FreeSpacePolicy, ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import (
    LogCrashInjector,
    count_completed_units,
    crash_recover,
    run_reorg_with_crash,
)
from repro.storage.page import Record
from repro.wal.records import ReorgBeginRecord


def sparse_db(n=240, keep_every=4, careful=True):
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=256,
            internal_extent_pages=256,
            careful_writing=careful,
            buffer_pool_pages=64,
        )
    )
    tree = db.bulk_load_tree(
        [Record(k, f"v{k}") for k in range(n)], leaf_fill=1.0, internal_fill=0.5
    )
    for k in range(n):
        if k % keep_every != 0:
            tree.delete(k)
    db.flush()
    db.checkpoint()
    return db


def expected_keys(n=240, keep_every=4):
    return [k for k in range(n) if k % keep_every == 0]


class TestUnitForwardRecovery:
    @pytest.mark.parametrize("crash_after", list(range(2, 26, 3)))
    def test_crash_windows_through_first_units(self, crash_after):
        """Crash at many points inside the first compaction units; the tree
        must come back complete and the interrupted unit must finish."""
        db = sparse_db()
        base_appends = db.log.last_lsn
        result = run_reorg_with_crash(
            db, "primary", ReorgConfig(), crash_after_records=crash_after
        )
        assert result.crashed
        tree = db.tree()
        tree.validate()
        assert [r.key for r in tree.items()] == expected_keys()
        # Work is never lost: units completed only grows.
        assert result.units_completed_after >= result.units_completed_before
        del base_appends

    def test_pending_unit_reported_and_finished(self):
        db = sparse_db()
        tree = db.tree()
        reorg = Reorganizer(db, tree, ReorgConfig())
        # Crash right after the first unit's BEGIN + first MOVE pair.
        with pytest.raises(CrashPoint):
            with LogCrashInjector(db.log, after_records=4):
                reorg.run_pass1()
        recovery = crash_recover(db)
        assert recovery.pending_unit is not None
        pending = recovery.pending_unit
        assert pending.records, "unit chain must be reconstructed"
        assert isinstance(pending.records[0], ReorgBeginRecord)
        fresh = Reorganizer(db, db.tree(), ReorgConfig())
        report = fresh.forward_recover(recovery)
        assert report.forward_recovered_unit is not None
        assert report.forward_recovered_unit.unit_id == pending.unit_id
        assert not db.progress.unit_in_flight
        db.tree().validate()
        assert [r.key for r in db.tree().items()] == expected_keys()

    def test_no_pending_unit_when_crash_lands_between_units(self):
        db = sparse_db()
        tree = db.tree()
        reorg = Reorganizer(db, tree, ReorgConfig())
        reorg.run_pass1()  # run to completion, no crash
        db.log.flush()
        recovery = crash_recover(db)
        assert recovery.pending_unit is None
        db.tree().validate()

    def test_forward_recovery_preserves_compaction_progress(self):
        """Units finished before the crash are not redone: LK advances
        monotonically and their END records survive."""
        db = sparse_db()
        result = run_reorg_with_crash(
            db, "primary", ReorgConfig(), crash_after_records=40
        )
        assert result.crashed
        assert result.units_completed_before >= 1
        assert result.units_completed_after > result.units_completed_before

    def test_without_careful_writing_also_recovers(self):
        db = sparse_db(careful=False)
        result = run_reorg_with_crash(
            db, "primary", ReorgConfig(), crash_after_records=7
        )
        assert result.crashed
        tree = db.tree()
        tree.validate()
        assert [r.key for r in tree.items()] == expected_keys()

    @pytest.mark.parametrize("crash_after", [3, 9, 15])
    def test_crash_during_swap_pass(self, crash_after):
        db = sparse_db()
        tree = db.tree()
        # In-place-only compaction leaves the leaves out of disk order, so
        # pass 2 has real swapping to crash in (the paper heuristic would
        # otherwise leave pass 2 with nothing to do).
        engine_reorg = Reorganizer(
            db, tree, ReorgConfig(free_space_policy=FreeSpacePolicy.NONE)
        )
        engine_reorg.run_pass1()
        db.log.flush()
        crashed = False
        try:
            with LogCrashInjector(db.log, after_records=crash_after):
                engine_reorg.run_pass2()
        except CrashPoint:
            crashed = True
        assert crashed
        recovery = crash_recover(db)
        fresh = Reorganizer(db, db.tree(), ReorgConfig())
        fresh.forward_recover(recovery)
        fresh.run_pass2()
        tree = db.tree()
        tree.validate()
        assert [r.key for r in tree.items()] == expected_keys()
        chain = tree.leaf_ids_in_key_order()
        assert chain == sorted(chain)

    def test_double_crash_during_forward_recovery(self):
        """Forward recovery itself can crash; the next recovery still
        completes the unit exactly once."""
        db = sparse_db()
        tree = db.tree()
        reorg = Reorganizer(db, tree, ReorgConfig())
        with pytest.raises(CrashPoint):
            with LogCrashInjector(db.log, after_records=4):
                reorg.run_pass1()
        recovery = crash_recover(db)
        assert recovery.pending_unit is not None
        # Crash again while forward recovery is finishing the unit.
        second = Reorganizer(db, db.tree(), ReorgConfig())
        try:
            with LogCrashInjector(db.log, after_records=2):
                second.forward_recover(recovery)
            crashed_again = False
        except CrashPoint:
            crashed_again = True
        recovery2 = crash_recover(db)
        third = Reorganizer(db, db.tree(), ReorgConfig())
        third.forward_recover(recovery2)
        assert not db.progress.unit_in_flight
        db.tree().validate()
        assert [r.key for r in db.tree().items()] == expected_keys()
        del crashed_again


def big_sparse_db():
    """Large enough that pass 3 reads dozens of base pages."""
    return sparse_db(n=1200, keep_every=2)


class TestPass3Recovery:
    def run_until_pass3_crash(self, db, crash_after, config=None):
        config = config or ReorgConfig(stable_point_interval=2)
        tree = db.tree()
        reorg = Reorganizer(db, tree, config)
        reorg.run_pass1()
        reorg.run_pass2()
        db.log.flush()
        crashed = False
        try:
            with LogCrashInjector(db.log, after_records=crash_after):
                reorg.run_pass3()
        except CrashPoint:
            crashed = True
        return reorg, crashed

    @pytest.mark.parametrize("crash_after", [2, 6, 12, 20, 35])
    def test_crash_during_scan_resumes_from_stable_point(self, crash_after):
        db = big_sparse_db()
        config = ReorgConfig(stable_point_interval=2)
        _, crashed = self.run_until_pass3_crash(db, crash_after, config)
        assert crashed
        recovery = crash_recover(db)
        assert recovery.reorg_bit
        fresh = Reorganizer(db, db.tree(), config)
        report = fresh.forward_recover(recovery)
        assert report.switch is not None
        tree = db.tree()
        tree.validate()
        assert [r.key for r in tree.items()] == expected_keys(1200, 2)
        assert not db.pass3.reorg_bit

    def test_crash_after_switch_record_finishes_switch(self):
        """Crash inside the switch window: recovery finishes the switch
        forward instead of rebuilding."""
        db = sparse_db()
        config = ReorgConfig(stable_point_interval=3)
        tree = db.tree()
        reorg = Reorganizer(db, tree, config)
        reorg.run_pass1()
        reorg.run_pass2()
        db.log.flush()
        # Deterministic approach: run pass 3 fully on a structurally
        # identical rehearsal database, find how many appends precede the
        # TreeSwitchRecord, then crash the real run right after it.
        rehearsal = sparse_db()
        r_reorg = Reorganizer(rehearsal, rehearsal.tree(), config)
        r_reorg.run_pass1()
        r_reorg.run_pass2()
        mark = rehearsal.log.last_lsn
        r_reorg.run_pass3()
        from repro.wal.records import TreeSwitchRecord

        switch_offset = None
        for i, record in enumerate(rehearsal.log.records_from(mark + 1)):
            if isinstance(record, TreeSwitchRecord):
                switch_offset = i + 1
                break
        assert switch_offset is not None
        crashed = False
        try:
            with LogCrashInjector(db.log, after_records=switch_offset):
                reorg.run_pass3()
        except CrashPoint:
            crashed = True
        assert crashed
        recovery = crash_recover(db)
        assert recovery.switch_pending is not None
        fresh = Reorganizer(db, db.tree(), config)
        report = fresh.forward_recover(recovery)
        assert report.switch is not None
        tree = db.tree()
        tree.validate()
        assert [r.key for r in tree.items()] == expected_keys()
        assert tree.root_id == recovery.switch_pending[1]

    def test_orphaned_new_pages_deallocated_on_restart(self):
        db = big_sparse_db()
        config = ReorgConfig(stable_point_interval=2)
        _, crashed = self.run_until_pass3_crash(db, 25, config)
        assert crashed
        recovery = crash_recover(db)
        fresh = Reorganizer(db, db.tree(), config)
        report = fresh.forward_recover(recovery)
        assert report.pass3 is not None
        # After the full recovery the allocation map must be exactly the
        # reachable pages (validate checks reachable => allocated; check
        # the reverse for internals).
        tree = db.tree()
        tree.validate()
        reachable = set()
        stack = [tree.root_id]
        from repro.storage.page import PageKind

        while stack:
            page = db.store.get(stack.pop())
            if page.kind is PageKind.INTERNAL:
                reachable.add(page.page_id)
                stack.extend(page.children())
        allocated = set(db.store.free_map.allocated_page_ids("internal"))
        assert allocated == reachable

    def test_side_file_residue_dropped_beyond_stable_key(self):
        db = sparse_db()
        # Seed a side file with entries straddling a stable key.
        db.pass3.side_file_entries.extend(
            [(10, 3, "insert"), (500, 4, "insert")]
        )
        from repro.reorg.shrink import TreeShrinker

        shrinker = TreeShrinker(db, db.tree(), ReorgConfig())
        db.pass3.stable_key = 100
        shrinker.restart_after_crash(allocs_after_stable=[])
        assert db.pass3.side_file_entries == [(10, 3, "insert")]
