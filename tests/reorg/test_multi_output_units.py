"""Multi-output units (ReorgConfig.max_unit_output_pages > 1).

Section 6: "We choose to construct one new leaf page at a time for the
leaf page reorganization.  While we could construct more than one page, it
would require the reorganization unit to hold locks longer, thus it will
block more user transactions."  The knob builds several pages per unit so
that trade-off can be measured (ablation A3).
"""

import pytest

from repro.btree.stats import collect_stats
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.reorg.compact import LeafCompactor
from repro.reorg.reorganizer import Reorganizer
from repro.reorg.unit import UnitEngine
from repro.sim.crash import LogCrashInjector, crash_recover
from repro.storage.page import Record
from repro.wal.records import ReorgBeginRecord


def sparse_db(n=400, keep_every=4, internal_capacity=32):
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=internal_capacity,
            leaf_extent_pages=512,
            internal_extent_pages=128,
            buffer_pool_pages=128,
        )
    )
    tree = db.bulk_load_tree(
        [Record(k, f"v{k}") for k in range(n)], leaf_fill=1.0
    )
    for k in range(n):
        if k % keep_every != 0:
            tree.delete(k)
    db.flush()
    db.checkpoint()
    return db, tree


class TestEngineMultiUnit:
    def test_multi_unit_repacks_exactly(self):
        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:8]
        total = sum(db.store.get_leaf(c).num_items for c in group)
        target = 7
        needed = -(-total // target)
        assert needed >= 2
        dests = db.store.free_map.free_page_ids("leaf")[:needed]
        before = [(r.key, r.payload) for r in tree.items()]
        result = engine.compact_unit_multi(
            base.page_id, group, dests, target_per_page=target
        )
        assert [(r.key, r.payload) for r in tree.items()] == before
        tree.validate()
        # Every dest except possibly the last is filled to the target.
        fills = [db.store.get_leaf(d).num_items for d in dests
                 if not db.store.free_map.is_free(d)]
        assert all(f == target for f in fills[:-1])
        assert sum(fills) == total
        # All sources are gone.
        assert all(db.store.free_map.is_free(s) for s in group)
        assert result.records_moved == total

    def test_multi_unit_rejects_bad_arguments(self):
        from repro.errors import ReorgError

        db, tree = sparse_db()
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:4]
        free = db.store.free_map.free_page_ids("leaf")
        with pytest.raises(ReorgError):
            engine.compact_unit_multi(
                base.page_id, group, free[:1], target_per_page=7
            )
        with pytest.raises(ReorgError):
            engine.compact_unit_multi(
                base.page_id, group, [group[0], free[0]], target_per_page=7
            )

    @pytest.mark.parametrize("crash_after", [2, 4, 6, 9, 12])
    def test_multi_unit_forward_recovery(self, crash_after):
        db, tree = sparse_db()
        expected = sorted(r.key for r in tree.items())
        engine = UnitEngine(db, tree)
        base = tree.base_page_for(0)
        group = base.children()[:8]
        target = 7
        total = sum(db.store.get_leaf(c).num_items for c in group)
        dests = db.store.free_map.free_page_ids("leaf")[: -(-total // target)]
        crashed = False
        try:
            with LogCrashInjector(db.log, after_records=crash_after):
                engine.compact_unit_multi(
                    base.page_id, group, dests, target_per_page=target
                )
        except CrashPoint:
            crashed = True
        assert crashed
        recovery = crash_recover(db)
        assert recovery.pending_unit is not None
        assert len(recovery.pending_unit.dest_pages) >= 2
        fresh = UnitEngine(db, db.tree())
        fresh.finish_unit(recovery.pending_unit)
        tree = db.tree()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == expected
        assert not db.progress.unit_in_flight


class TestCompactorWithMultiOutput:
    def test_pass1_emits_multi_output_units(self):
        db, tree = sparse_db()
        config = ReorgConfig(target_fill=0.9, max_unit_output_pages=4)
        stats = LeafCompactor(db, tree, config).run()
        tree.validate()
        begins = [
            r for r in db.log.records_from(1)
            if isinstance(r, ReorgBeginRecord) and len(r.dest_pages) > 1
        ]
        assert begins, "expected at least one multi-output unit"
        assert stats.units > 0

    def test_fewer_units_than_single_output(self):
        db1, tree1 = sparse_db()
        single = LeafCompactor(
            db1, tree1, ReorgConfig(max_unit_output_pages=1)
        ).run()
        db4, tree4 = sparse_db()
        multi = LeafCompactor(
            db4, tree4, ReorgConfig(max_unit_output_pages=4)
        ).run()
        assert multi.units < single.units
        # Same end content and similar fill.
        assert sorted(r.key for r in db1.tree().items()) == sorted(
            r.key for r in db4.tree().items()
        )
        fill1 = collect_stats(db1.tree()).leaf_fill
        fill4 = collect_stats(db4.tree()).leaf_fill
        assert abs(fill1 - fill4) < 0.15

    def test_full_reorg_with_multi_output(self):
        db, tree = sparse_db()
        expected = sorted(r.key for r in tree.items())
        config = ReorgConfig(target_fill=0.9, max_unit_output_pages=3)
        Reorganizer(db, tree, config).run()
        tree = db.tree()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == expected
        assert collect_stats(tree).disk_order_fraction == 1.0

    def test_crash_during_multi_output_pass1(self):
        db, tree = sparse_db()
        expected = sorted(r.key for r in tree.items())
        config = ReorgConfig(target_fill=0.9, max_unit_output_pages=4)
        crashed = False
        try:
            with LogCrashInjector(db.log, after_records=9):
                Reorganizer(db, tree, config).run()
        except CrashPoint:
            crashed = True
        assert crashed
        recovery = crash_recover(db)
        Reorganizer(db, db.tree(), config).forward_recover(recovery)
        Reorganizer(db, db.tree(), config).run()
        tree = db.tree()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == expected
