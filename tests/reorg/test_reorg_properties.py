"""Property-based tests of the reorganizer itself.

The master invariants, under hypothesis-driven randomness:

* a full reorganization is a *no-op on content*: the multiset of
  (key, payload) pairs is unchanged, for any degradation pattern, any
  side-pointer configuration, and any fill-factor target;
* it always improves (or preserves) the structural metrics it targets:
  fill factor, disk-order fraction, internal page count;
* interleaving user operations *between* passes never breaks the tree.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree.stats import collect_stats
from repro.config import (
    FreeSpacePolicy,
    ReorgConfig,
    SidePointerKind,
    TreeConfig,
)
from repro.db import Database
from repro.reorg.reorganizer import Reorganizer
from repro.storage.page import Record


def build_db(side, keys, delete_fraction, seed):
    import random

    db = Database(
        TreeConfig(
            leaf_capacity=4,
            internal_capacity=4,
            leaf_extent_pages=512,
            internal_extent_pages=256,
            side_pointers=side,
            buffer_pool_pages=64,
        )
    )
    tree = db.bulk_load_tree(
        [Record(k, f"v{k}") for k in sorted(keys)], leaf_fill=1.0,
        internal_fill=0.6,
    )
    rng = random.Random(seed)
    victims = rng.sample(sorted(keys), int(len(keys) * delete_fraction))
    for key in victims:
        tree.delete(key)
    return db, tree


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.sets(st.integers(0, 5000), min_size=30, max_size=250),
    delete_fraction=st.floats(min_value=0.1, max_value=0.9),
    side=st.sampled_from(list(SidePointerKind)),
    policy=st.sampled_from(list(FreeSpacePolicy)),
    target=st.floats(min_value=0.5, max_value=1.0),
    seed=st.integers(0, 99),
)
def test_full_reorg_preserves_content(keys, delete_fraction, side, policy,
                                      target, seed):
    db, tree = build_db(side, keys, delete_fraction, seed)
    before = sorted((r.key, r.payload) for r in tree.items())
    config = ReorgConfig(target_fill=target, free_space_policy=policy)
    from repro.storage.page import PageKind

    Reorganizer(db, tree, config).run(
        skip_pass3=db.store.get(tree.root_id).kind is PageKind.LEAF
    )
    tree = db.tree()
    tree.validate()
    assert sorted((r.key, r.payload) for r in tree.items()) == before


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.sets(st.integers(0, 5000), min_size=60, max_size=250),
    seed=st.integers(0, 99),
)
def test_full_reorg_improves_structure(keys, seed):
    db, tree = build_db(SidePointerKind.NONE, keys, 0.6, seed)
    before = collect_stats(tree)
    from repro.storage.page import PageKind

    if db.store.get(tree.root_id).kind is PageKind.LEAF:
        return  # nothing structural to improve
    Reorganizer(db, tree, ReorgConfig(target_fill=0.9)).run()
    after = collect_stats(db.tree())
    assert after.leaf_fill >= before.leaf_fill - 1e-9
    assert after.disk_order_fraction == 1.0
    assert after.internal_count <= before.internal_count
    assert after.height <= before.height


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.sets(st.integers(0, 3000), min_size=60, max_size=200),
    interleaved=st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 4000)),
        min_size=0,
        max_size=30,
    ),
    seed=st.integers(0, 99),
)
def test_user_ops_between_passes(keys, interleaved, seed):
    """Run user operations between pass 1, pass 2 and pass 3 — the normal
    on-line situation (the paper explicitly tolerates splits appearing in
    already-reorganized regions: "we do not try to clean this up")."""
    db, tree = build_db(SidePointerKind.NONE, keys, 0.6, seed)
    model = {r.key: r.payload for r in tree.items()}
    from repro.storage.page import PageKind

    if db.store.get(tree.root_id).kind is PageKind.LEAF:
        return
    reorg = Reorganizer(db, tree, ReorgConfig(target_fill=0.9))
    chunks = [interleaved[0::3], interleaved[1::3], interleaved[2::3]]

    def apply_chunk(chunk):
        for op, key in chunk:
            if op == "insert" and key not in model:
                tree.insert(Record(key, "mid"))
                model[key] = "mid"
            elif op == "delete" and key in model:
                tree.delete(key)
                del model[key]

    reorg.run_pass1()
    apply_chunk(chunks[0])
    reorg.run_pass2()
    apply_chunk(chunks[1])
    if db.store.get(db.tree().root_id).kind is PageKind.INTERNAL:
        reorg.run_pass3()
    apply_chunk(chunks[2])
    final = db.tree()
    final.validate()
    assert sorted(r.key for r in final.items()) == sorted(model)
    for key in list(model)[:10]:
        assert final.search(key).payload == model[key]
