"""The switch's old-tree drain (section 7.4): waiting, and forced aborts.

"Since there might be some on-going long transactions after we begin to
switch, we might have to wait for a long time before we can get the X lock
on old tree. ... we might set a time limit that the reorganizer can wait
for the X lock on the old tree.  If the reorganizer cannot get the X lock
within the time limit, then it will force the on-going transactions that
use the old tree to abort."
"""

import pytest

from repro.btree.protocols import reader_search
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import SwitchTimeoutError
from repro.locks.modes import LockMode
from repro.locks.resources import tree_lock
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.reorg.switch import current_lock_name
from repro.sim.workload import build_sparse_tree
from repro.txn.ops import Acquire, Think
from repro.txn.scheduler import Scheduler
from repro.txn.transaction import TxnState


def make_db():
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=512,
            internal_extent_pages=256,
            buffer_pool_pages=128,
        )
    )
    build_sparse_tree(db, n_records=400, fill_after=0.3)
    return db


def long_old_tree_reader(db, tree_name, duration):
    """A transaction that holds its IS on the (old) tree lock for a very
    long time — the switch's straggler."""
    name = current_lock_name(db, tree_name)
    yield Acquire(tree_lock(name), LockMode.IS)
    yield Think(duration)
    return "finished naturally"


class TestSwitchDrain:
    def test_switch_waits_for_old_readers_without_limit(self):
        db = make_db()
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        protocol = ReorgProtocol(
            db, "primary", ReorgConfig(), unit_pause=0.02, scan_pause=0.02
        )
        straggler = sched.spawn(
            long_old_tree_reader(db, "primary", duration=200.0), name="slow"
        )
        reorg_txn = sched.spawn(
            full_reorganization(protocol),
            name="reorg",
            is_reorganizer=True,
            at=0.1,
        )
        sched.run()
        # Both complete; the switch simply waited the straggler out.
        assert straggler.state is TxnState.COMMITTED
        assert reorg_txn.state is TxnState.COMMITTED
        assert sched.now >= 200.0
        db.tree().validate()

    def test_switch_aborts_stragglers_after_limit(self):
        db = make_db()
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        config = ReorgConfig(
            switch_wait_limit=5.0, abort_old_transactions_on_timeout=True
        )
        protocol = ReorgProtocol(
            db, "primary", config, unit_pause=0.02, scan_pause=0.02
        )
        protocol.abort_hook = lambda victims: [
            sched.abort_transaction(v, "old-tree drain timeout")
            for v in victims
        ]
        straggler = sched.spawn(
            long_old_tree_reader(db, "primary", duration=10_000.0), name="slow"
        )
        reorg_txn = sched.spawn(
            full_reorganization(protocol),
            name="reorg",
            is_reorganizer=True,
            at=0.1,
        )
        sched.run()
        assert reorg_txn.state is TxnState.COMMITTED
        assert straggler.state is TxnState.ABORTED
        # The switch did not wait anywhere near the straggler's duration.
        # (The clock itself still drains the straggler's stale timer event.)
        assert reorg_txn.metrics.end_time < 1_000.0
        db.tree().validate()

    def test_switch_timeout_error_when_aborts_disabled(self):
        db = make_db()
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        config = ReorgConfig(
            switch_wait_limit=5.0, abort_old_transactions_on_timeout=False
        )
        protocol = ReorgProtocol(
            db, "primary", config, unit_pause=0.02, scan_pause=0.02
        )
        sched.spawn(
            long_old_tree_reader(db, "primary", duration=10_000.0), name="slow"
        )
        reorg_txn = sched.spawn(
            full_reorganization(protocol),
            name="reorg",
            is_reorganizer=True,
            at=0.1,
        )
        sched.run()
        failures = {t.name: e for t, e in sched.failed}
        assert "reorg" in failures
        assert isinstance(failures["reorg"], SwitchTimeoutError)

    def test_new_transactions_use_new_lock_name_after_flip(self):
        """Section 7.4: the new tree's lock name is distinct, so new
        transactions are not delayed by the old-tree drain."""
        db = make_db()
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
        config = ReorgConfig(
            switch_wait_limit=50.0, abort_old_transactions_on_timeout=True
        )
        protocol = ReorgProtocol(
            db, "primary", config, unit_pause=0.02, scan_pause=0.02
        )
        protocol.abort_hook = lambda victims: [
            sched.abort_transaction(v) for v in victims
        ]
        sched.spawn(
            long_old_tree_reader(db, "primary", duration=10_000.0), name="slow"
        )
        sched.spawn(
            full_reorganization(protocol),
            name="reorg",
            is_reorganizer=True,
            at=0.1,
        )
        # A steady drip of fresh readers; the late ones start after the
        # root flip and must finish long before the drain does.
        live = [r.key for r in db.tree().items()]
        readers = [
            sched.spawn(
                reader_search(db, "primary", live[i % len(live)]),
                at=2.0 * i,
                name=f"r{i}",
            )
            for i in range(30)
        ]
        sched.run()
        committed = [r for r in readers if r.state is TxnState.COMMITTED]
        assert len(committed) == len(readers)
        # No reader was stuck behind the drain window.
        assert max(r.metrics.wait_time for r in readers) < 5.0
        db.tree().validate()
