"""Live per-tree fragmentation metrics under churn.

:class:`repro.metrics.FragmentationStats` is the auto-reorg daemon's
sensor: the tree's insert/delete/split/free paths bump it incrementally,
and :meth:`~repro.metrics.FragmentationStats.sync_from_tree` re-baselines
absolute ``records``/``leaves`` after builds and reorgs.
"""

import random

import pytest

from repro.config import ShardConfig, TreeConfig, gapped_leaf_fill
from repro.db import Database
from repro.metrics import FragmentationStats
from repro.shard import ShardedDatabase
from repro.storage.page import Record


def small_config(gap=0.0):
    return TreeConfig(
        leaf_capacity=8,
        internal_capacity=8,
        leaf_extent_pages=256,
        internal_extent_pages=64,
        buffer_pool_pages=64,
        leaf_gap_fraction=gap,
    )


class TestIncrementalCounters:
    def test_inserts_deletes_and_splits_tracked(self):
        db = Database(small_config())
        tree = db.bulk_load_tree(
            [Record(2 * k, "v") for k in range(80)], leaf_fill=1.0
        )
        frag = db.frag_stats()
        frag.sync_from_tree(tree)
        for k in range(40):
            tree.insert(Record(2 * k + 1, "w"))
        for k in range(10):
            tree.delete(4 * k)
        assert frag.inserts == 40
        assert frag.deletes == 10
        assert frag.records == 80 + 40 - 10
        assert frag.leaf_splits > 0
        assert frag.split_rate == frag.leaf_splits / 40
        assert frag.records == tree.record_count()

    def test_leaves_follow_splits_and_free_at_empty(self):
        db = Database(small_config())
        tree = db.bulk_load_tree(
            [Record(k, "v") for k in range(64)], leaf_fill=1.0
        )
        frag = db.frag_stats()
        frag.sync_from_tree(tree)
        assert frag.leaves == len(tree.leaf_ids_in_key_order())
        for k in range(16):
            tree.delete(k)  # empties the leftmost leaves entirely
        assert frag.leaves == len(tree.leaf_ids_in_key_order())
        for k in range(64, 96):
            tree.insert(Record(k, "w"))
        assert frag.leaves == len(tree.leaf_ids_in_key_order())

    def test_fill_factor_degrades_under_deletion(self):
        db = Database(small_config())
        tree = db.bulk_load_tree(
            [Record(k, "v") for k in range(200)], leaf_fill=1.0
        )
        frag = db.frag_stats()
        frag.sync_from_tree(tree)
        assert frag.fill_factor == pytest.approx(1.0)
        rng = random.Random(3)
        for k in rng.sample(range(200), 120):
            tree.delete(k)
        assert frag.fill_factor < 0.6
        assert frag.fragmentation == pytest.approx(1.0 - frag.fill_factor)

    def test_splits_since_sync_is_the_scatter_signal(self):
        db = Database(small_config())
        tree = db.bulk_load_tree(
            [Record(2 * k, "v") for k in range(80)], leaf_fill=1.0
        )
        frag = db.frag_stats()
        frag.sync_from_tree(tree)
        assert frag.splits_since_sync == 0
        for k in range(40):
            tree.insert(Record(2 * k + 1, "w"))
        assert frag.splits_since_sync == frag.leaf_splits > 0
        frag.sync_from_tree(tree)  # re-baseline, e.g. after a reorg
        assert frag.splits_since_sync == 0
        assert frag.leaf_splits > 0  # the lifetime total is preserved


class TestGapAwareSync:
    def test_gapped_build_reads_as_fully_filled(self):
        db = Database(small_config(gap=0.25))
        tree = db.bulk_load_tree(
            [Record(k, "v") for k in range(96)], leaf_fill=1.0
        )
        frag = db.frag_stats()
        frag.sync_from_tree(tree)
        # fill is measured against the *packed* capacity, so the intended
        # gap does not read as fragmentation
        assert frag.leaf_capacity == gapped_leaf_fill(db.config, 1.0) == 6
        assert frag.fill_factor == pytest.approx(1.0)

    def test_absorbed_inserts_push_fill_above_one(self):
        db = Database(small_config(gap=0.25))
        tree = db.bulk_load_tree(
            [Record(2 * k, "v") for k in range(48)], leaf_fill=1.0
        )
        frag = db.frag_stats()
        frag.sync_from_tree(tree)
        for key in (1, 13, 25, 37, 49, 61, 73, 85):
            tree.insert(Record(key, "w"))
        assert frag.absorbed_inserts > 0
        assert frag.fill_factor > 1.0  # harmless: gap slots in use
        assert frag.fragmentation < 0.0


class TestPerShardTracking:
    def test_each_shard_has_its_own_stats(self):
        sdb = ShardedDatabase(small_config(), ShardConfig(n_shards=2))
        sdb.bulk_load([Record(2 * k, "v") for k in range(80)])
        for handle in sdb.handles:
            handle.frag.sync_from_tree(handle.tree())
        for k in range(0, 80, 2):  # odd keys spread across both shards
            sdb.insert(Record(2 * k + 1, "w"))
        for k in range(0, 40, 4):
            sdb.delete(4 * k)
        per_shard = [handle.frag for handle in sdb.handles]
        assert sum(f.inserts for f in per_shard) == 40
        assert sum(f.deletes for f in per_shard) == 10
        assert all(f.inserts > 0 for f in per_shard)
        for handle in sdb.handles:
            assert handle.frag.records == handle.tree().record_count()

    def test_shard_fill_factors_are_independent(self):
        sdb = ShardedDatabase(small_config(), ShardConfig(n_shards=2))
        sdb.bulk_load([Record(k, "v") for k in range(80)])
        for handle in sdb.handles:
            handle.frag.sync_from_tree(handle.tree())
        # thin out only the keys of shard 0's key range
        low_keys = [
            k for k in range(80) if sdb.router.shard_for(k) == 0
        ]
        for k in low_keys[:: 2]:
            sdb.delete(k)
        frag0, frag1 = (handle.frag for handle in sdb.handles)
        assert frag0.fill_factor < 0.7
        assert frag1.fill_factor == pytest.approx(1.0)


class TestResetAndDelta:
    def test_reset_zeroes_everything(self):
        frag = FragmentationStats(
            inserts=3, leaves=4, records=12, leaf_capacity=8, synced=True
        )
        frag.reset()
        assert frag.inserts == frag.leaves == frag.records == 0
        assert frag.synced is False
        assert frag.fill_factor == 1.0  # unknowable again

    def test_snapshot_delta_threading(self):
        frag = FragmentationStats()
        before = frag.snapshot()
        frag.inserts += 5
        frag.leaf_splits += 2
        delta = frag.delta(before)
        assert delta["inserts"] == 5 and delta["leaf_splits"] == 2
        assert delta["deletes"] == 0
