"""Background checkpointing during live simulation."""

import pytest

from repro.btree.protocols import updater_insert
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.reorg.reorganizer import Reorganizer
from repro.sim.checkpointer import checkpointer
from repro.sim.crash import crash_recover
from repro.sim.workload import build_sparse_tree
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler
from repro.wal.records import CheckpointRecord


def make_db():
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=1024,
            internal_extent_pages=512,
            buffer_pool_pages=128,
        )
    )
    build_sparse_tree(db, n_records=500, fill_after=0.3)
    db.flush()
    db.checkpoint()
    return db


def test_checkpoints_taken_at_cadence():
    db = make_db()
    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(), unit_pause=0.05, op_duration=0.2
    )
    sched.spawn(
        full_reorganization(protocol), name="reorg", is_reorganizer=True
    )
    ckpt_txn = sched.spawn(
        checkpointer(db, interval=3.0, rounds=5), name="checkpointer"
    )
    sched.run()
    assert sched.failed == []
    taken = next(r for t, r in sched.completed if t is ckpt_txn)
    assert taken == 5
    checkpoints = [
        r for r in db.log.records_from(1) if isinstance(r, CheckpointRecord)
    ]
    assert len(checkpoints) >= 6  # setup checkpoint + 5 cadence ones
    db.tree().validate()


def test_checkpoint_bounds_redo_after_mid_run_crash():
    db = make_db()
    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(), unit_pause=0.05, op_duration=0.2
    )
    sched.spawn(
        full_reorganization(protocol), name="reorg", is_reorganizer=True
    )
    sched.spawn(checkpointer(db, interval=2.0, rounds=50), name="ckpt")
    for i in range(40):
        sched.spawn(
            updater_insert(db, "primary", Record(9_000 + i, "w")), at=0.3 * i
        )
    sched.run(until=9.0)
    db.log.flush()
    log_length = db.log.last_lsn
    last_ckpt = db.log.last_checkpoint_lsn
    assert last_ckpt > 0
    recovery = crash_recover(db)
    # Redo scanned only the post-checkpoint suffix.
    assert recovery.redo_scanned <= log_length - last_ckpt + 1
    Reorganizer(db, db.tree(), ReorgConfig()).forward_recover(recovery)
    db.tree().validate()


def test_checkpoint_during_pass3_preserves_side_file_state():
    """A checkpoint taken while pass 3 runs captures the reorg bit, stable
    key and side file, so a crash right after it restores them."""
    db = make_db()
    sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.02)
    protocol = ReorgProtocol(
        db, "primary", ReorgConfig(stable_point_interval=2),
        scan_pause=0.5,
    )

    def pass3_only():
        result = yield from protocol.pass3()
        return result

    sched.spawn(pass3_only(), name="reorg", is_reorganizer=True)
    # Let the scan get going, then checkpoint and stop.
    sched.run(until=3.0)
    if not db.pass3.reorg_bit:
        pytest.skip("pass 3 finished before the observation window")
    db.checkpoint()
    db.log.flush()
    recovery = crash_recover(db)
    assert recovery.reorg_bit
    assert recovery.stable_key is not None
    Reorganizer(db, db.tree(), ReorgConfig()).forward_recover(recovery)
    tree = db.tree()
    tree.validate()
    assert not db.pass3.reorg_bit
