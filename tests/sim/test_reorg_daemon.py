"""The fragmentation-aware auto-reorg daemon: trigger policy and DES runs.

Decision-level tests drive :meth:`ReorgDaemon._decide` against
hand-positioned :class:`FragmentationStats` (threshold edges, hysteresis,
cooldown, deferrals); end-to-end tests run the daemon as a scheduler
process over a real fragmented tree and watch it reorganize.
"""

from types import SimpleNamespace

import pytest

from repro.btree.protocols import OPTIMISTIC_STATS
from repro.btree.stats import collect_stats
from repro.config import DaemonConfig, ReorgConfig, TreeConfig
from repro.db import Database
from repro.metrics import FragmentationStats
from repro.reorg import DaemonTarget, ReorgDaemon
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler

CFG = DaemonConfig(
    poll_interval=1.0, frag_high=0.35, frag_low=0.15, cooldown=10.0
)


def frag_at(fill, leaves=10, cap=10):
    return FragmentationStats(
        records=int(round(fill * leaves * cap)),
        leaves=leaves,
        leaf_capacity=cap,
        synced=True,
    )


def make_daemon(config=CFG, *, fill=0.5, reorg_bit=False):
    frag = frag_at(fill)
    db = SimpleNamespace(pass3=SimpleNamespace(reorg_bit=reorg_bit))
    target = DaemonTarget(db, "t", frag)
    return ReorgDaemon([target], config), target


class TestThreshold:
    def test_crossing_triggers(self):
        daemon, target = make_daemon(fill=0.5)  # frag 0.5 >= 0.35
        assert daemon._decide(target, now=1.0, burst=False) == "trigger"

    def test_exactly_at_threshold_triggers(self):
        daemon, target = make_daemon(fill=0.65)  # frag 0.35 == frag_high
        assert target.frag.fragmentation == pytest.approx(0.35)
        assert daemon._decide(target, now=1.0, burst=False) == "trigger"

    def test_just_below_threshold_idles(self):
        daemon, target = make_daemon(fill=0.66)  # frag 0.34 < 0.35
        assert daemon._decide(target, now=1.0, burst=False) == "idle"

    def test_small_tree_is_skipped(self):
        daemon, target = make_daemon(fill=0.5)
        target.frag.leaves = 1  # below min_leaves=2
        assert daemon._decide(target, now=1.0, burst=False) == "skip-small"
        assert daemon.stats.skipped_small == 1

    def test_max_triggers_caps_the_daemon(self):
        daemon, target = make_daemon(
            DaemonConfig(poll_interval=1.0, max_triggers=1), fill=0.3
        )
        daemon.stats.triggers = 1
        assert daemon._decide(target, now=1.0, burst=False) == "idle"


class TestHysteresis:
    def test_fired_shard_holds_until_frag_low(self):
        daemon, target = make_daemon(fill=0.5)
        state = daemon._state["t"]
        state.armed = False  # as _reorganize leaves it
        assert (
            daemon._decide(target, now=20.0, burst=False)
            == "hold-hysteresis"
        )
        assert daemon.stats.hysteresis_holds == 1

    def test_between_low_and_high_is_plain_idle(self):
        daemon, target = make_daemon(fill=0.75)  # frag 0.25, in the band
        daemon._state["t"].armed = False
        assert daemon._decide(target, now=20.0, burst=False) == "idle"
        assert not daemon._state["t"].armed  # still disarmed

    def test_dropping_to_frag_low_rearms(self):
        daemon, target = make_daemon(fill=0.9)  # frag 0.10 <= frag_low
        daemon._state["t"].armed = False
        assert daemon._decide(target, now=20.0, burst=False) == "idle"
        assert daemon._state["t"].armed
        # and the next crossing fires again
        target.frag.records = int(0.5 * 10 * 10)
        assert daemon._decide(target, now=21.0, burst=False) == "trigger"

    def test_split_trigger_path_ignores_hysteresis(self):
        config = DaemonConfig(
            poll_interval=1.0,
            frag_high=0.35,
            frag_low=0.15,
            cooldown=0.0,
            split_trigger=3,
        )
        daemon, target = make_daemon(config, fill=1.0)  # fill says healthy
        daemon._state["t"].armed = False
        target.frag.leaf_splits = 3  # 3 splits since sync: scattered
        assert daemon._decide(target, now=20.0, burst=False) == "trigger"


class TestDeferrals:
    def test_cooldown_defers_a_hot_shard(self):
        daemon, target = make_daemon(fill=0.5)
        daemon._state["t"].last_trigger = 15.0
        assert (
            daemon._decide(target, now=20.0, burst=False)
            == "defer-cooldown"
        )
        assert daemon.stats.deferred_cooldown == 1
        # past the cooldown the same state fires
        assert daemon._decide(target, now=26.0, burst=False) == "trigger"

    def test_manual_reorg_bit_defers(self):
        daemon, target = make_daemon(fill=0.5, reorg_bit=True)
        assert (
            daemon._decide(target, now=1.0, burst=False) == "defer-manual"
        )
        assert daemon.stats.deferred_manual == 1

    def test_optimistic_burst_defers(self):
        daemon, target = make_daemon(fill=0.5)
        assert daemon._decide(target, now=1.0, burst=True) == "defer-optimistic"
        assert daemon.stats.deferred_optimistic == 1

    def test_burst_detection_uses_poll_over_poll_delta(self):
        config = DaemonConfig(
            poll_interval=1.0, optimistic_burst_threshold=5
        )
        daemon, _ = make_daemon(config)
        before = OPTIMISTIC_STATS.searches
        try:
            assert daemon._optimistic_burst() is False  # no previous poll
            OPTIMISTIC_STATS.searches += 10
            assert daemon._optimistic_burst() is True
            assert daemon._optimistic_burst() is False  # delta settled
        finally:
            OPTIMISTIC_STATS.searches = before


def fragmented_db(gap=0.0, n=200):
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=8,
            leaf_extent_pages=256,
            internal_extent_pages=64,
            buffer_pool_pages=64,
            leaf_gap_fraction=gap,
        )
    )
    tree = db.bulk_load_tree(
        [Record(k, "v") for k in range(n)], leaf_fill=1.0
    )
    for k in range(n):
        if k % 4:
            tree.delete(k)
    db.flush()
    return db


def des_run(db, config, *, horizon):
    daemon = ReorgDaemon.for_database(db, config, ReorgConfig())
    scheduler = Scheduler(
        db.locks, store=db.store, log=db.log, io_time=1.0, hit_time=0.05
    )
    daemon.spawn(scheduler, horizon=horizon)
    scheduler.run()
    assert not scheduler.failed
    return daemon


class TestEndToEnd:
    def test_daemon_reorganizes_a_fragmented_tree(self):
        db = fragmented_db()
        before = collect_stats(db.tree())
        assert before.leaf_fill < 0.35
        keys = [r.key for r in db.tree().items()]
        daemon = des_run(db, CFG, horizon=3.0)
        assert daemon.stats.triggers == 1
        assert [(t, n, a) for t, n, a in daemon.history if a == "trigger"]
        after = collect_stats(db.tree())
        assert after.leaf_count < before.leaf_count / 2
        assert after.leaf_fill > before.leaf_fill * 2
        assert [r.key for r in db.tree().items()] == keys
        db.tree().validate()
        # the trigger re-baselined the metrics from the switched tree
        frag = db.frag_stats()
        assert frag.reorgs_triggered == 1
        assert frag.splits_since_sync == 0
        assert frag.leaves == after.leaf_count

    def test_healthy_tree_is_left_alone(self):
        db = Database(TreeConfig(leaf_capacity=8, buffer_pool_pages=64))
        db.bulk_load_tree(
            [Record(k, "v") for k in range(100)], leaf_fill=1.0
        )
        db.flush()
        daemon = des_run(db, CFG, horizon=3.0)
        assert daemon.stats.polls == 3
        assert daemon.stats.triggers == 0
        assert {a for _, _, a in daemon.history} == {"idle"}

    def test_manual_reorg_holds_the_daemon_off(self):
        db = fragmented_db()
        db.pass3.reorg_bit = True  # a manual reorganizer owns the tree
        daemon = des_run(db, CFG, horizon=3.0)
        assert daemon.stats.triggers == 0
        assert daemon.stats.deferred_manual == daemon.stats.polls == 3
        assert {a for _, _, a in daemon.history} == {"defer-manual"}

    def test_horizon_bounds_the_poll_loop(self):
        db = Database(TreeConfig(leaf_capacity=8, buffer_pool_pages=64))
        db.bulk_load_tree(
            [Record(k, "v") for k in range(64)], leaf_fill=1.0
        )
        db.flush()
        config = DaemonConfig(poll_interval=5.0)
        daemon = des_run(db, config, horizon=12.0)
        assert daemon.stats.polls == 2  # t=5 and t=10; t=15 > horizon

    def test_gapped_daemon_rebuild_keeps_the_gap(self):
        db = fragmented_db(gap=0.25)
        daemon = des_run(db, CFG, horizon=3.0)
        assert daemon.stats.triggers == 1
        tree = db.tree()
        sizes = [
            tree.store.get_leaf(pid).num_items
            for pid in tree.leaf_ids_in_key_order()
        ]
        assert max(sizes) <= 6  # packed capacity of cap 8, gap 0.25
        tree.validate()
