"""Tests for workload generation, the driver, and metrics collection."""

import pytest

from repro.btree.stats import collect_stats
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.sim.driver import ExperimentSetup, run_concurrent_experiment
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.sim.workload import (
    KeyPicker,
    WorkloadConfig,
    build_sparse_tree,
    plan_workload,
)


def small_tree_config():
    return TreeConfig(
        leaf_capacity=16,
        internal_capacity=8,
        leaf_extent_pages=512,
        internal_extent_pages=256,
        buffer_pool_pages=256,
    )


class TestSparseTreeBuilder:
    def test_fill_after_respected(self):
        db = Database(small_tree_config())
        tree = build_sparse_tree(db, n_records=1000, fill_after=0.3)
        stats = collect_stats(tree)
        assert stats.leaf_fill == pytest.approx(0.3, abs=0.08)
        tree.validate()

    def test_clustered_deletes(self):
        db = Database(small_tree_config())
        tree = build_sparse_tree(
            db, n_records=1000, fill_after=0.5, clustered=True
        )
        tree.validate()
        assert tree.record_count() == pytest.approx(500, abs=20)

    def test_seed_determinism(self):
        def build(seed):
            db = Database(small_tree_config())
            tree = build_sparse_tree(
                db, n_records=500, fill_after=0.4, seed=seed
            )
            return [r.key for r in tree.items()]

        assert build(3) == build(3)
        assert build(3) != build(4)

    def test_invalid_fill_rejected(self):
        db = Database(small_tree_config())
        with pytest.raises(ValueError):
            build_sparse_tree(db, n_records=10, fill_after=0.0)


class TestWorkloadPlanning:
    def test_plan_is_deterministic(self):
        config = WorkloadConfig(n_transactions=50, seed=9)
        assert plan_workload(config) == plan_workload(config)

    def test_fractions_validated(self):
        with pytest.raises(ValueError):
            WorkloadConfig(read_fraction=0.9, scan_fraction=0.9)

    def test_mix_roughly_matches_fractions(self):
        config = WorkloadConfig(
            n_transactions=1000,
            read_fraction=0.5,
            scan_fraction=0.1,
            insert_fraction=0.2,
            delete_fraction=0.2,
        )
        plans = plan_workload(config)
        kinds = [p.kind for p in plans]
        assert kinds.count("read") == pytest.approx(500, abs=60)
        assert kinds.count("insert") == pytest.approx(200, abs=50)

    def test_arrivals_are_increasing(self):
        plans = plan_workload(WorkloadConfig(n_transactions=100))
        arrivals = [p.arrival for p in plans]
        assert arrivals == sorted(arrivals)

    def test_zipf_concentrates_on_low_keys(self):
        import random

        uniform = KeyPicker(1000, 0.0, random.Random(1))
        zipf = KeyPicker(1000, 1.2, random.Random(1))
        uniform_mean = sum(uniform.pick() for _ in range(2000)) / 2000
        zipf_mean = sum(zipf.pick() for _ in range(2000)) / 2000
        assert zipf_mean < uniform_mean / 2


def quick_setup(n_transactions=60, **kwargs):
    defaults = dict(
        tree_config=small_tree_config(),
        reorg_config=ReorgConfig(target_fill=0.9),
        workload=WorkloadConfig(
            n_transactions=n_transactions, key_space=1500, mean_interarrival=0.3
        ),
        n_records=1500,
        fill_after=0.3,
    )
    defaults.update(kwargs)
    return ExperimentSetup(**defaults)


class TestDriver:
    def test_workload_alone_completes(self):
        db, metrics = run_concurrent_experiment(quick_setup(), reorganizer="none")
        assert metrics.completed == metrics.user_txns
        assert metrics.aborted == 0
        db.tree().validate()

    def test_paper_reorganizer_with_workload(self):
        db, metrics = run_concurrent_experiment(quick_setup(), reorganizer="paper")
        assert metrics.completed == metrics.user_txns
        assert metrics.reorg_elapsed > 0
        tree = db.tree()
        tree.validate()
        assert collect_stats(tree).leaf_fill > 0.5

    def test_smith_reorganizer_with_workload(self):
        db, metrics = run_concurrent_experiment(
            quick_setup(), reorganizer="smith90"
        )
        assert metrics.completed == metrics.user_txns
        db.tree().validate()

    def test_paper_blocks_fewer_transactions_than_smith(self):
        """The headline of E2 / paper section 8."""
        _, paper = run_concurrent_experiment(
            quick_setup(n_transactions=120), reorganizer="paper"
        )
        _, smith = run_concurrent_experiment(
            quick_setup(n_transactions=120), reorganizer="smith90"
        )
        assert paper.blocked_txns < smith.blocked_txns
        assert paper.mean_wait < smith.mean_wait

    def test_unknown_reorganizer_rejected(self):
        with pytest.raises(ValueError):
            run_concurrent_experiment(quick_setup(), reorganizer="bogus")

    def test_runs_are_deterministic(self):
        _, a = run_concurrent_experiment(quick_setup(), reorganizer="paper")
        _, b = run_concurrent_experiment(quick_setup(), reorganizer="paper")
        assert a.mean_wait == b.mean_wait
        assert a.makespan == b.makespan
        assert a.blocked_txns == b.blocked_txns


class TestMetrics:
    def test_percentiles_and_throughput(self):
        from repro.txn.scheduler import Scheduler
        from repro.locks.manager import LockManager
        from repro.txn.ops import Think

        sched = Scheduler(LockManager())

        def worker(duration):
            yield Think(duration)
            return duration

        for d in (1.0, 2.0, 3.0, 4.0):
            sched.spawn(worker(d))
        sched.run()
        metrics = collect_metrics(sched)
        assert metrics.completed == 4
        assert metrics.mean_latency == pytest.approx(2.5)
        assert metrics.makespan == pytest.approx(4.0)
        assert metrics.throughput == pytest.approx(1.0)
