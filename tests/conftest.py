"""Shared fixtures: small trees, stores and logs for the whole suite."""

import pytest

from repro.config import SidePointerKind, TreeConfig
from repro.storage.store import StorageManager
from repro.wal.log import LogManager


def make_env(
    leaf_capacity=8,
    internal_capacity=8,
    leaf_extent_pages=512,
    internal_extent_pages=256,
    side_pointers=SidePointerKind.NONE,
    careful_writing=True,
    buffer_pool_pages=128,
):
    """A (store, log) pair wired together (buffer pool respects WAL)."""
    config = TreeConfig(
        leaf_capacity=leaf_capacity,
        internal_capacity=internal_capacity,
        leaf_extent_pages=leaf_extent_pages,
        internal_extent_pages=internal_extent_pages,
        side_pointers=side_pointers,
        careful_writing=careful_writing,
        buffer_pool_pages=buffer_pool_pages,
    )
    store = StorageManager(config)
    log = LogManager()
    store.set_wal(log)
    return store, log


@pytest.fixture(scope="session", autouse=True)
def _runtime_sanitizer():
    """Wrap the whole suite in the runtime lock/WAL sanitizer when
    ``REPRO_SANITIZER=1`` — every existing test doubles as a protocol
    check (the CI ``sanitizer`` job runs tier-1 this way)."""
    import os

    if os.environ.get("REPRO_SANITIZER") != "1":
        yield
        return
    from repro.analysis.sanitizer import install, uninstall

    install()
    try:
        yield
    finally:
        uninstall()


@pytest.fixture(scope="session", autouse=True)
def _runtime_race_detector(_runtime_sanitizer):
    """Wrap the whole suite in the data-race detector when
    ``REPRO_RACE=1`` (the CI ``race`` job runs tier-1 this way).

    Depends on ``_runtime_sanitizer`` so the two patch layers nest LIFO:
    sanitizer installs first and uninstalls last, otherwise each would
    capture the other's wrappers as "originals".  Non-strict because
    tier-1 deliberately runs seeded-protocol-bug scenarios; dedicated
    tests assert on report presence/absence instead.
    """
    import os

    if os.environ.get("REPRO_RACE") != "1":
        yield
        return
    from repro.analysis.racedetect import install, uninstall

    install(strict=False)
    try:
        yield
    finally:
        uninstall()


@pytest.fixture
def env():
    return make_env()


@pytest.fixture
def store(env):
    return env[0]


@pytest.fixture
def log(env):
    return env[1]


# -- hypothesis profiles -------------------------------------------------
#
# The default profile keeps CI fast; `HYPOTHESIS_PROFILE=soak pytest tests/`
# runs the property suites with a 10x example budget.
import os

from hypothesis import settings

settings.register_profile("default", max_examples=50)
settings.register_profile("soak", max_examples=500, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
