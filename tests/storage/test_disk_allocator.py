"""Unit tests for the simulated disk and the free-space map."""

import pytest

from repro.errors import (
    ExtentFullError,
    PageAlreadyFreeError,
    PageNotAllocatedError,
    StorageError,
)
from repro.storage.allocator import FreeSpaceMap
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import LeafPage, Record


def make_disk(leaf_pages=16, internal_pages=8, seek_cost=10.0):
    return SimulatedDisk(
        [Extent("leaf", 0, leaf_pages), Extent("internal", leaf_pages, internal_pages)],
        seek_cost=seek_cost,
    )


class TestSimulatedDisk:
    def test_extent_layout_must_be_contiguous(self):
        with pytest.raises(StorageError):
            SimulatedDisk([Extent("a", 0, 4), Extent("b", 5, 4)])

    def test_duplicate_extent_names_rejected(self):
        with pytest.raises(StorageError):
            SimulatedDisk([Extent("a", 0, 4), Extent("a", 4, 4)])

    def test_needs_one_extent(self):
        with pytest.raises(StorageError):
            SimulatedDisk([])

    def test_extent_lookup(self):
        disk = make_disk()
        assert disk.extent("leaf").size == 16
        assert disk.extent_of(17).name == "internal"
        with pytest.raises(StorageError):
            disk.extent("nope")
        with pytest.raises(StorageError):
            disk.extent_of(999)

    def test_write_then_read_round_trips_a_clone(self):
        disk = make_disk()
        page = LeafPage(3, 4)
        page.insert(Record(1, "x"))
        disk.write(page)
        page.insert(Record(2, "y"))  # mutate after write; must not leak
        stable = disk.read(3)
        assert stable.keys() == [1]

    def test_read_unwritten_page_raises(self):
        disk = make_disk()
        with pytest.raises(PageNotAllocatedError):
            disk.read(0)

    def test_out_of_range_page_id_raises(self):
        disk = make_disk()
        with pytest.raises(StorageError):
            disk.read(1000)
        with pytest.raises(StorageError):
            disk.write(LeafPage(1000, 4))

    def test_sequential_vs_seek_cost_model(self):
        disk = make_disk(seek_cost=10.0)
        for pid in (0, 1, 2, 5):
            disk.write(LeafPage(pid, 4))
        disk.read(0)  # first read: a seek
        disk.read(1)  # sequential
        disk.read(2)  # sequential
        disk.read(5)  # seek
        assert disk.stats.reads == 4
        assert disk.stats.sequential_reads == 2
        assert disk.stats.seeks == 2
        assert disk.stats.read_cost == pytest.approx(10 + 1 + 1 + 10)

    def test_reset_read_position_forces_seek(self):
        disk = make_disk()
        disk.write(LeafPage(0, 4))
        disk.write(LeafPage(1, 4))
        disk.read(0)
        disk.reset_read_position()
        disk.read(1)
        assert disk.stats.seeks == 2

    def test_stats_reset(self):
        disk = make_disk()
        disk.write(LeafPage(0, 4))
        disk.read(0)
        disk.stats.reset()
        assert disk.stats.reads == 0
        assert disk.stats.read_cost == 0.0

    def test_erase_removes_image(self):
        disk = make_disk()
        disk.write(LeafPage(0, 4))
        disk.erase(0)
        assert not disk.has_image(0)

    def test_peek_does_not_charge_io(self):
        disk = make_disk()
        disk.write(LeafPage(0, 4))
        disk.stats.reset()
        disk.peek(0)
        assert disk.stats.reads == 0


class TestWriteCostModel:
    def test_writes_charge_sequential_vs_seek(self):
        disk = make_disk(seek_cost=10.0)
        disk.write(LeafPage(0, 4))  # first access: a seek
        disk.write(LeafPage(1, 4))  # sequential
        disk.write(LeafPage(2, 4))  # sequential
        disk.write(LeafPage(9, 4))  # seek
        assert disk.stats.writes == 4
        assert disk.stats.sequential_writes == 2
        assert disk.stats.write_cost == pytest.approx(10 + 1 + 1 + 10)

    def test_reads_and_writes_share_one_head(self):
        disk = make_disk(seek_cost=10.0)
        for pid in (3, 4, 7, 8):
            disk.write(LeafPage(pid, 4))
        disk.stats.reset()
        disk.reset_read_position()
        disk.write(LeafPage(3, 4))  # seek: fresh head
        disk.read(4)  # sequential after the *write* to 3
        disk.write(LeafPage(5, 4))  # sequential after the read of 4
        disk.read(7)  # seek
        disk.write(LeafPage(8, 4))  # sequential after the read of 7
        assert disk.stats.sequential_reads == 1
        assert disk.stats.sequential_writes == 2
        assert disk.stats.seeks == 1  # the read of 7
        assert disk.stats.read_cost == pytest.approx(1 + 10)
        assert disk.stats.write_cost == pytest.approx(10 + 1 + 1)

    def test_stats_reset_clears_write_and_batch_fields(self):
        disk = make_disk()
        disk.write(LeafPage(0, 4))
        disk.write(LeafPage(1, 4))
        disk.read_batch([0, 1])
        disk.stats.reset()
        assert disk.stats.sequential_writes == 0
        assert disk.stats.write_cost == 0.0
        assert disk.stats.batch_reads == 0
        assert disk.stats.batch_read_pages == 0

    def test_snapshot_delta_round_trip(self):
        disk = make_disk()
        disk.write(LeafPage(0, 4))
        before = disk.stats.snapshot()
        disk.write(LeafPage(1, 4))
        disk.read(0)
        spent = disk.stats.delta(before)
        assert spent["writes"] == 1
        assert spent["reads"] == 1
        assert spent["sequential_writes"] == 1


class TestFreeSpaceMap:
    def setup_method(self):
        self.disk = make_disk()
        self.fsm = FreeSpaceMap(self.disk, ["leaf", "internal"])

    def test_everything_starts_free(self):
        assert self.fsm.free_count("leaf") == 16
        assert self.fsm.free_count("internal") == 8
        assert self.fsm.allocated_count("leaf") == 0

    def test_allocate_smallest_first(self):
        assert self.fsm.allocate("leaf") == 0
        assert self.fsm.allocate("leaf") == 1
        assert self.fsm.allocated_page_ids("leaf") == [0, 1]

    def test_allocate_specific_page(self):
        assert self.fsm.allocate("leaf", 5) == 5
        assert not self.fsm.is_free(5)
        with pytest.raises(StorageError):
            self.fsm.allocate("leaf", 5)

    def test_extent_exhaustion(self):
        for _ in range(8):
            self.fsm.allocate("internal")
        with pytest.raises(ExtentFullError):
            self.fsm.allocate("internal")

    def test_free_returns_page_and_erases_image(self):
        pid = self.fsm.allocate("leaf")
        self.disk.write(LeafPage(pid, 4))
        self.fsm.free(pid)
        assert self.fsm.is_free(pid)
        assert not self.disk.has_image(pid)

    def test_double_free_raises(self):
        pid = self.fsm.allocate("leaf")
        self.fsm.free(pid)
        with pytest.raises(PageAlreadyFreeError):
            self.fsm.free(pid)

    def test_first_free_in_range_implements_paper_heuristic(self):
        # Allocate pages 0..9; then free 2, 5, 7.
        for _ in range(10):
            self.fsm.allocate("leaf")
        for pid in (2, 5, 7):
            self.fsm.free(pid)
        # L=2, C=9: first free page strictly between them is 5.
        assert self.fsm.first_free_in_range("leaf", 2, 9) == 5
        # L=5, C=7: nothing strictly between.
        assert self.fsm.first_free_in_range("leaf", 5, 7) is None
        # L=-1 (nothing finished yet): picks 2.
        assert self.fsm.first_free_in_range("leaf", -1, 9) == 2

    def test_first_free(self):
        assert self.fsm.first_free("leaf") == 0
        for _ in range(16):
            self.fsm.allocate("leaf")
        assert self.fsm.first_free("leaf") is None

    def test_mark_allocated_is_idempotent(self):
        self.fsm.mark_allocated(3)
        self.fsm.mark_allocated(3)
        assert not self.fsm.is_free(3)

    def test_extent_for_unmanaged_page_raises(self):
        with pytest.raises(StorageError):
            self.fsm.extent_for(9999)
