"""Unit tests for leaf and internal page operations."""

import pytest

from repro.errors import BTreeError, DuplicateKeyError, KeyNotFoundError
from repro.storage.page import InternalPage, LeafPage, NO_PAGE, PageKind, Record


def make_leaf(keys, capacity=8, page_id=0):
    page = LeafPage(page_id, capacity)
    for k in keys:
        page.insert(Record(k, f"p{k}"))
    return page


class TestLeafPage:
    def test_insert_keeps_key_order(self):
        page = make_leaf([5, 1, 3])
        assert page.keys() == [1, 3, 5]

    def test_insert_duplicate_raises(self):
        page = make_leaf([1])
        with pytest.raises(DuplicateKeyError):
            page.insert(Record(1))

    def test_insert_into_full_page_raises(self):
        page = make_leaf([1, 2], capacity=2)
        with pytest.raises(BTreeError):
            page.insert(Record(3))

    def test_get_and_contains(self):
        page = make_leaf([1, 3])
        assert page.contains(3)
        assert not page.contains(2)
        assert page.get(3).payload == "p3"

    def test_get_missing_raises(self):
        page = make_leaf([1])
        with pytest.raises(KeyNotFoundError):
            page.get(2)

    def test_delete_returns_record(self):
        page = make_leaf([1, 2, 3])
        rec = page.delete(2)
        assert rec.key == 2
        assert page.keys() == [1, 3]

    def test_delete_missing_raises(self):
        page = make_leaf([1])
        with pytest.raises(KeyNotFoundError):
            page.delete(9)

    def test_min_max_key(self):
        page = make_leaf([4, 2, 9])
        assert page.min_key() == 2
        assert page.max_key() == 9

    def test_min_key_on_empty_raises(self):
        page = LeafPage(0, 4)
        with pytest.raises(BTreeError):
            page.min_key()

    def test_fill_fraction_and_slots(self):
        page = make_leaf([1, 2], capacity=8)
        assert page.fill_fraction() == pytest.approx(0.25)
        assert page.free_slots() == 6
        assert not page.is_full
        assert not page.is_empty

    def test_take_all_empties_page(self):
        page = make_leaf([1, 2, 3])
        records = page.take_all()
        assert [r.key for r in records] == [1, 2, 3]
        assert page.is_empty

    def test_take_first(self):
        page = make_leaf([1, 2, 3, 4])
        taken = page.take_first(2)
        assert [r.key for r in taken] == [1, 2]
        assert page.keys() == [3, 4]

    def test_extend_requires_ascending_beyond_max(self):
        page = make_leaf([1, 2])
        page.extend([Record(5), Record(7)])
        assert page.keys() == [1, 2, 5, 7]
        with pytest.raises(BTreeError):
            page.extend([Record(6)])  # 6 <= current max 7

    def test_extend_rejects_unsorted_batch(self):
        page = make_leaf([1])
        with pytest.raises(BTreeError):
            page.extend([Record(5), Record(4)])

    def test_extend_rejects_overflow(self):
        page = make_leaf([1, 2, 3], capacity=4)
        with pytest.raises(BTreeError):
            page.extend([Record(5), Record(6)])

    def test_replace_all_sorts_and_checks_duplicates(self):
        page = make_leaf([1])
        page.replace_all([Record(9), Record(4)])
        assert page.keys() == [4, 9]
        with pytest.raises(DuplicateKeyError):
            page.replace_all([Record(4), Record(4)])

    def test_iter_from(self):
        page = make_leaf([1, 3, 5, 7])
        assert [r.key for r in page.iter_from(3)] == [3, 5, 7]
        assert [r.key for r in page.iter_from(4)] == [5, 7]
        assert [r.key for r in page.iter_from(8)] == []

    def test_clone_is_deep_for_records(self):
        page = make_leaf([1, 2])
        page.next_leaf = 7
        page.page_lsn = 42
        copy = page.clone()
        copy.insert(Record(3))
        assert page.keys() == [1, 2]
        assert copy.next_leaf == 7
        assert copy.page_lsn == 42

    def test_side_pointer_defaults(self):
        page = LeafPage(0, 4)
        assert page.next_leaf == NO_PAGE
        assert page.prev_leaf == NO_PAGE

    def test_payload_bytes(self):
        page = make_leaf([1, 22])  # payloads "p1", "p22"
        assert page.payload_bytes() == len("p1") + len("p22")

    def test_kind(self):
        assert LeafPage(0, 4).kind is PageKind.LEAF


def make_internal(entries, capacity=8, page_id=100, level=1):
    page = InternalPage(page_id, capacity, level=level)
    for k, c in entries:
        page.insert_entry(k, c)
    return page


class TestInternalPage:
    def test_insert_orders_entries(self):
        page = make_internal([(50, 5), (10, 1), (30, 3)])
        assert page.keys() == [10, 30, 50]
        assert page.children() == [1, 3, 5]

    def test_low_mark_set_on_first_insert_only(self):
        page = InternalPage(100, 8)
        assert page.low_mark is None
        page.insert_entry(30, 3)
        assert page.low_mark == 30
        page.insert_entry(10, 1)
        assert page.low_mark == 30  # fixed at creation, per section 7.1

    def test_duplicate_separator_raises(self):
        page = make_internal([(10, 1)])
        with pytest.raises(DuplicateKeyError):
            page.insert_entry(10, 2)

    def test_child_routing(self):
        page = make_internal([(10, 1), (20, 2), (30, 3)])
        assert page.child_for(10) == 1
        assert page.child_for(15) == 1
        assert page.child_for(20) == 2
        assert page.child_for(99) == 3
        # Keys below the minimum route to the leftmost child.
        assert page.child_for(5) == 1

    def test_child_routing_empty_raises(self):
        with pytest.raises(BTreeError):
            InternalPage(0, 4).child_for(1)

    def test_remove_entry_for_child(self):
        page = make_internal([(10, 1), (20, 2)])
        key, child = page.remove_entry_for_child(1)
        assert (key, child) == (10, 1)
        assert page.keys() == [20]

    def test_remove_missing_child_raises(self):
        page = make_internal([(10, 1)])
        with pytest.raises(KeyNotFoundError):
            page.remove_entry_for_child(9)

    def test_update_entry_moves_key(self):
        page = make_internal([(10, 1), (20, 2), (30, 3)])
        page.update_entry(20, 2, 25, 7)
        assert page.entries == ((10, 1), (25, 7), (30, 3))

    def test_update_entry_wrong_pair_raises(self):
        page = make_internal([(10, 1)])
        with pytest.raises(KeyNotFoundError):
            page.update_entry(11, 1, 12, 2)

    def test_set_entries_replaces_all(self):
        page = make_internal([(10, 1)])
        page.set_entries([(40, 4), (20, 2)])
        assert page.entries == ((20, 2), (40, 4))

    def test_full_page_rejects_insert(self):
        page = make_internal([(1, 1), (2, 2)], capacity=2)
        assert page.is_full
        with pytest.raises(BTreeError):
            page.insert_entry(3, 3)

    def test_clone_preserves_level_and_low_mark(self):
        page = make_internal([(10, 1)], level=2)
        copy = page.clone()
        copy.insert_entry(20, 2)
        assert page.keys() == [10]
        assert copy.level == 2
        assert copy.low_mark == 10

    def test_kind(self):
        assert InternalPage(0, 4).kind is PageKind.INTERNAL
