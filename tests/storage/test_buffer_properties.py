"""Property-based tests for the buffer pool.

Invariant under any interleaving of page updates, flushes, evictions and
crashes: the stable image of a page is always some *prefix* of its logged
update history (never a torn or reordered state), and careful-writing
dependencies are never violated on disk.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage.buffer import BufferPool
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import LeafPage, Record


class CountingWAL:
    def __init__(self):
        self.flushed_lsn = 0

    def flush(self, up_to_lsn):
        self.flushed_lsn = max(self.flushed_lsn, up_to_lsn)


ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["update", "flush", "fetch", "crash_check"]),
        st.integers(min_value=0, max_value=5),  # page index
    ),
    min_size=1,
    max_size=100,
)


@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(actions=ACTIONS, capacity=st.integers(min_value=2, max_value=8))
def test_stable_images_are_update_prefixes(actions, capacity):
    disk = SimulatedDisk([Extent("leaf", 0, 16)])
    wal = CountingWAL()
    pool = BufferPool(disk, capacity, wal=wal)
    n_pages = 6
    lsn = 0
    #: Per page: number of updates applied in memory.
    applied = [0] * n_pages
    live_pages = {}

    def page_of(index):
        if index not in live_pages:
            page = LeafPage(index, capacity=200)
            pool.put_new(page)
            live_pages[index] = page
        elif not pool.contains(index):
            live_pages[index] = pool.fetch(index)
        return live_pages[index]

    for action, index in actions:
        if action == "update":
            lsn += 1
            page = page_of(index)
            page.insert(Record(applied[index], payload=str(lsn)))
            applied[index] += 1
            pool.mark_dirty(index, lsn=lsn)
        elif action == "flush":
            if index in live_pages and pool.contains(index):
                pool.flush_page(index)
        elif action == "fetch":
            if index in live_pages:
                live_pages[index] = pool.fetch(index)
        elif action == "crash_check":
            # The stable image must be a prefix of the update history:
            # exactly its first `k` records for some k <= applied count,
            # and its page_lsn consistent with the WAL flush point.
            for pid in range(n_pages):
                if not disk.has_image(pid):
                    continue
                stable = disk.peek(pid)
                keys = stable.keys()
                assert keys == list(range(len(keys)))  # prefix of history
                assert len(keys) <= applied[pid]
                assert stable.page_lsn <= wal.flushed_lsn

    # Final full flush: disk must converge to memory exactly.
    for index, page in live_pages.items():
        if pool.contains(index):
            pool.flush_page(index)
            assert disk.peek(index).keys() == page.keys()


@settings(max_examples=60, deadline=None)
@given(
    chain=st.lists(
        st.integers(min_value=0, max_value=7), min_size=2, max_size=8,
        unique=True,
    )
)
def test_careful_writing_chain_order_always_respected(chain):
    """For any dependency chain p0 <- p1 <- ... (each must be durable
    before its successor), flushing any member writes its transitive
    dependencies first."""
    disk = SimulatedDisk([Extent("leaf", 0, 16)])
    pool = BufferPool(disk, capacity=16, careful_writing=True)
    for pid in chain:
        pool.put_new(LeafPage(pid, 4))
    for earlier, later in zip(chain, chain[1:]):
        # `later` holds records copied from `earlier`... the paper's rule:
        # source must not be written before dest; here dest=earlier.
        pool.add_write_dependency(source=later, dest=earlier)
    writes = []
    original = disk.write

    def spy(page):
        writes.append(page.page_id)
        original(page)

    disk.write = spy
    pool.flush_page(chain[-1])
    # Every dependency precedes its dependent in the write order.
    positions = {pid: i for i, pid in enumerate(writes)}
    for earlier, later in zip(chain, chain[1:]):
        assert positions[earlier] < positions[later]
