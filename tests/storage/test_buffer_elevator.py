"""Elevator write-back and prefetch vs the careful-writing order.

The elevator reorders page write-back into ascending page-id sweeps; the
careful-writing protocol demands each copy destination be durable before
its source.  These tests pin down the composition: the sweep chooses who
drains *next*, but every drain still runs the recursive dest-before-source
flush, so dependencies that point backwards against the sweep direction
jump the queue.  Readahead's prefetched frames add a third party: they are
clean on arrival, may be dirtied later, and must then obey the same rules
when evicted.
"""

import pytest

from repro.errors import BufferPoolError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import LeafPage, Record


def make_pool(capacity=8, *, elevator=True, writeback_batch=8, wal=None):
    disk = SimulatedDisk([Extent("leaf", 0, 64)])
    pool = BufferPool(
        disk,
        capacity,
        wal=wal,
        careful_writing=True,
        elevator=elevator,
        writeback_batch=writeback_batch,
    )
    return disk, pool


def new_leaf(pool, pid, keys=()):
    page = LeafPage(pid, 8)
    for k in keys:
        page.insert(Record(k))
    pool.put_new(page)
    return page


def spy_writes(disk):
    order = []
    original = disk.write

    def spy(page):
        order.append(page.page_id)
        original(page)

    disk.write = spy
    return order


class TestElevatorOrder:
    def test_flush_all_sweeps_ascending(self):
        disk, pool = make_pool()
        for pid in (5, 1, 3):  # dirtied in non-sweep order
            new_leaf(pool, pid, [pid])
        order = spy_writes(disk)
        pool.flush_all()
        assert order == [1, 3, 5]

    def test_flush_all_without_elevator_keeps_pool_order(self):
        disk, pool = make_pool(elevator=False)
        for pid in (5, 1, 3):
            new_leaf(pool, pid, [pid])
        order = spy_writes(disk)
        pool.flush_all()
        assert order == [5, 1, 3]

    def test_force_sweeps_ascending(self):
        disk, pool = make_pool()
        for pid in (6, 2, 4):
            new_leaf(pool, pid, [pid])
        order = spy_writes(disk)
        pool.force([6, 2, 4])
        assert order == [2, 4, 6]

    def test_writeback_batch_must_be_positive(self):
        disk = SimulatedDisk([Extent("leaf", 0, 8)])
        with pytest.raises(BufferPoolError):
            BufferPool(disk, 4, writeback_batch=0)


class TestElevatorVsCarefulWriting:
    def test_backwards_dependency_jumps_the_sweep(self):
        """dest 5 must be written before source 1, against sweep order."""
        disk, pool = make_pool()
        new_leaf(pool, 1, [1])  # source (copied out of)
        new_leaf(pool, 3, [3])  # unrelated dirty page
        new_leaf(pool, 5, [5])  # destination of the copy
        pool.add_write_dependency(source=1, dest=5)
        order = spy_writes(disk)
        pool.flush_all()
        assert order.index(5) < order.index(1)
        assert sorted(order) == [1, 3, 5]

    def test_recursive_chain_flushes_dest_first_under_elevator(self):
        """A chain 0 -> 4 -> 2 drains leaves-first however the sweep runs."""
        disk, pool = make_pool()
        for pid in (0, 2, 4):
            new_leaf(pool, pid, [pid])
        pool.add_write_dependency(source=0, dest=4)
        pool.add_write_dependency(source=4, dest=2)
        order = spy_writes(disk)
        pool.flush_all()
        assert order.index(2) < order.index(4) < order.index(0)

    def test_eviction_sweep_honours_dependencies(self):
        """The eviction-pressure sweep is still a careful-writing flush."""
        disk, pool = make_pool(capacity=3, writeback_batch=4)
        new_leaf(pool, 1, [1])
        new_leaf(pool, 2, [2])
        new_leaf(pool, 3, [3])
        pool.add_write_dependency(source=1, dest=3)
        order = spy_writes(disk)
        new_leaf(pool, 4, [4])  # overflows the pool -> evicts page 1's frame
        assert order.index(3) < order.index(1)
        assert pool.writeback_sweeps == 1
        assert not pool.is_dirty(2)  # swept along with the victim

    def test_eviction_sweep_respects_batch_limit(self):
        disk, pool = make_pool(capacity=3, writeback_batch=2)
        for pid in (1, 2, 3):
            new_leaf(pool, pid, [pid])
        order = spy_writes(disk)
        new_leaf(pool, 4, [4])
        assert order == [1, 2]  # victim + one follower, not the whole pool
        assert pool.is_dirty(3)


class TestPrefetch:
    def _seed_disk(self, disk, pids):
        for pid in pids:
            page = LeafPage(pid, 8)
            page.insert(Record(pid))
            disk.write(page)

    def test_prefetch_issues_one_batch_read(self):
        disk, pool = make_pool()
        self._seed_disk(disk, [2, 3, 4])
        assert pool.prefetch([4, 2, 3]) == 3
        assert disk.stats.batch_reads == 1
        assert disk.stats.batch_read_pages == 3
        assert pool.prefetched_pages == 3

    def test_prefetch_skips_resident_and_imageless_pages(self):
        disk, pool = make_pool()
        self._seed_disk(disk, [2, 3])
        pool.fetch(2)
        # 2 is resident, 9 has no stable image; only 3 is worth reading.
        assert pool.prefetch([2, 3, 9]) == 1
        assert pool.contains(3)
        assert not pool.contains(9)

    def test_demand_fetch_counts_prefetch_hit(self):
        disk, pool = make_pool()
        self._seed_disk(disk, [2])
        pool.prefetch([2])
        assert pool.prefetch_hits == 0
        pool.fetch(2)
        assert pool.prefetch_hits == 1
        pool.fetch(2)  # only the first demand counts
        assert pool.prefetch_hits == 1

    def test_evicting_undemanded_prefetch_counts_waste(self):
        disk, pool = make_pool(capacity=2)
        self._seed_disk(disk, [2, 3])
        pool.prefetch([2, 3])
        pool.fetch(2)
        new_leaf(pool, 5)  # evicts LRU frame 3, never demanded
        assert pool.prefetch_wasted == 1
        assert pool.prefetch_hits == 1

    def test_dirty_prefetched_frame_evicts_legally(self):
        """Dirtying a prefetched frame makes it a normal citizen: its WAL
        and careful-writing obligations hold when eviction pressure hits."""
        disk, pool = make_pool(capacity=2, writeback_batch=8)
        self._seed_disk(disk, [2, 4])
        pool.prefetch([2, 4])
        pool.fetch(2)
        pool.mark_dirty(2, lsn=9)
        new_leaf(pool, 6, [6])  # evicts 4, undemanded -> waste
        pool.add_write_dependency(source=2, dest=6)
        order = spy_writes(disk)
        new_leaf(pool, 7)  # overflow -> evict 2 (LRU, dirty) via sweep
        assert order.index(6) < order.index(2)
        assert disk.peek(2).keys() == [2]
        assert pool.prefetch_wasted == 1

    def test_prefetch_never_evicts_pinned_overflow(self):
        disk, pool = make_pool(capacity=2)
        self._seed_disk(disk, [1, 2, 3, 4])
        pool.fetch(1, pin=True)
        pool.fetch(2, pin=True)
        # No unpinned room at all: prefetch declines rather than raising.
        assert pool.prefetch([3, 4]) == 0

    def test_prefetch_window_capped_by_max_batch(self):
        disk, pool = make_pool()
        self._seed_disk(disk, [1, 2, 3, 4, 5])
        assert pool.prefetch([1, 2, 3, 4, 5], max_batch=2) == 2
        assert pool.contains(1) and pool.contains(2)
        assert not pool.contains(5)


class TestBatchReadContract:
    def test_batch_read_requires_ascending_ids(self):
        disk, _ = make_pool()
        for pid in (1, 2):
            disk.write(LeafPage(pid, 8))
        with pytest.raises(StorageError):
            disk.read_batch([2, 1])

    def test_batch_read_charges_one_seek_plus_sequential(self):
        disk, _ = make_pool()
        for pid in (10, 11, 12, 13):
            disk.write(LeafPage(pid, 8))
        disk.reset_read_position()
        before = disk.stats.snapshot()
        disk.read_batch([10, 11, 12, 13])
        spent = disk.stats.delta(before)
        assert spent["reads"] == 4
        assert spent["seeks"] == 1
        assert spent["sequential_reads"] == 3
        assert spent["read_cost"] == 10.0 + 3.0  # default seek cost + 3 seq
