"""Unit tests for the buffer pool: LRU, pins, WAL hook, careful writing."""

import pytest

from repro.errors import (
    BufferPoolError,
    CarefulWriteViolation,
    PagePinnedError,
)
from repro.storage.buffer import BufferPool
from repro.storage.disk import Extent, SimulatedDisk
from repro.storage.page import LeafPage, Record


class RecordingWAL:
    """WAL hook that records flush calls for assertions."""

    def __init__(self):
        self.flushed_lsn = 0
        self.calls = []

    def flush(self, up_to_lsn):
        self.calls.append(up_to_lsn)
        self.flushed_lsn = max(self.flushed_lsn, up_to_lsn)


def make_pool(capacity=4, careful=True, wal=None):
    disk = SimulatedDisk([Extent("leaf", 0, 64)])
    pool = BufferPool(disk, capacity, wal=wal, careful_writing=careful)
    return disk, pool


def new_leaf(pool, pid, keys=()):
    page = LeafPage(pid, 8)
    for k in keys:
        page.insert(Record(k))
    pool.put_new(page)
    return page


class TestBasics:
    def test_put_new_then_fetch_hits(self):
        _, pool = make_pool()
        new_leaf(pool, 0, [1])
        page = pool.fetch(0)
        assert page.keys() == [1]
        assert pool.hits == 1
        assert pool.misses == 0

    def test_fetch_miss_reads_from_disk(self):
        disk, pool = make_pool()
        disk.write(LeafPage(3, 8))
        page = pool.fetch(3)
        assert page.page_id == 3
        assert pool.misses == 1

    def test_put_new_duplicate_raises(self):
        _, pool = make_pool()
        new_leaf(pool, 0)
        with pytest.raises(BufferPoolError):
            new_leaf(pool, 0)

    def test_capacity_must_be_positive(self):
        disk = SimulatedDisk([Extent("leaf", 0, 4)])
        with pytest.raises(BufferPoolError):
            BufferPool(disk, 0)

    def test_mark_dirty_requires_buffered_page(self):
        _, pool = make_pool()
        with pytest.raises(BufferPoolError):
            pool.mark_dirty(5)

    def test_mark_dirty_stamps_page_lsn(self):
        _, pool = make_pool()
        page = new_leaf(pool, 0)
        pool.mark_dirty(0, lsn=17)
        assert page.page_lsn == 17
        assert pool.is_dirty(0)


class TestEviction:
    def test_lru_evicts_oldest_unpinned(self):
        disk, pool = make_pool(capacity=2)
        new_leaf(pool, 0)
        new_leaf(pool, 1)
        new_leaf(pool, 2)  # evicts page 0 (dirty -> written to disk first)
        assert not pool.contains(0)
        assert disk.has_image(0)
        assert pool.evictions == 1

    def test_fetch_refreshes_lru_position(self):
        _, pool = make_pool(capacity=2)
        new_leaf(pool, 0)
        new_leaf(pool, 1)
        pool.fetch(0)  # page 0 becomes most recent
        new_leaf(pool, 2)  # so page 1 is evicted
        assert pool.contains(0)
        assert not pool.contains(1)

    def test_pinned_pages_are_not_evicted(self):
        _, pool = make_pool(capacity=2)
        new_leaf(pool, 0)
        pool.pin(0)
        new_leaf(pool, 1)
        new_leaf(pool, 2)  # must evict 1, not pinned 0
        assert pool.contains(0)

    def test_all_pinned_raises(self):
        _, pool = make_pool(capacity=2)
        new_leaf(pool, 0)
        new_leaf(pool, 1)
        pool.pin(0)
        pool.pin(1)
        with pytest.raises(BufferPoolError):
            new_leaf(pool, 2)

    def test_unpin_below_zero_raises(self):
        _, pool = make_pool()
        new_leaf(pool, 0)
        with pytest.raises(BufferPoolError):
            pool.unpin(0)

    def test_fetch_with_pin(self):
        _, pool = make_pool()
        new_leaf(pool, 0)
        pool.fetch(0, pin=True)
        pool.unpin(0)  # balanced


class TestWAL:
    def test_flush_page_flushes_log_first(self):
        wal = RecordingWAL()
        _, pool = make_pool(wal=wal)
        new_leaf(pool, 0)
        pool.mark_dirty(0, lsn=99)
        pool.flush_page(0)
        assert wal.calls == [99]

    def test_eviction_also_respects_wal(self):
        wal = RecordingWAL()
        _, pool = make_pool(capacity=1, wal=wal)
        new_leaf(pool, 0)
        pool.mark_dirty(0, lsn=7)
        new_leaf(pool, 1)  # evicts page 0
        assert 7 in wal.calls

    def test_clean_page_flush_is_noop(self):
        wal = RecordingWAL()
        disk, pool = make_pool(wal=wal)
        disk.write(LeafPage(0, 8))
        pool.fetch(0)
        pool.flush_page(0)
        assert wal.calls == []
        assert disk.stats.writes == 1  # only the setup write


class TestCarefulWriting:
    def test_source_flush_writes_destination_first(self):
        disk, pool = make_pool()
        new_leaf(pool, 0, [1])  # source
        new_leaf(pool, 1)  # destination of a copy
        pool.add_write_dependency(source=0, dest=1)
        order = []
        original = disk.write

        def spy(page):
            order.append(page.page_id)
            original(page)

        disk.write = spy
        pool.flush_page(0)
        assert order == [1, 0]

    def test_drop_flushes_destinations_before_deallocation(self):
        disk, pool = make_pool()
        new_leaf(pool, 0, [1])
        new_leaf(pool, 1)
        pool.add_write_dependency(source=0, dest=1)
        pool.drop(0)
        assert disk.has_image(1)  # copied-out contents are durable
        assert not pool.contains(0)

    def test_dependency_chain_flushes_transitively(self):
        disk, pool = make_pool()
        new_leaf(pool, 0)
        new_leaf(pool, 1)
        new_leaf(pool, 2)
        pool.add_write_dependency(source=0, dest=1)
        pool.add_write_dependency(source=1, dest=2)
        pool.flush_page(0)
        assert disk.has_image(2)
        assert disk.has_image(1)
        assert disk.has_image(0)

    def test_dependency_cycle_detected(self):
        _, pool = make_pool()
        new_leaf(pool, 0)
        new_leaf(pool, 1)
        pool.add_write_dependency(source=0, dest=1)
        pool.add_write_dependency(source=1, dest=0)
        with pytest.raises(CarefulWriteViolation):
            pool.flush_page(0)

    def test_self_dependency_rejected(self):
        _, pool = make_pool()
        with pytest.raises(CarefulWriteViolation):
            pool.add_write_dependency(source=0, dest=0)

    def test_dependencies_cleared_once_destination_durable(self):
        _, pool = make_pool()
        new_leaf(pool, 0)
        new_leaf(pool, 1)
        pool.add_write_dependency(source=0, dest=1)
        pool.flush_page(1)
        assert pool.pending_dependencies(0) == set()

    def test_disabled_careful_writing_records_nothing(self):
        _, pool = make_pool(careful=False)
        pool.add_write_dependency(source=0, dest=1)
        assert pool.pending_dependencies(0) == set()

    def test_drop_pinned_page_raises(self):
        _, pool = make_pool()
        new_leaf(pool, 0)
        pool.pin(0)
        with pytest.raises(PagePinnedError):
            pool.drop(0)


class TestCrash:
    def test_crash_discards_buffered_state(self):
        disk, pool = make_pool()
        new_leaf(pool, 0, [1])
        pool.crash()
        assert not pool.contains(0)
        assert not disk.has_image(0)  # never flushed; data lost as expected

    def test_flush_all_writes_everything(self):
        disk, pool = make_pool()
        new_leaf(pool, 0)
        new_leaf(pool, 1)
        pool.flush_all()
        assert disk.has_image(0) and disk.has_image(1)
