"""Unit tests for the StorageManager facade."""

import pytest

from repro.config import TreeConfig
from repro.errors import StorageError
from repro.storage.page import PageKind, Record
from repro.storage.store import INTERNAL_EXTENT, LEAF_EXTENT, StorageManager


def make_store():
    return StorageManager(
        TreeConfig(
            leaf_capacity=4,
            internal_capacity=4,
            leaf_extent_pages=32,
            internal_extent_pages=16,
        )
    )


class TestAllocation:
    def test_leaf_and_internal_extents_are_separate(self):
        store = make_store()
        leaf = store.allocate_leaf()
        internal = store.allocate_internal(level=1)
        assert store.disk.extent_of(leaf.page_id).name == LEAF_EXTENT
        assert store.disk.extent_of(internal.page_id).name == INTERNAL_EXTENT

    def test_allocate_specific_leaf(self):
        store = make_store()
        leaf = store.allocate_leaf(5)
        assert leaf.page_id == 5
        assert not store.free_map.is_free(5)

    def test_internal_pages_carry_their_level(self):
        store = make_store()
        page = store.allocate_internal(level=3)
        assert store.get_internal(page.page_id).level == 3

    def test_deallocate_returns_page(self):
        store = make_store()
        leaf = store.allocate_leaf()
        store.flush_all()
        store.deallocate(leaf.page_id)
        assert store.free_map.is_free(leaf.page_id)
        assert not store.disk.has_image(leaf.page_id)


class TestTypedAccess:
    def test_get_leaf_rejects_internal(self):
        store = make_store()
        page = store.allocate_internal(level=1)
        with pytest.raises(StorageError):
            store.get_leaf(page.page_id)

    def test_get_internal_rejects_leaf(self):
        store = make_store()
        page = store.allocate_leaf()
        with pytest.raises(StorageError):
            store.get_internal(page.page_id)

    def test_get_returns_buffered_object(self):
        store = make_store()
        leaf = store.allocate_leaf()
        leaf.insert(Record(1))
        again = store.get(leaf.page_id)
        assert again is leaf  # the same in-pool object


class TestCrashRebuild:
    def test_rebuild_free_map_matches_stable_images(self):
        store = make_store()
        kept = store.allocate_leaf()
        lost = store.allocate_leaf()
        store.buffer.flush_page(kept.page_id)
        # `lost` never reaches the disk.
        store.crash()
        store.rebuild_free_map_from_disk()
        assert not store.free_map.is_free(kept.page_id)
        assert store.free_map.is_free(lost.page_id)

    def test_rebuilt_map_never_hands_out_live_pages(self):
        store = make_store()
        pages = [store.allocate_leaf() for _ in range(5)]
        store.flush_all()
        store.crash()
        store.rebuild_free_map_from_disk()
        fresh = store.allocate_leaf()
        assert fresh.page_id not in {p.page_id for p in pages}

    def test_force_writes_specific_pages(self):
        store = make_store()
        a = store.allocate_leaf()
        b = store.allocate_leaf()
        store.force([a.page_id])
        assert store.disk.has_image(a.page_id)
        assert not store.disk.has_image(b.page_id)
