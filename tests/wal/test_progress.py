"""Unit tests for the reorg progress table (paper section 5)."""

import pytest

from repro.errors import ReorgError
from repro.wal.progress import NO_KEY_YET, ReorgProgressTable


class TestLifecycle:
    def test_initial_state_has_only_lk(self):
        table = ReorgProgressTable()
        assert table.largest_finished_key == NO_KEY_YET
        assert not table.unit_in_flight
        assert table.begin_lsn == 0

    def test_unit_start_records_begin_lsn(self):
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        assert table.unit_in_flight
        assert table.begin_lsn == 10
        assert table.recent_lsn == 10
        assert table.unit_id == 1

    def test_logging_advances_recent_lsn(self):
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        table.unit_logged(11)
        table.unit_logged(15)
        assert table.recent_lsn == 15
        assert table.begin_lsn == 10

    def test_recent_lsn_must_advance(self):
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        with pytest.raises(ReorgError):
            table.unit_logged(10)

    def test_finish_advances_lk_and_clears_lsns(self):
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        table.unit_finished(largest_key=500)
        assert table.largest_finished_key == 500
        assert not table.unit_in_flight

    def test_lk_never_regresses(self):
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        table.unit_finished(largest_key=500)
        table.unit_started(2, begin_lsn=20)
        table.unit_finished(largest_key=400)
        assert table.largest_finished_key == 500

    def test_duplicate_unit_rejected(self):
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        with pytest.raises(ReorgError):
            table.unit_started(1, begin_lsn=20)

    def test_parallel_units_tracked_independently(self):
        """The parallel-reorganization extension: one row per unit."""
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        table.unit_started(2, begin_lsn=12)
        assert table.units_in_flight == [1, 2]
        assert table.begin_lsn == 10  # low-water over in-flight units
        with pytest.raises(ReorgError):
            _ = table.recent_lsn  # ambiguous with two units
        table.unit_logged(15, unit_id=2)
        assert table.recent_lsn_of(2) == 15
        assert table.recent_lsn_of(1) == 10
        table.unit_finished(100, unit_id=1)
        assert table.units_in_flight == [2]
        assert table.recent_lsn == 15  # single again: unambiguous
        snap = table.snapshot()
        assert snap.units == ((2, 12, 15),)
        fresh = ReorgProgressTable()
        fresh.restore(snap)
        assert fresh.recent_lsn_of(2) == 15
        assert fresh.largest_finished_key == 100

    def test_abort_clears_without_advancing_lk(self):
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        table.unit_aborted()
        assert table.largest_finished_key == NO_KEY_YET
        assert not table.unit_in_flight

    def test_lifecycle_calls_require_in_flight_unit(self):
        table = ReorgProgressTable()
        with pytest.raises(ReorgError):
            table.unit_logged(5)
        with pytest.raises(ReorgError):
            table.unit_finished(1)
        with pytest.raises(ReorgError):
            table.unit_aborted()


class TestLowWaterAndSnapshot:
    def test_low_water_uses_begin_lsn_when_in_flight(self):
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        assert table.low_water_lsn(txn_low_water=50) == 10
        assert table.low_water_lsn(txn_low_water=5) == 5

    def test_low_water_without_unit_is_txn_low_water(self):
        table = ReorgProgressTable()
        assert table.low_water_lsn(txn_low_water=50) == 50

    def test_snapshot_restore_round_trip(self):
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        table.unit_logged(12)
        snap = table.snapshot()
        fresh = ReorgProgressTable()
        fresh.restore(snap)
        assert fresh.begin_lsn == 10
        assert fresh.recent_lsn == 12
        assert fresh.unit_in_flight

    def test_crash_clears_table(self):
        table = ReorgProgressTable()
        table.unit_started(1, begin_lsn=10)
        table.crash()
        assert not table.unit_in_flight
        assert table.largest_finished_key == NO_KEY_YET
