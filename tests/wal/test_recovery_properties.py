"""Property-based crash-recovery tests.

The master invariant: for any committed workload and any crash point, after
recovery (plus forward recovery of any pending reorganization) the tree
contains exactly the committed records and validates structurally —
regardless of buffer-pool size (i.e. of which pages happened to be on disk).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import LogCrashInjector, crash_recover
from repro.storage.page import Record
from repro.txn.transaction import Transaction
from repro.wal.records import CommitRecord, EndRecord

KEYS = st.integers(min_value=0, max_value=500)

OPS = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), KEYS),
    min_size=5,
    max_size=80,
)


def fresh_db(buffer_pool_pages=16):
    return Database(
        TreeConfig(
            leaf_capacity=4,
            internal_capacity=4,
            leaf_extent_pages=256,
            internal_extent_pages=128,
            buffer_pool_pages=buffer_pool_pages,
        )
    )


def committed(db, tree, op, key, model):
    txn = Transaction()
    if op == "insert" and key not in model:
        tree.insert(Record(key, f"v{key}"), txn)
        model[key] = f"v{key}"
    elif op == "delete" and key in model:
        tree.delete(key, txn)
        del model[key]
    else:
        return
    db.log.append(CommitRecord(txn_id=txn.txn_id, prev_lsn=txn.last_lsn))
    db.log.append(EndRecord(txn_id=txn.txn_id))


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS, pool=st.sampled_from([8, 16, 64]))
def test_committed_work_survives_crash(ops, pool):
    db = fresh_db(buffer_pool_pages=pool)
    tree = db.create_tree()
    model: dict[int, str] = {}
    for op, key in ops:
        committed(db, tree, op, key, model)
    db.log.flush()
    db.crash()
    db.recover()
    tree = db.tree()
    tree.validate()
    assert sorted(r.key for r in tree.items()) == sorted(model)
    for key, payload in list(model.items())[:10]:
        assert tree.search(key).payload == payload


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=OPS,
    loser_keys=st.lists(KEYS, min_size=1, max_size=10, unique=True),
)
def test_uncommitted_work_is_undone(ops, loser_keys):
    db = fresh_db()
    tree = db.create_tree()
    model: dict[int, str] = {}
    for op, key in ops:
        committed(db, tree, op, key, model)
    loser = Transaction()
    inserted = []
    for key in loser_keys:
        if key not in model and key not in inserted:
            tree.insert(Record(key, "loser"), loser)
            inserted.append(key)
    db.log.flush()
    db.crash()
    report = db.recover()
    tree = db.tree()
    tree.validate()
    if inserted:
        assert loser.txn_id in report.undone_txns
    assert sorted(r.key for r in tree.items()) == sorted(model)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    crash_after=st.integers(min_value=2, max_value=120),
    keep_every=st.sampled_from([3, 4]),
)
def test_reorg_crash_anywhere_recovers_to_same_records(crash_after, keep_every):
    """Crash a reorganization at an arbitrary log offset; after recovery +
    forward recovery the record set is exactly the pre-reorg set."""
    db = fresh_db(buffer_pool_pages=32)
    tree = db.bulk_load_tree(
        [Record(k, f"v{k}") for k in range(160)], leaf_fill=1.0,
        internal_fill=0.6,
    )
    for k in range(160):
        if k % keep_every != 0:
            tree.delete(k)
    db.flush()
    db.checkpoint()
    expected = sorted(r.key for r in tree.items())
    reorg = Reorganizer(db, tree, ReorgConfig(stable_point_interval=2))
    crashed = False
    try:
        with LogCrashInjector(db.log, after_records=crash_after):
            reorg.run()
    except CrashPoint:
        crashed = True
    if crashed:
        recovery = crash_recover(db)
        fresh = Reorganizer(db, db.tree(), ReorgConfig(stable_point_interval=2))
        fresh.forward_recover(recovery)
    tree = db.tree()
    tree.validate()
    assert sorted(r.key for r in tree.items()) == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(crash_points=st.lists(
    st.integers(min_value=2, max_value=40), min_size=2, max_size=4,
))
def test_repeated_crashes_converge(crash_points):
    """Crash, recover, resume, crash again ... the system always converges
    to a valid tree with the full record set."""
    db = fresh_db(buffer_pool_pages=32)
    tree = db.bulk_load_tree(
        [Record(k) for k in range(120)], leaf_fill=1.0, internal_fill=0.6
    )
    for k in range(120):
        if k % 3 != 0:
            tree.delete(k)
    db.flush()
    db.checkpoint()
    expected = sorted(r.key for r in tree.items())
    config = ReorgConfig(stable_point_interval=2)
    for crash_after in crash_points:
        reorg = Reorganizer(db, db.tree(), config)
        try:
            with LogCrashInjector(db.log, after_records=crash_after):
                reorg.run()
            break  # finished without crashing
        except CrashPoint:
            recovery = crash_recover(db)
            Reorganizer(db, db.tree(), config).forward_recover(recovery)
    tree = db.tree()
    tree.validate()
    assert sorted(r.key for r in tree.items()) == expected
