"""Integration tests for redo/undo crash recovery (no reorganizer yet)."""

import pytest

from repro.config import TreeConfig
from repro.db import Database
from repro.storage.page import Record
from repro.txn.transaction import Transaction
from repro.wal.records import CommitRecord, EndRecord


def small_db(**kwargs):
    defaults = dict(
        leaf_capacity=4,
        internal_capacity=4,
        leaf_extent_pages=256,
        internal_extent_pages=128,
        buffer_pool_pages=64,
    )
    defaults.update(kwargs)
    return Database(TreeConfig(**defaults))


def committed_insert(db, tree, record):
    txn = Transaction()
    tree.insert(record, txn)
    db.log.append(CommitRecord(txn_id=txn.txn_id, prev_lsn=txn.last_lsn))
    db.log.append(EndRecord(txn_id=txn.txn_id))
    return txn


class TestRedo:
    def test_committed_inserts_survive_crash(self):
        db = small_db()
        tree = db.create_tree()
        for key in range(50):
            committed_insert(db, tree, Record(key, f"v{key}"))
        db.log.flush()  # commit forces the log
        db.crash()
        db.recover()
        tree = db.tree()
        tree.validate()
        assert [r.key for r in tree.items()] == list(range(50))

    def test_unflushed_log_tail_is_lost(self):
        db = small_db()
        tree = db.create_tree()
        committed_insert(db, tree, Record(1))
        db.log.flush()
        tree.insert(Record(2))  # never flushed
        db.crash()
        db.recover()
        tree = db.tree()
        assert tree.search(1) is not None
        assert tree.search(2) is None

    def test_redo_is_idempotent_across_double_crash(self):
        db = small_db()
        tree = db.create_tree()
        for key in range(30):
            committed_insert(db, tree, Record(key))
        db.log.flush()
        db.crash()
        db.recover()
        db.crash()
        db.recover()
        tree = db.tree()
        tree.validate()
        assert tree.record_count() == 30

    def test_checkpoint_bounds_redo_work(self):
        db = small_db()
        tree = db.create_tree()
        for key in range(30):
            committed_insert(db, tree, Record(key))
        db.checkpoint()
        for key in range(30, 40):
            committed_insert(db, tree, Record(key))
        db.log.flush()
        db.crash()
        report = db.recover()
        # Only the post-checkpoint suffix is scanned, not the whole log.
        assert report.redo_scanned < len(db.log) / 2
        assert db.tree().record_count() == 40

    def test_splits_survive_crash(self):
        db = small_db(leaf_capacity=3, internal_capacity=3)
        tree = db.create_tree()
        for key in range(100):
            committed_insert(db, tree, Record(key, "x" * 5))
        db.log.flush()
        db.crash()
        db.recover()
        tree = db.tree()
        tree.validate()
        assert tree.height() >= 3
        assert tree.record_count() == 100

    def test_deletes_and_free_at_empty_survive_crash(self):
        db = small_db(leaf_capacity=3, internal_capacity=3)
        tree = db.create_tree()
        for key in range(60):
            committed_insert(db, tree, Record(key))
        for key in range(0, 30):
            txn = Transaction()
            tree.delete(key, txn)
            db.log.append(CommitRecord(txn_id=txn.txn_id, prev_lsn=txn.last_lsn))
        db.log.flush()
        db.crash()
        db.recover()
        tree = db.tree()
        tree.validate()
        assert [r.key for r in tree.items()] == list(range(30, 60))

    def test_dirty_pages_flushed_by_eviction_roll_forward(self):
        """Pages written mid-run have page LSNs; redo must skip them."""
        db = small_db(buffer_pool_pages=8)  # tiny pool forces evictions
        tree = db.create_tree()
        for key in range(80):
            committed_insert(db, tree, Record(key))
        db.log.flush()
        db.crash()
        db.recover()
        assert db.tree().record_count() == 80


class TestUndo:
    def test_incomplete_transaction_rolled_back(self):
        db = small_db()
        tree = db.create_tree()
        committed_insert(db, tree, Record(1))
        loser = Transaction()
        tree.insert(Record(2), loser)  # never commits
        db.log.flush()
        db.crash()
        report = db.recover()
        assert loser.txn_id in report.undone_txns
        tree = db.tree()
        assert tree.search(1) is not None
        assert tree.search(2) is None

    def test_incomplete_delete_rolled_back(self):
        db = small_db()
        tree = db.create_tree()
        committed_insert(db, tree, Record(1, "keepme"))
        loser = Transaction()
        tree.delete(1, loser)
        db.log.flush()
        db.crash()
        db.recover()
        assert db.tree().search(1).payload == "keepme"

    def test_multi_op_transaction_fully_undone(self):
        db = small_db()
        tree = db.create_tree()
        loser = Transaction()
        for key in range(10):
            tree.insert(Record(key), loser)
        db.log.flush()
        db.crash()
        db.recover()
        assert db.tree().record_count() == 0

    def test_undo_writes_clrs_so_second_crash_is_safe(self):
        db = small_db()
        tree = db.create_tree()
        loser = Transaction()
        tree.insert(Record(7), loser)
        db.log.flush()
        db.crash()
        db.recover()
        db.log.flush()
        db.crash()
        report = db.recover()
        # The transaction ended during the first recovery; the second one
        # must not try to undo it again.
        assert loser.txn_id not in report.undone_txns
        assert db.tree().search(7) is None

    def test_committed_txn_not_undone_even_with_active_entry(self):
        db = small_db()
        tree = db.create_tree()
        txn = Transaction()
        tree.insert(Record(5), txn)
        db.log.append(CommitRecord(txn_id=txn.txn_id, prev_lsn=txn.last_lsn))
        db.log.flush()  # commit record stable, no End record
        db.crash()
        report = db.recover()
        assert txn.txn_id not in report.undone_txns
        assert db.tree().search(5) is not None

    def test_undo_disabled_leaves_changes(self):
        db = small_db()
        tree = db.create_tree()
        loser = Transaction()
        tree.insert(Record(2), loser)
        db.log.flush()
        db.crash()
        db.recover(undo=False)
        assert db.tree().search(2) is not None


class TestMetaAndFreeMap:
    def test_root_pointer_survives(self):
        db = small_db(leaf_capacity=3, internal_capacity=3)
        tree = db.create_tree()
        for key in range(50):
            committed_insert(db, tree, Record(key))
        root_before = tree.root_id
        db.log.flush()
        db.crash()
        db.recover()
        assert db.tree().root_id == root_before

    def test_free_map_rebuilt_consistently(self):
        db = small_db(leaf_capacity=3, internal_capacity=3)
        tree = db.create_tree()
        for key in range(60):
            committed_insert(db, tree, Record(key))
        db.log.flush()
        db.crash()
        db.recover()
        tree = db.tree()
        tree.validate()  # checks reachable pages are allocated
        # Allocating new pages must not hand out pages the tree uses.
        leaf_ids = set(tree.leaf_ids_in_key_order())
        new_leaf = db.store.allocate_leaf()
        assert new_leaf.page_id not in leaf_ids
