"""Unit tests for the log manager and record byte accounting."""

import pytest

from repro.errors import LogError
from repro.storage.page import Record
from repro.wal.log import LogManager
from repro.wal.records import (
    CheckpointRecord,
    CommitRecord,
    LeafInsertRecord,
    ReorgBeginRecord,
    ReorgMoveOutRecord,
    ReorgSwapRecord,
    ReorgUnitType,
)


class TestAppendFlush:
    def test_lsns_are_monotonic_from_one(self):
        log = LogManager()
        first = log.append(CommitRecord(txn_id=1))
        second = log.append(CommitRecord(txn_id=2))
        assert (first, second) == (1, 2)
        assert log.last_lsn == 2
        assert log.next_lsn == 3

    def test_flush_advances_stable_boundary(self):
        log = LogManager()
        log.append(CommitRecord(txn_id=1))
        log.append(CommitRecord(txn_id=2))
        assert log.flushed_lsn == 0
        log.flush(1)
        assert log.flushed_lsn == 1
        log.flush()
        assert log.flushed_lsn == 2

    def test_flush_beyond_end_clamps(self):
        log = LogManager()
        log.append(CommitRecord(txn_id=1))
        log.flush(99)
        assert log.flushed_lsn == 1

    def test_flush_is_monotonic(self):
        log = LogManager()
        log.append(CommitRecord(txn_id=1))
        log.append(CommitRecord(txn_id=2))
        log.flush(2)
        log.flush(1)  # no-op backwards
        assert log.flushed_lsn == 2


class TestGroupCommit:
    def _fill(self, log, n):
        for i in range(n):
            log.append(CommitRecord(txn_id=i))

    def test_window_overadvances_the_boundary(self):
        log = LogManager(group_commit_window=4)
        self._fill(log, 10)
        log.flush(2)
        assert log.flushed_lsn == 6  # request + window
        assert log.stats.flushes == 1

    def test_window_clamps_at_log_end(self):
        log = LogManager(group_commit_window=100)
        self._fill(log, 3)
        log.flush(1)
        assert log.flushed_lsn == 3

    def test_covered_request_is_absorbed(self):
        log = LogManager(group_commit_window=4)
        self._fill(log, 10)
        log.flush(2)  # stable through 6
        log.flush(5)
        log.flush(6)
        assert log.stats.flushes == 1
        assert log.stats.absorbed_flushes == 2
        log.flush(7)  # outside the group: a real flush
        assert log.stats.flushes == 2
        assert log.flushed_lsn == 10  # clamped 7 + 4

    def test_vacuous_request_not_counted_absorbed(self):
        log = LogManager(group_commit_window=4)
        self._fill(log, 2)
        log.flush(0)  # a never-logged page's page_lsn
        assert log.stats.absorbed_flushes == 0

    def test_window_off_counts_nothing(self):
        log = LogManager()
        self._fill(log, 4)
        log.flush(2)
        log.flush(1)  # covered, but no group window -> plain no-op
        assert log.stats.flushes == 1
        assert log.stats.absorbed_flushes == 0

    def test_negative_window_rejected(self):
        with pytest.raises(LogError):
            LogManager(group_commit_window=-1)

    def test_crash_keeps_overadvanced_records(self):
        """Group commit makes MORE records durable, never fewer."""
        log = LogManager(group_commit_window=4)
        self._fill(log, 10)
        log.flush(2)
        log.crash()
        assert log.last_lsn == 6


class TestCrash:
    def test_crash_drops_unflushed_tail(self):
        log = LogManager()
        log.append(CommitRecord(txn_id=1))
        log.flush()
        log.append(CommitRecord(txn_id=2))
        log.crash()
        assert log.last_lsn == 1
        assert len(log) == 1

    def test_crash_forgets_unflushed_checkpoint(self):
        log = LogManager()
        log.append(CheckpointRecord())
        log.flush()
        log.append(CheckpointRecord())
        assert log.last_checkpoint_lsn == 2
        log.crash()
        assert log.last_checkpoint_lsn == 1

    def test_lsns_continue_after_crash(self):
        log = LogManager()
        log.append(CommitRecord(txn_id=1))
        log.flush()
        log.append(CommitRecord(txn_id=2))
        log.crash()
        lsn = log.append(CommitRecord(txn_id=3))
        assert lsn == 2  # reuses the truncated position


class TestScan:
    def test_get_and_range_scan(self):
        log = LogManager()
        for txn in (1, 2, 3):
            log.append(CommitRecord(txn_id=txn))
        assert log.get(2).txn_id == 2
        assert [r.txn_id for r in log.records_from(2)] == [2, 3]

    def test_get_out_of_range_raises(self):
        log = LogManager()
        with pytest.raises(LogError):
            log.get(1)

    def test_walk_chain_follows_prev_lsn(self):
        log = LogManager()
        first = log.append(LeafInsertRecord(txn_id=5, prev_lsn=0))
        second = log.append(LeafInsertRecord(txn_id=5, prev_lsn=first))
        third = log.append(CommitRecord(txn_id=5, prev_lsn=second))
        chain = [r.lsn for r in log.walk_chain(third)]
        assert chain == [third, second, first]


class TestByteAccounting:
    def test_insert_record_counts_payload(self):
        small = LeafInsertRecord(txn_id=1, page_id=0, record=Record(1, ""))
        big = LeafInsertRecord(txn_id=1, page_id=0, record=Record(1, "x" * 100))
        assert big.log_bytes() - small.log_bytes() == 100

    def test_keys_only_move_is_smaller_than_full_contents(self):
        records = tuple(Record(k, "payload" * 10) for k in range(10))
        keys = tuple(r.key for r in records)
        with_contents = ReorgMoveOutRecord(
            unit_id=1, org_page=1, dest_page=2, keys=keys, records=records
        )
        keys_only = ReorgMoveOutRecord(
            unit_id=1, org_page=1, dest_page=2, keys=keys
        )
        assert keys_only.log_bytes() < with_contents.log_bytes()

    def test_swap_record_carries_one_full_page(self):
        records = tuple(Record(k, "v" * 20) for k in range(5))
        swap = ReorgSwapRecord(
            unit_id=1, page_a=1, page_b=2,
            records_a=records, keys_b=(9, 10),
        )
        # Full contents of A dominate the size.
        assert swap.log_bytes() > sum(8 + 20 for _ in records)

    def test_stats_track_reorg_categories(self):
        log = LogManager()
        log.append(CommitRecord(txn_id=1))
        log.append(
            ReorgBeginRecord(
                unit_id=1, unit_type=ReorgUnitType.COMPACT,
                base_pages=(10,), leaf_pages=(1, 2),
            )
        )
        log.append(ReorgMoveOutRecord(unit_id=1, org_page=1, dest_page=2, keys=(5,)))
        assert log.stats.records_appended == 3
        assert log.stats.reorg_records == 2
        assert log.stats.move_bytes > 0
        assert log.stats.bytes_appended > log.stats.reorg_bytes

    def test_stats_reset(self):
        log = LogManager()
        log.append(CommitRecord(txn_id=1))
        log.stats.reset()
        assert log.stats.records_appended == 0
        assert log.stats.bytes_appended == 0
