"""Direct tests of the do/redo interpreter (wal/apply.py)."""

import pytest

from repro.errors import LogError
from repro.storage.page import InternalPage, LeafPage, Record
from repro.wal.apply import apply_record, is_redoable
from repro.wal.records import (
    AllocRecord,
    BaseEntryInsertRecord,
    BaseEntryUpdateRecord,
    CommitRecord,
    FreeRecord,
    InternalFormatRecord,
    LeafDeleteRecord,
    LeafFormatRecord,
    LeafInsertRecord,
    ReorgModifyRecord,
    ReorgMoveInRecord,
    ReorgMoveOutRecord,
    ReorgSwapRecord,
)

from tests.conftest import make_env


def logged(log, record):
    log.append(record)
    return record


class TestDoEqualsRedo:
    def test_leaf_insert_do_then_redo_is_idempotent(self):
        store, log = make_env()
        page = store.allocate_leaf()
        record = logged(log, LeafInsertRecord(page_id=page.page_id, record=Record(5, "v")))
        apply_record(store, record)
        assert store.get_leaf(page.page_id).contains(5)
        # Redo skips: the page LSN already covers the record.
        apply_record(store, record, redo=True)
        assert store.get_leaf(page.page_id).num_items == 1

    def test_redo_applies_when_page_is_stale(self):
        store, log = make_env()
        page = store.allocate_leaf()
        store.flush_all()  # stale image with page_lsn 0
        record = logged(log, LeafInsertRecord(page_id=page.page_id, record=Record(5)))
        apply_record(store, record)
        store.crash()  # lose the in-memory application
        apply_record(store, record, redo=True)
        assert store.get_leaf(page.page_id).contains(5)

    def test_format_records_recreate_missing_pages(self):
        store, log = make_env()
        pid = store.free_map.allocate("leaf")  # allocated, never materialized
        record = logged(
            log, LeafFormatRecord(page_id=pid, records=(Record(1), Record(2)))
        )
        apply_record(store, record, redo=True)
        assert store.get_leaf(pid).keys() == [1, 2]
        assert not store.free_map.is_free(pid)

    def test_internal_format_preserves_low_mark(self):
        store, log = make_env()
        page = store.allocate_internal(level=1)
        record = logged(
            log,
            InternalFormatRecord(
                page_id=page.page_id, level=1, entries=((10, 1), (20, 2)),
                low_mark=10,
            ),
        )
        apply_record(store, record)
        got = store.get_internal(page.page_id)
        assert got.low_mark == 10
        assert got.entries == ((10, 1), (20, 2))

    def test_non_redoable_record_raises(self):
        store, log = make_env()
        with pytest.raises(LogError):
            apply_record(store, CommitRecord(txn_id=1))
        assert not is_redoable(CommitRecord(txn_id=1))


class TestMoveStash:
    def setup_pages(self):
        store, log = make_env()
        src = store.allocate_leaf()
        for k in (1, 2, 3):
            src.insert(Record(k, f"v{k}"))
        dst = store.allocate_leaf()
        return store, log, src, dst

    def test_keys_only_move_threads_records_through_stash(self):
        store, log, src, dst = self.setup_pages()
        stash = {}
        out = logged(log, ReorgMoveOutRecord(
            unit_id=1, org_page=src.page_id, dest_page=dst.page_id,
            keys=(1, 2, 3),
        ))
        apply_record(store, out, stash=stash)
        assert src.is_empty
        assert stash[out.lsn][0].payload == "v1"
        into = logged(log, ReorgMoveInRecord(
            unit_id=1, org_page=src.page_id, dest_page=dst.page_id,
            keys=(1, 2, 3), move_out_lsn=out.lsn,
        ))
        apply_record(store, into, stash=stash)
        assert dst.keys() == [1, 2, 3]
        assert dst.get(2).payload == "v2"
        assert stash == {}

    def test_move_in_without_stash_raises_in_normal_mode(self):
        store, log, src, dst = self.setup_pages()
        into = logged(log, ReorgMoveInRecord(
            unit_id=1, org_page=src.page_id, dest_page=dst.page_id,
            keys=(1,), move_out_lsn=999,
        ))
        with pytest.raises(LogError):
            apply_record(store, into, stash={})

    def test_move_in_superseded_during_redo_is_skipped(self):
        """A keys-only MoveIn whose dest was freed later in the log must be
        skipped during redo, not resurrected."""
        store, log, src, dst = self.setup_pages()
        dest_pid = dst.page_id
        into = logged(log, ReorgMoveInRecord(
            unit_id=1, org_page=src.page_id, dest_page=dest_pid,
            keys=(1,), move_out_lsn=999,
        ))
        store.deallocate(dest_pid)  # freed later; no stable image
        apply_record(store, into, redo=True, stash={})
        assert store.free_map.is_free(dest_pid)


class TestSwapRedo:
    def test_swap_with_careful_writing_uses_peer_page(self):
        store, log = make_env(careful_writing=True)
        a = store.allocate_leaf()
        b = store.allocate_leaf()
        a.replace_all([Record(1, "a1")])
        b.replace_all([Record(9, "b9")])
        swap = logged(log, ReorgSwapRecord(
            unit_id=1, page_a=a.page_id, page_b=b.page_id,
            records_a=(Record(1, "a1"),), keys_b=(9,),
        ))
        apply_record(store, swap)
        assert store.get_leaf(a.page_id).keys() == [9]
        assert store.get_leaf(b.page_id).keys() == [1]

    def test_swap_redo_half_applied(self):
        """A was flushed post-swap, B was not: redo must fix only B."""
        store, log = make_env(careful_writing=True)
        a = store.allocate_leaf()
        b = store.allocate_leaf()
        a.replace_all([Record(1, "a1")])
        b.replace_all([Record(9, "b9")])
        store.flush_all()
        swap = logged(log, ReorgSwapRecord(
            unit_id=1, page_a=a.page_id, page_b=b.page_id,
            records_a=(Record(1, "a1"),), keys_b=(9,),
        ))
        apply_record(store, swap)
        store.buffer.flush_page(a.page_id)  # the A-before-B write order
        # Crash: B's post-swap image is lost.
        store.crash()
        apply_record(store, swap, redo=True)
        assert store.get_leaf(a.page_id).keys() == [9]
        assert store.get_leaf(b.page_id).keys() == [1]

    def test_swap_redo_without_careful_writing_uses_logged_b(self):
        store, log = make_env(careful_writing=False)
        a = store.allocate_leaf()
        b = store.allocate_leaf()
        a.replace_all([Record(1, "a1")])
        b.replace_all([Record(9, "b9")])
        store.flush_all()
        swap = logged(log, ReorgSwapRecord(
            unit_id=1, page_a=a.page_id, page_b=b.page_id,
            records_a=(Record(1, "a1"),), keys_b=(9,),
            records_b=(Record(9, "b9"),),
        ))
        apply_record(store, swap)
        store.crash()  # neither write reached disk
        apply_record(store, swap, redo=True)
        assert store.get_leaf(a.page_id).keys() == [9]
        assert store.get_leaf(b.page_id).keys() == [1]


class TestStructuralRecords:
    def test_modify_insert_and_remove_forms(self):
        store, log = make_env()
        base = store.allocate_internal(level=1)
        base.insert_entry(10, 1)
        # Insert form: org_child == -1.
        record = logged(log, ReorgModifyRecord(
            unit_id=1, base_page=base.page_id, org_key=0, org_child=-1,
            new_key=20, new_child=2,
        ))
        apply_record(store, record)
        assert store.get_internal(base.page_id).entries == ((10, 1), (20, 2))
        # Remove form: new_child == -1.
        record = logged(log, ReorgModifyRecord(
            unit_id=1, base_page=base.page_id, org_key=10, org_child=1,
            new_key=0, new_child=-1,
        ))
        apply_record(store, record)
        assert store.get_internal(base.page_id).entries == ((20, 2),)

    def test_free_redo_respects_reincarnation(self):
        """A FreeRecord must not erase a page image written by a *later*
        incarnation of the same page id."""
        store, log = make_env()
        page = store.allocate_leaf()
        pid = page.page_id
        free = logged(log, FreeRecord(page_id=pid))
        # Reincarnation: realloc + format with a higher LSN, flushed.
        store.deallocate(pid)
        store.allocate_leaf(pid)
        fmt = logged(log, LeafFormatRecord(page_id=pid, records=(Record(7),)))
        apply_record(store, fmt)
        store.flush_all()
        apply_record(store, free, redo=True)
        assert not store.free_map.is_free(pid)
        assert store.get_leaf(pid).keys() == [7]

    def test_base_entry_update_redo(self):
        store, log = make_env()
        base = store.allocate_internal(level=1)
        base.insert_entry(10, 1)
        store.flush_all()
        record = logged(log, BaseEntryUpdateRecord(
            page_id=base.page_id, org_key=10, org_child=1,
            new_key=5, new_child=1,
        ))
        apply_record(store, record)
        store.crash()
        apply_record(store, record, redo=True)
        assert store.get_internal(base.page_id).entries == ((5, 1),)

    def test_alloc_redo_marks_page_allocated(self):
        store, log = make_env()
        pid = 3
        record = logged(log, AllocRecord(page_id=pid, kind="leaf"))
        assert store.free_map.is_free(pid)
        apply_record(store, record, redo=True)
        assert not store.free_map.is_free(pid)
