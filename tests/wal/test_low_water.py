"""The log low-water mark (section 5) and log truncation.

"(This information, together with the transaction low-water mark [GR93],
can be used to calculate the low-water mark for system recovery — i.e.,
the lowest LSN that must be kept available for recovery.)"
"""

import pytest

from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint, LogCorruptionError
from repro.reorg.reorganizer import Reorganizer
from repro.sim.crash import LogCrashInjector, crash_recover
from repro.storage.page import Record


def sparse_db():
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=512,
            internal_extent_pages=256,
            buffer_pool_pages=128,
        )
    )
    tree = db.bulk_load_tree([Record(k, "v") for k in range(400)])
    for k in range(400):
        if k % 4 != 0:
            tree.delete(k)
    db.flush()
    db.checkpoint()
    return db


class TestTruncation:
    def test_truncate_below_checkpoint_is_safe(self):
        db = sparse_db()
        tree = db.tree()
        for key in range(1000, 1020):
            tree.insert(Record(key))
        checkpoint_lsn = db.checkpoint()
        # No unit in flight and no active txns: the low-water mark is the
        # checkpoint itself.
        low_water = db.progress.low_water_lsn(txn_low_water=checkpoint_lsn)
        discarded = db.log.truncate(low_water)
        assert discarded > 0
        db.log.flush()
        db.crash()
        db.recover()
        tree = db.tree()
        tree.validate()
        assert tree.search(1005) is not None

    def test_in_flight_unit_pins_the_log(self):
        """A unit's BEGIN LSN lowers the low-water mark; truncating up to
        it keeps forward recovery possible."""
        db = sparse_db()
        reorg = Reorganizer(db, db.tree(), ReorgConfig())
        crashed = False
        try:
            with LogCrashInjector(db.log, after_records=120):
                reorg.run_pass1()
        except CrashPoint:
            crashed = True
        assert crashed
        db.crash()
        # Restore the progress table first (as the checkpoint would), then
        # compute the low-water mark and reclaim everything below it.
        report = db.recover(undo=False)
        if report.pending_unit is None:
            pytest.skip("crash fell between units for this workload")
        begin_lsn = report.pending_unit.records[0].lsn
        low_water = db.progress.low_water_lsn(
            txn_low_water=db.log.last_checkpoint_lsn
        )
        assert low_water <= begin_lsn
        db.log.truncate(low_water)
        # Forward recovery still has the whole unit chain available.
        from repro.reorg.unit import UnitEngine

        UnitEngine(db, db.tree()).finish_unit(report.pending_unit)
        db.tree().validate()

    def test_truncating_past_the_mark_fails_loudly(self):
        db = sparse_db()
        tree = db.tree()
        txn_lsn = db.log.last_lsn
        for key in range(2000, 2005):
            tree.insert(Record(key))
        db.log.flush()
        # Truncate beyond the last checkpoint: recovery cannot start.
        db.log.truncate(db.log.last_checkpoint_lsn + 1)
        db.crash()
        with pytest.raises(LogCorruptionError):
            db.recover()
        del txn_lsn

    def test_truncate_counts_and_is_idempotent(self):
        db = sparse_db()
        first = db.log.truncate(10)
        second = db.log.truncate(10)
        assert first == 9
        assert second == 0

    def test_scan_skips_truncated_prefix(self):
        db = sparse_db()
        db.log.truncate(20)
        lsns = [r.lsn for r in db.log.records_from(1)]
        assert lsns[0] == 20
        with pytest.raises(LogCorruptionError):
            db.log.get(5)
