"""Tests for the Tandem-style baseline ([Smi90])."""

import pytest

from repro.baseline.smith90 import Smith90Protocol, Smith90Reorganizer
from repro.btree.stats import collect_stats
from repro.config import ReorgConfig, TreeConfig
from repro.db import Database
from repro.errors import CrashPoint
from repro.sim.crash import LogCrashInjector, crash_recover
from repro.sim.workload import build_sparse_tree
from repro.storage.page import Record
from repro.txn.scheduler import Scheduler


def make_db(n=400, fill_after=0.3):
    db = Database(
        TreeConfig(
            leaf_capacity=8,
            internal_capacity=6,
            leaf_extent_pages=512,
            internal_extent_pages=256,
            buffer_pool_pages=128,
        )
    )
    build_sparse_tree(db, n_records=n, fill_after=fill_after)
    db.flush()
    db.checkpoint()
    return db


class TestSynchronousEngine:
    def test_compaction_raises_fill(self):
        db = make_db()
        before = collect_stats(db.tree())
        smith = Smith90Reorganizer(db, db.tree(), ReorgConfig(target_fill=0.9))
        merges = smith.run_compaction()
        after = collect_stats(db.tree())
        assert merges > 0
        assert after.leaf_fill > before.leaf_fill
        db.tree().validate()

    def test_no_records_lost(self):
        db = make_db()
        before = [(r.key, r.payload) for r in db.tree().items()]
        smith = Smith90Reorganizer(db, db.tree(), ReorgConfig())
        smith.run()
        assert [(r.key, r.payload) for r in db.tree().items()] == before
        db.tree().validate()

    def test_ordering_places_leaves_contiguously(self):
        db = make_db()
        smith = Smith90Reorganizer(db, db.tree(), ReorgConfig())
        smith.run()
        chain = db.tree().leaf_ids_in_key_order()
        assert chain == sorted(chain)
        assert collect_stats(db.tree()).disk_order_fraction == 1.0

    def test_every_operation_is_one_transaction_one_file_lock(self):
        db = make_db()
        smith = Smith90Reorganizer(db, db.tree(), ReorgConfig())
        stats = smith.run()
        assert stats.transactions == stats.operations
        assert stats.file_locks == stats.operations

    def test_two_blocks_per_operation(self):
        """Each [Smi90] transaction deals with exactly two blocks, so the
        baseline needs more units than the paper's d-page compaction."""
        from repro.reorg.compact import LeafCompactor
        from repro.reorg.unit import UnitEngine

        db_smith = make_db()
        smith = Smith90Reorganizer(db_smith, db_smith.tree(), ReorgConfig())
        smith.run_compaction()

        db_paper = make_db()
        paper_stats = LeafCompactor(
            db_paper, db_paper.tree(), ReorgConfig()
        ).run()
        assert smith.stats.merges > paper_stats.units

    def test_merge_only_touches_same_parent_pairs(self):
        db = make_db()
        smith = Smith90Reorganizer(db, db.tree(), ReorgConfig())
        pair = smith.next_merge()
        assert pair is not None
        base, left, right = pair
        parent = db.store.get_internal(base)
        children = parent.children()
        assert children.index(right) == children.index(left) + 1


class TestRollbackRecovery:
    def test_interrupted_operation_is_rolled_back(self):
        db = make_db()
        keys_before = [r.key for r in db.tree().items()]
        smith = Smith90Reorganizer(db, db.tree(), ReorgConfig())
        crashed = False
        try:
            with LogCrashInjector(db.log, after_records=3):
                smith.run_compaction()
        except CrashPoint:
            crashed = True
        assert crashed
        recovery = crash_recover(db)
        assert recovery.pending_unit is not None
        fresh = Smith90Reorganizer(db, db.tree(), ReorgConfig())
        rolled_back = fresh.recover_interrupted(recovery.pending_unit)
        assert rolled_back
        tree = db.tree()
        tree.validate()
        assert [r.key for r in tree.items()] == keys_before
        assert not db.progress.unit_in_flight

    def test_rollback_loses_in_flight_work_forward_recovery_keeps_it(self):
        """The E3 effect in miniature: after the same crash, rollback
        reverts the unit while forward recovery completes it."""
        from repro.reorg.unit import UnitEngine

        def crash_one_unit(db):
            smith = Smith90Reorganizer(db, db.tree(), ReorgConfig())
            try:
                with LogCrashInjector(db.log, after_records=3):
                    smith.run_compaction()
            except CrashPoint:
                pass
            return crash_recover(db)

        db_rb = make_db()
        recovery_rb = crash_one_unit(db_rb)
        pending = recovery_rb.pending_unit
        leaves_touched = pending.leaf_pages
        Smith90Reorganizer(db_rb, db_rb.tree(), ReorgConfig()).recover_interrupted(
            pending
        )
        # Rolled back: the sources still exist separately.
        live_rb = [
            p for p in leaves_touched if not db_rb.store.free_map.is_free(p)
        ]
        assert len(live_rb) == len(leaves_touched)

        db_fw = make_db()
        recovery_fw = crash_one_unit(db_fw)
        UnitEngine(db_fw, db_fw.tree()).finish_unit(recovery_fw.pending_unit)
        # Forward recovered: the compacted-away source was freed.
        freed_fw = [
            p
            for p in recovery_fw.pending_unit.leaf_pages
            if db_fw.store.free_map.is_free(p)
        ]
        assert freed_fw
        db_rb.tree().validate()
        db_fw.tree().validate()


class TestProtocol:
    def test_protocol_blocks_everything_while_operating(self):
        from repro.btree.protocols import reader_search

        db = make_db()
        live = [r.key for r in db.tree().items()]
        sched = Scheduler(db.locks, store=db.store, log=db.log, io_time=0.05)
        protocol = Smith90Protocol(
            db, "primary", ReorgConfig(), op_duration=0.5
        )
        sched.spawn(protocol.run(), name="smith", is_reorganizer=True)
        readers = [
            sched.spawn(reader_search(db, "primary", key), at=0.1 * i)
            for i, key in enumerate(live[:20])
        ]
        sched.run()
        assert sched.failed == []
        blocked = [r for r in readers if r.metrics.wait_time > 0]
        # The whole-file X lock stalls nearly every reader.
        assert len(blocked) >= len(readers) // 2
        db.tree().validate()


class TestSwapRollback:
    def test_interrupted_swap_is_rolled_back(self):
        """A crash mid-swap under the rollback policy re-swaps the pages
        (a swap is its own inverse) and fixes the base entries back."""
        from repro.sim.workload import build_sparse_tree
        from repro.config import FreeSpacePolicy

        db = Database(
            TreeConfig(
                leaf_capacity=8,
                internal_capacity=6,
                leaf_extent_pages=512,
                internal_extent_pages=256,
                buffer_pool_pages=128,
            )
        )
        # Scattered layout so the ordering phase genuinely swaps.
        import random

        tree = db.create_tree()
        rng = random.Random(3)
        keys = list(range(400))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(Record(key, "v"))
        for key in rng.sample(range(400), 280):
            tree.delete(key)
        db.flush()
        db.checkpoint()
        keys_before = sorted(r.key for r in tree.items())

        smith = Smith90Reorganizer(db, tree, ReorgConfig())
        smith.run_compaction()
        db.log.flush()
        crashed = False
        try:
            with LogCrashInjector(db.log, after_records=2):
                smith.run_ordering()
        except CrashPoint:
            crashed = True
        assert crashed
        recovery = crash_recover(db)
        if recovery.pending_unit is None:
            pytest.skip("the crash fell between operations")
        rolled = Smith90Reorganizer(
            db, db.tree(), ReorgConfig()
        ).recover_interrupted(recovery.pending_unit)
        tree = db.tree()
        tree.validate()
        assert sorted(r.key for r in tree.items()) == keys_before
        del rolled
