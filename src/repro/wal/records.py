"""Write-ahead-log record types.

Three families of records exist:

* **User-transaction records** — leaf inserts/deletes with undo information,
  plus commit/abort/end markers and ARIES-style compensation records (CLRs).
* **Structural records** — redo-only records for page splits, base-page entry
  maintenance, side-pointer updates, bulk-build page images, and space
  allocation.  Structure changes are never undone (the standard
  nested-top-action treatment; [GR93]).
* **Reorganization records** — the paper's BEGIN / MOVE / MODIFY / END unit
  records (section 5) plus pass-3 records: side-file entries, stable-key
  records and the checkpointed reorg progress table.

Every record carries an ``lsn`` assigned at append time and a ``prev_lsn``
linking it into its transaction's (or reorganization unit's) backward chain,
exactly as the paper describes: "Prev LSN is the LSN of the previous log
record for this same reorganization unit."

``log_bytes()`` returns the simulated serialized size of a record; benchmark
E4 (log-volume with vs. without careful writing) sums it.  Sizes follow a
simple costing: 8 bytes per integer field, 1 byte per payload character.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.storage.page import PageId, Record

#: Transaction id reserved for redo-only structural actions.
SYSTEM_TXN = 0

_INT_BYTES = 8
_HEADER_FIELDS = 3  # lsn, prev_lsn, txn/unit id


def _records_bytes(records: tuple[Record, ...]) -> int:
    """Simulated size of full record contents: key plus payload bytes."""
    return sum(_INT_BYTES + len(r.payload) for r in records)


class ReorgUnitType(enum.Enum):
    """The paper's Type field in the BEGIN log record (section 5)."""

    COMPACT = "compact"  # compacting leaf pages under the same base page
    SWAP = "swap"  # swapping two leaf pages under one or two base pages
    MOVE = "move"  # moving one leaf page to an empty page


@dataclass
class LogRecord:
    """Base class: every record gets an LSN and a backward chain pointer."""

    lsn: int = field(default=0, init=False)
    prev_lsn: int = 0

    #: Class flag the log manager reads instead of an isinstance check on
    #: every append (set by the ReorgRecord branch of the hierarchy).
    is_reorg = False

    def log_bytes(self) -> int:
        return _HEADER_FIELDS * _INT_BYTES


# ---------------------------------------------------------------------------
# User-transaction records
# ---------------------------------------------------------------------------


@dataclass
class TxnRecord(LogRecord):
    """Base for records belonging to a user transaction's chain."""

    txn_id: int = SYSTEM_TXN


@dataclass
class LeafInsertRecord(TxnRecord):
    """A record was inserted into a leaf page.

    Undo is *logical* (delete the key wherever it now lives): a split or a
    reorganization unit may have moved the record off ``page_id`` before
    the transaction rolls back, so ``tree_name`` lets undo re-descend.
    """

    page_id: PageId = 0
    record: Record = field(default_factory=lambda: Record(0))
    tree_name: str = "primary"

    def log_bytes(self) -> int:
        # == header + page_id + one record (key + payload), inlined: this
        # runs once per user insert/delete, the hottest log-size path.
        return (_HEADER_FIELDS + 2) * _INT_BYTES + len(self.record.payload)


@dataclass
class LeafDeleteRecord(TxnRecord):
    """A record was deleted from a leaf page.  Undo: re-insert it
    (logically — see LeafInsertRecord)."""

    page_id: PageId = 0
    record: Record = field(default_factory=lambda: Record(0))
    tree_name: str = "primary"

    def log_bytes(self) -> int:
        # == header + page_id + one record (key + payload), inlined: this
        # runs once per user insert/delete, the hottest log-size path.
        return (_HEADER_FIELDS + 2) * _INT_BYTES + len(self.record.payload)


@dataclass
class CompensationRecord(TxnRecord):
    """ARIES CLR: redo-only record describing one undone action.

    ``undo_next_lsn`` points at the next record of the transaction still to
    be undone, so undo never repeats work after a crash during recovery.
    """

    page_id: PageId = 0
    undone_lsn: int = 0
    undo_next_lsn: int = 0
    #: True when the compensating action re-inserts ``record``; False when
    #: it deletes it.
    is_insert: bool = False
    record: Record = field(default_factory=lambda: Record(0))

    def log_bytes(self) -> int:
        return (
            super().log_bytes()
            + 3 * _INT_BYTES
            + _records_bytes((self.record,))
        )


@dataclass
class CommitRecord(TxnRecord):
    """Transaction committed; its effects must survive recovery."""


@dataclass
class AbortRecord(TxnRecord):
    """Transaction entered rollback (its updates will be compensated)."""


@dataclass
class EndRecord(TxnRecord):
    """Transaction finished (after commit or complete rollback)."""


# ---------------------------------------------------------------------------
# Structural (redo-only) records
# ---------------------------------------------------------------------------


@dataclass
class LeafFormatRecord(TxnRecord):
    """Full leaf-page image: records plus side pointers.

    Used when a split populates a new right sibling, when bulk build emits a
    page, and when recovery needs an idempotent full-page redo.
    """

    page_id: PageId = 0
    records: tuple[Record, ...] = ()
    next_leaf: PageId = -1
    prev_leaf: PageId = -1

    def log_bytes(self) -> int:
        return super().log_bytes() + 3 * _INT_BYTES + _records_bytes(self.records)


@dataclass
class InternalFormatRecord(TxnRecord):
    """Full internal-page image: entries, level, low mark."""

    page_id: PageId = 0
    level: int = 1
    entries: tuple[tuple[int, PageId], ...] = ()
    low_mark: int | None = None

    def log_bytes(self) -> int:
        return (
            super().log_bytes()
            + 3 * _INT_BYTES
            + 2 * _INT_BYTES * len(self.entries)
        )


@dataclass
class BaseEntryInsertRecord(TxnRecord):
    """A (key, child) entry was added to an internal page (e.g. by a split)."""

    page_id: PageId = 0
    key: int = 0
    child: PageId = 0

    def log_bytes(self) -> int:
        return super().log_bytes() + 3 * _INT_BYTES


@dataclass
class BaseEntryUpdateRecord(TxnRecord):
    """One (key, child) entry of an internal page was rewritten in place.

    Used to keep the invariant *entry key = smallest key of the child's
    subtree* when an insert arrives below the tree minimum (it routes to the
    leftmost child, whose entry key must be lowered so later splits produce
    distinct separators).
    """

    page_id: PageId = 0
    org_key: int = 0
    org_child: PageId = 0
    new_key: int = 0
    new_child: PageId = 0

    def log_bytes(self) -> int:
        return super().log_bytes() + 5 * _INT_BYTES


@dataclass
class BaseEntryDeleteRecord(TxnRecord):
    """A (key, child) entry was removed (free-at-empty deallocation)."""

    page_id: PageId = 0
    key: int = 0
    child: PageId = 0

    def log_bytes(self) -> int:
        return super().log_bytes() + 3 * _INT_BYTES


@dataclass
class SidePointerRecord(TxnRecord):
    """A leaf's side pointers changed (section 4.3)."""

    page_id: PageId = 0
    next_leaf: PageId = -1
    prev_leaf: PageId = -1

    def log_bytes(self) -> int:
        return super().log_bytes() + 3 * _INT_BYTES


@dataclass
class AllocRecord(TxnRecord):
    """A page was allocated.  Section 7.3: space allocation is logged so
    that pages allocated after the most recent stable point can be
    deallocated during recovery."""

    page_id: PageId = 0
    kind: str = "leaf"
    level: int = 0

    def log_bytes(self) -> int:
        return super().log_bytes() + 2 * _INT_BYTES + len(self.kind)


@dataclass
class FreeRecord(TxnRecord):
    """A page was deallocated (free-at-empty, or old-tree discard)."""

    page_id: PageId = 0

    def log_bytes(self) -> int:
        return super().log_bytes() + _INT_BYTES


# ---------------------------------------------------------------------------
# Reorganization-unit records (paper section 5)
# ---------------------------------------------------------------------------


@dataclass
class ReorgRecord(LogRecord):
    """Base for records in a reorganization unit's chain."""

    unit_id: int = 0

    is_reorg = True


@dataclass
class ReorgBeginRecord(ReorgRecord):
    """(BEGIN, Unit m, Type, base pages..., leaf pages...).

    "This log record is only written after all leaf page locks for the
    reorganization unit are acquired."
    """

    unit_type: ReorgUnitType = ReorgUnitType.COMPACT
    base_pages: tuple[PageId, ...] = ()
    leaf_pages: tuple[PageId, ...] = ()
    #: Extra context forward recovery needs to finish the unit: for COMPACT
    #: and MOVE, the destination page id; for SWAP the two page ids are the
    #: leaf_pages themselves.
    dest_page: PageId = -1
    #: Multi-output units (ReorgConfig.max_unit_output_pages > 1): every
    #: destination page, in key order.  Empty means (dest_page,).
    dest_pages: tuple[PageId, ...] = ()

    def all_dest_pages(self) -> tuple[PageId, ...]:
        return self.dest_pages if self.dest_pages else (self.dest_page,)

    def log_bytes(self) -> int:
        return (
            super().log_bytes()
            + 2 * _INT_BYTES
            + _INT_BYTES
            * (len(self.base_pages) + len(self.leaf_pages) + len(self.dest_pages))
        )


@dataclass
class ReorgMoveOutRecord(ReorgRecord):
    """(MOVE, record contents, org page, dest page) — the org-page half.

    "We will always write the MOVE log record for the org page first, then
    write the MOVE log record for the dest page."

    With careful writing only the keys are logged; redo recovers the record
    contents from the org page's stable image, which careful writing
    guarantees is still intact if this record needs redoing.
    """

    org_page: PageId = 0
    dest_page: PageId = 0
    keys: tuple[int, ...] = ()
    #: Full record contents; empty when careful writing allows keys-only.
    records: tuple[Record, ...] = ()

    def log_bytes(self) -> int:
        body = _records_bytes(self.records) if self.records else (
            _INT_BYTES * len(self.keys)
        )
        return super().log_bytes() + 2 * _INT_BYTES + body


@dataclass
class ReorgMoveInRecord(ReorgRecord):
    """(MOVE, ...) — the dest-page half of a record move."""

    org_page: PageId = 0
    dest_page: PageId = 0
    keys: tuple[int, ...] = ()
    records: tuple[Record, ...] = ()
    #: LSN of the matching ReorgMoveOutRecord; redo uses it to pick up the
    #: records stashed while redoing the out-half (keys-only logging).
    move_out_lsn: int = 0

    def log_bytes(self) -> int:
        body = _records_bytes(self.records) if self.records else (
            _INT_BYTES * len(self.keys)
        )
        return super().log_bytes() + 3 * _INT_BYTES + body


@dataclass
class ReorgSwapRecord(ReorgRecord):
    """Swap of the contents of two leaf pages.

    "When we do swapping of leaf pages there is no way to avoid logging at
    least one of the full page contents."  With careful writing we log page
    A's old contents in full and only the keys of page B; a buffer-pool
    write dependency (A must be written before B) makes that sufficient for
    redo.  Without careful writing both pages' contents are logged
    (``records_b`` non-empty) so redo never depends on write order.
    """

    page_a: PageId = 0
    page_b: PageId = 0
    records_a: tuple[Record, ...] = ()
    keys_b: tuple[int, ...] = ()
    records_b: tuple[Record, ...] = ()

    def log_bytes(self) -> int:
        b_side = (
            _records_bytes(self.records_b)
            if self.records_b
            else _INT_BYTES * len(self.keys_b)
        )
        return (
            super().log_bytes()
            + 2 * _INT_BYTES
            + _records_bytes(self.records_a)
            + b_side
        )


@dataclass
class ReorgModifyRecord(ReorgRecord):
    """(MODIFY, base page, org key, org pointer, new key, new pointer).

    "This describes the modification of the base key and base pointer after
    moving the records."  A removal (compacted-away child) is encoded with
    ``new_child = -1``; an insertion of a brand-new entry with
    ``org_child = -1``.
    """

    base_page: PageId = 0
    org_key: int = 0
    org_child: PageId = -1
    new_key: int = 0
    new_child: PageId = -1

    def log_bytes(self) -> int:
        return super().log_bytes() + 5 * _INT_BYTES


@dataclass
class ReorgEndRecord(ReorgRecord):
    """(END, Unit m) plus LK, the largest key the unit finished."""

    largest_key: int = 0

    def log_bytes(self) -> int:
        return super().log_bytes() + _INT_BYTES


# ---------------------------------------------------------------------------
# Pass-3 records (sections 7.2-7.3)
# ---------------------------------------------------------------------------


@dataclass
class SideFileInsertRecord(TxnRecord):
    """A user transaction appended an entry to the side file (section 7.2).

    ``op`` is "insert" or "delete": the base-page change being deferred.
    """

    key: int = 0
    child: PageId = -1
    op: str = "insert"

    def log_bytes(self) -> int:
        return super().log_bytes() + 2 * _INT_BYTES + len(self.op)


@dataclass
class SideFileApplyRecord(ReorgRecord):
    """The reorganizer applied (and removed) one side-file entry.

    "The actions of changing the new base page and of removing the side
    file record are logged."
    """

    key: int = 0
    child: PageId = -1
    op: str = "insert"
    new_base_page: PageId = -1

    def log_bytes(self) -> int:
        return super().log_bytes() + 3 * _INT_BYTES + len(self.op)


@dataclass
class StableKeyRecord(ReorgRecord):
    """A pass-3 stable point: the new tree is durable up to this key.

    "After these pages are forced, only the key of the next page to be read
    need be recorded in the log."  ``new_root`` is the location of the
    concurrent root of the new B+-tree (-1 while the upper levels are not
    built yet).  ``built_entries`` lists the (low key, page id) of every
    new base page closed so far, so a restart can rebuild the upper levels
    without re-reading stable work.
    """

    stable_key: int = 0
    new_root: PageId = -1
    built_entries: tuple[tuple[int, PageId], ...] = ()

    def log_bytes(self) -> int:
        return (
            super().log_bytes()
            + 2 * _INT_BYTES
            + 2 * _INT_BYTES * len(self.built_entries)
        )


@dataclass
class TreeSwitchRecord(ReorgRecord):
    """The switch is about to flip the root (section 7.4).

    Logged and flushed immediately *before* the root location on disk is
    changed, so recovery always knows both roots and can finish the switch
    forward (flip if not yet flipped, then discard the old upper levels)
    instead of rebuilding.
    """

    old_root: PageId = -1
    new_root: PageId = -1
    old_lock_name: str = ""

    def log_bytes(self) -> int:
        return super().log_bytes() + 2 * _INT_BYTES + len(self.old_lock_name)


@dataclass
class ReorgDoneRecord(ReorgRecord):
    """Internal-page reorganization fully completed: the old upper levels
    were discarded and the reorganization bit cleared."""


@dataclass
class CheckpointRecord(LogRecord):
    """A sharp checkpoint: all dirty pages were flushed before appending.

    Carries the reorg progress table (section 5: "It will be copied to the
    log checkpoint record"), the last pass-3 stable key and new-root
    location (section 7.3), and the set of active transactions with their
    most recent LSNs (for the undo pass).
    """

    active_txns: tuple[tuple[int, int], ...] = ()  # (txn_id, last_lsn)
    #: (LK, begin_lsn, recent_lsn) — the progress table; lsn fields are 0
    #: when no unit is in flight.
    progress: tuple[int, int, int] = (0, 0, 0)
    #: Parallel extension: every in-flight unit as (unit_id, begin, recent).
    progress_units: tuple[tuple[int, int, int], ...] = ()
    stable_key: int | None = None
    new_root: PageId = -1
    reorg_bit: bool = False
    #: Current side-file contents: (key, child, op) triples (section 7.2).
    side_file: tuple[tuple[int, PageId, str], ...] = ()
    #: New base pages closed so far by pass 3: (low key, page id).
    pass3_built: tuple[tuple[int, PageId], ...] = ()
    #: Sharded databases: per-shard pass-3 state as
    #: (tree_name, reorg_bit, stable_key, new_root, side_file, built)
    #: tuples.  Empty (zero log bytes) for unsharded databases, keeping
    #: their checkpoint sizes identical to the pre-shard baselines.
    shard_pass3: tuple = ()

    def log_bytes(self) -> int:
        return (
            super().log_bytes()
            + 2 * _INT_BYTES * len(self.active_txns)
            + 6 * _INT_BYTES
            + 3 * _INT_BYTES * len(self.side_file)
            + 2 * _INT_BYTES * len(self.pass3_built)
            + sum(
                len(name)
                + 4 * _INT_BYTES
                + 3 * _INT_BYTES * len(side)
                + 2 * _INT_BYTES * len(built)
                for name, _bit, _sk, _nr, side, built in self.shard_pass3
            )
        )
