"""Crash recovery: redo, transaction undo, and forward-recovery analysis.

The paper assumes a [GR93]-style recovery substrate: "a redo pass is run
first ... After the redo pass, all forward operations from the log will
have been installed in the database", then incomplete transactions are
undone — and, the paper's novelty, an incomplete *reorganization unit* is
**not** undone: recovery gathers "all the information about the one
possible incomplete reorganization unit ... One finds out what remains to
be done and what locks must be obtained to do it" (section 5.1).  Finishing
the unit is the reorganizer's job (:mod:`repro.reorg.unit`); this module
performs redo + undo and reports everything forward recovery needs.

Checkpoints here are *sharp*: :func:`take_checkpoint` flushes all dirty
pages first, so redo starts at the last checkpoint record.  The checkpoint
carries the reorg progress table (section 5), the pass-3 stable key and
new-root location (section 7.3), the side-file contents (section 7.2) and
the active-transaction table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.page import PageId
from repro.storage.store import StorageManager
from repro.wal.apply import MoveStash, apply_record, is_redoable
from repro.wal.log import LogManager
from repro.wal.progress import NO_KEY_YET, ProgressSnapshot, ReorgProgressTable
from repro.wal.records import (
    AbortRecord,
    ReorgMoveInRecord,
    ReorgMoveOutRecord,
    AllocRecord,
    CheckpointRecord,
    CommitRecord,
    CompensationRecord,
    EndRecord,
    LeafDeleteRecord,
    LeafInsertRecord,
    LogRecord,
    ReorgBeginRecord,
    ReorgEndRecord,
    ReorgDoneRecord,
    ReorgRecord,
    ReorgUnitType,
    SideFileApplyRecord,
    TreeSwitchRecord,
    SideFileInsertRecord,
    StableKeyRecord,
    SYSTEM_TXN,
    TxnRecord,
)


@dataclass
class PendingReorgUnit:
    """Everything forward recovery needs about the in-flight unit.

    "We know what type it is by looking at the Type field of the BEGIN log
    record" (section 5.1); the record chain tells how far the unit got.
    """

    unit_id: int
    unit_type: ReorgUnitType
    base_pages: tuple[PageId, ...]
    leaf_pages: tuple[PageId, ...]
    dest_page: PageId
    #: All destinations (multi-output extension); (dest_page,) otherwise.
    dest_pages: tuple[PageId, ...] = ()
    #: The unit's log records in log order (BEGIN first).
    records: list[ReorgRecord] = field(default_factory=list)


@dataclass
class RecoveryReport:
    """Outcome of one recovery run."""

    redo_scanned: int = 0
    redo_applied: int = 0
    undone_txns: list[int] = field(default_factory=list)
    #: In-flight reorganization units to be finished by forward recovery
    #: (one under the paper's single-process configuration; several with
    #: the parallel extension), in unit-id order.
    pending_units: list[PendingReorgUnit] = field(default_factory=list)
    largest_finished_key: int = NO_KEY_YET
    #: Pass-3 restart point (last stable key), or None if pass 3 was not
    #: running / never reached a stable point.
    stable_key: int | None = None
    new_root: PageId = -1
    reorg_bit: bool = False
    #: Reconstructed side-file contents (key, child, op).
    side_file: list[tuple[int, PageId, str]] = field(default_factory=list)
    #: Internal pages allocated after the last stable point — pass 3 may
    #: deallocate these on restart (section 7.3).
    allocs_after_stable: list[PageId] = field(default_factory=list)
    #: New base pages closed before the last stable point (low key, pid).
    built_entries: list[tuple[int, PageId]] = field(default_factory=list)
    #: Set when the switch had begun: (old_root, new_root, old_lock_name).
    switch_pending: tuple[PageId, PageId, str] | None = None
    #: Sharded databases: checkpointed per-shard pass-3 state, keyed by
    #: shard tree name (raw checkpoint tuples; see
    #: :meth:`repro.shard.ShardedDatabase.recover`).
    shard_pass3: dict[str, tuple] = field(default_factory=dict)

    @property
    def pending_unit(self) -> PendingReorgUnit | None:
        "The single in-flight unit, if any (the paper's base configuration)."
        return self.pending_units[0] if self.pending_units else None


def take_checkpoint(
    store: StorageManager,
    log: LogManager,
    *,
    active_txns: dict[int, int] | None = None,
    progress: ReorgProgressTable | None = None,
    stable_key: int | None = None,
    new_root: PageId = -1,
    reorg_bit: bool = False,
    side_file: list[tuple[int, PageId, str]] | None = None,
    pass3_built: list[tuple[int, PageId]] | None = None,
    shard_pass3: tuple = (),
) -> int:
    """Take a sharp checkpoint; returns its LSN."""
    store.flush_all()
    snapshot = (
        progress.snapshot()
        if progress is not None
        else ProgressSnapshot(NO_KEY_YET, 0, 0)
    )
    record = CheckpointRecord(
        active_txns=tuple((active_txns or {}).items()),
        progress=(
            snapshot.largest_finished_key,
            snapshot.begin_lsn,
            snapshot.recent_lsn,
        ),
        progress_units=snapshot.units,
        stable_key=stable_key,
        new_root=new_root,
        reorg_bit=reorg_bit,
        side_file=tuple(side_file or ()),
        pass3_built=tuple(pass3_built or ()),
        shard_pass3=tuple(shard_pass3),
    )
    lsn = log.append(record)
    log.flush()
    return lsn


class RecoveryManager:
    """Runs redo + undo over the stable log after a crash."""

    def __init__(self, store: StorageManager, log: LogManager):
        self.store = store
        self.log = log

    def run(self, *, undo: bool = True) -> RecoveryReport:
        """Perform recovery; returns the report for forward recovery.

        The caller must already have discarded volatile state (buffer pool,
        lock table) and truncated the log to its stable prefix — the crash
        harness in :mod:`repro.sim.crash` does both.
        """
        report = RecoveryReport()
        checkpoint = self._load_checkpoint()
        active: dict[int, int] = {}
        committed: set[int] = set()
        units: dict[int, PendingReorgUnit] = {}
        if checkpoint is not None:
            active.update(dict(checkpoint.active_txns))
            lk, begin_lsn, _recent = checkpoint.progress
            report.largest_finished_key = lk
            report.stable_key = checkpoint.stable_key
            report.new_root = checkpoint.new_root
            report.reorg_bit = checkpoint.reorg_bit
            report.side_file = list(checkpoint.side_file)
            report.built_entries = list(checkpoint.pass3_built)
            report.shard_pass3 = {
                entry[0]: entry for entry in checkpoint.shard_pass3
            }
            if checkpoint.progress_units:
                for _uid, unit_begin, unit_recent in checkpoint.progress_units:
                    unit = self._reconstruct_unit_from(unit_begin, unit_recent)
                    units[unit.unit_id] = unit
            elif begin_lsn:
                unit = self._reconstruct_unit_from(begin_lsn, _recent)
                units[unit.unit_id] = unit
        start_lsn = (checkpoint.lsn + 1) if checkpoint is not None else 1

        # A MoveOut whose matching MoveIn never reached the stable log must
        # not be redone: applying it would strand the moved records in the
        # stash.  Careful writing guarantees the org page cannot be on disk
        # without the dest being durable (which implies the MoveIn record
        # was flushed), so skipping is consistent — forward recovery simply
        # re-moves the records.
        matched_move_outs = {
            record.move_out_lsn
            for record in self.log.records_from(start_lsn)
            if isinstance(record, ReorgMoveInRecord)
        }
        stash: MoveStash = {}
        for record in self.log.records_from(start_lsn):
            report.redo_scanned += 1
            if (
                isinstance(record, ReorgMoveOutRecord)
                and record.lsn not in matched_move_outs
            ):
                continue
            if is_redoable(record):
                apply_record(self.store, record, redo=True, stash=stash)
                report.redo_applied += 1
            self._track_transactions(record, active, committed)
            self._track_reorg(record, report, units)

        report.pending_units = [units[k] for k in sorted(units)]

        if undo:
            report.undone_txns = self._undo_incomplete(active, committed)
        return report

    # -- analysis helpers --------------------------------------------------------

    def _load_checkpoint(self) -> CheckpointRecord | None:
        lsn = self.log.last_checkpoint_lsn
        if lsn <= 0:
            return None
        record = self.log.get(lsn)
        assert isinstance(record, CheckpointRecord)
        return record

    def _reconstruct_unit_from(
        self, begin_lsn: int, recent_lsn: int
    ) -> PendingReorgUnit:
        """Rebuild a unit in flight at checkpoint time.

        Its pre-checkpoint records are not re-scanned by redo, so they are
        recovered here by walking the unit's prev-LSN chain backwards from
        the checkpointed recent LSN (section 5: "the chain of prev LSNs can
        be used to find log records" of a unit).
        """
        begin = self.log.get(begin_lsn)
        assert isinstance(begin, ReorgBeginRecord)
        unit = PendingReorgUnit(
            unit_id=begin.unit_id,
            unit_type=begin.unit_type,
            base_pages=begin.base_pages,
            leaf_pages=begin.leaf_pages,
            dest_page=begin.dest_page,
            dest_pages=begin.all_dest_pages(),
        )
        chain: list[ReorgRecord] = []
        cursor = max(recent_lsn, begin_lsn)
        while cursor >= begin_lsn and cursor > 0:
            record = self.log.get(cursor)
            if isinstance(record, ReorgRecord) and record.unit_id == begin.unit_id:
                chain.append(record)
            if cursor == begin_lsn:
                break
            cursor = record.prev_lsn
        unit.records.extend(reversed(chain))
        return unit

    def _track_transactions(
        self,
        record: LogRecord,
        active: dict[int, int],
        committed: set[int],
    ) -> None:
        if not isinstance(record, TxnRecord) or record.txn_id == SYSTEM_TXN:
            return
        if isinstance(record, CommitRecord):
            committed.add(record.txn_id)
            active.pop(record.txn_id, None)
        elif isinstance(record, EndRecord):
            active.pop(record.txn_id, None)
        elif isinstance(record, (LeafInsertRecord, LeafDeleteRecord,
                                 CompensationRecord, AbortRecord,
                                 SideFileInsertRecord)):
            if record.txn_id not in committed:
                active[record.txn_id] = record.lsn

    def _track_reorg(
        self,
        record: LogRecord,
        report: RecoveryReport,
        units: dict[int, PendingReorgUnit],
    ) -> None:
        if isinstance(record, ReorgBeginRecord):
            unit = PendingReorgUnit(
                unit_id=record.unit_id,
                unit_type=record.unit_type,
                base_pages=record.base_pages,
                leaf_pages=record.leaf_pages,
                dest_page=record.dest_page,
                dest_pages=record.all_dest_pages(),
            )
            unit.records.append(record)
            units[record.unit_id] = unit
            return
        if isinstance(record, ReorgEndRecord):
            report.largest_finished_key = max(
                report.largest_finished_key, record.largest_key
            )
            units.pop(record.unit_id, None)
            return
        if isinstance(record, StableKeyRecord):
            # The scan anchors a stable point at its very start, so seeing
            # one means internal-page reorganization is in progress — the
            # reorganization bit is re-derived from the log even when no
            # checkpoint captured it.
            report.reorg_bit = True
            report.stable_key = record.stable_key
            report.new_root = record.new_root
            report.built_entries = list(record.built_entries)
            report.allocs_after_stable.clear()
            return
        if isinstance(record, TreeSwitchRecord):
            report.switch_pending = (
                record.old_root, record.new_root, record.old_lock_name
            )
            return
        if isinstance(record, ReorgDoneRecord):
            report.switch_pending = None
            report.reorg_bit = False
            report.stable_key = None
            report.new_root = -1
            report.side_file.clear()
            report.built_entries.clear()
            return
        if isinstance(record, AllocRecord) and record.kind == "internal":
            report.allocs_after_stable.append(record.page_id)
            return
        if isinstance(record, SideFileInsertRecord):
            report.side_file.append((record.key, record.child, record.op))
            return
        if isinstance(record, SideFileApplyRecord):
            entry = (record.key, record.child, record.op)
            if entry in report.side_file:
                report.side_file.remove(entry)
            return
        if isinstance(record, ReorgRecord):
            unit = units.get(record.unit_id)
            if unit is not None:
                unit.records.append(record)

    # -- undo -----------------------------------------------------------------

    def _undo_incomplete(
        self, active: dict[int, int], committed: set[int]
    ) -> list[int]:
        """Roll back every incomplete user transaction with CLRs."""
        undone = []
        for txn_id, last_lsn in sorted(active.items()):
            if txn_id in committed:
                continue
            self._undo_one(txn_id, last_lsn)
            undone.append(txn_id)
        return undone

    def _undo_one(self, txn_id: int, last_lsn: int) -> None:
        cursor = last_lsn
        clr_prev = last_lsn
        while cursor > 0:
            record = self.log.get(cursor)
            if isinstance(record, CompensationRecord):
                # Crash during a previous rollback: skip what is already
                # compensated.
                cursor = record.undo_next_lsn
                continue
            if isinstance(record, (LeafInsertRecord, LeafDeleteRecord)):
                clr_prev = self._undo_leaf_action(txn_id, record, clr_prev)
            cursor = record.prev_lsn
        end = EndRecord(txn_id=txn_id, prev_lsn=clr_prev)
        self.log.append(end)

    def _undo_leaf_action(self, txn_id: int, record, clr_prev: int) -> int:
        """Logically undo one leaf insert/delete.

        The record may have been moved off its original page by a split or
        a reorganization unit before the rollback runs, so undo locates the
        key by descending the tree named in the record, then compensates on
        the page it actually finds (a CLR there), or — for a re-insert into
        a now-full page — through the ordinary insert path.
        """
        from repro.btree.tree import BPlusTree
        from repro.errors import BTreeError

        is_insert_undo = isinstance(record, LeafInsertRecord)
        key = record.record.key
        try:
            tree = BPlusTree.attach(self.store, self.log, name=record.tree_name)
        except BTreeError:
            return clr_prev  # the tree itself is gone; nothing to undo
        leaf = tree.leaf_for(key)
        if is_insert_undo:
            if not leaf.contains(key):
                return clr_prev  # already gone (e.g. page freed + rebuilt)
            clr = CompensationRecord(
                txn_id=txn_id,
                prev_lsn=clr_prev,
                page_id=leaf.page_id,
                undone_lsn=record.lsn,
                undo_next_lsn=record.prev_lsn,
                is_insert=False,
                record=record.record,
            )
            self.log.append(clr)
            apply_record(self.store, clr)
            if leaf.is_empty and leaf.page_id != tree.root_id:
                # Free-at-empty applies to compensating deletes too.
                tree._free_at_empty(tree.path_to_leaf(key))
            return clr.lsn
        # Undo of a delete: re-insert.
        if leaf.contains(key):
            return clr_prev  # already compensated / re-inserted
        if not leaf.is_full:
            clr = CompensationRecord(
                txn_id=txn_id,
                prev_lsn=clr_prev,
                page_id=leaf.page_id,
                undone_lsn=record.lsn,
                undo_next_lsn=record.prev_lsn,
                is_insert=True,
                record=record.record,
            )
            self.log.append(clr)
            apply_record(self.store, clr)
            return clr.lsn
        # The leaf filled up meanwhile: logical undo goes through the
        # ordinary insert path (which may split; structure changes are
        # never themselves undone).
        tree.insert(record.record)
        return clr_prev
