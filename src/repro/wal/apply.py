"""The do/redo interpreter: one code path applies a log record to pages.

Normal operation composes a log record, appends it, and *applies* it here;
the redo pass of recovery replays the same records through the same
function.  "Do equals redo" removes a whole class of divergence bugs and is
what makes physiological redo trustworthy ([GR93], chapter 10).

``redo=True`` adds the standard page-LSN test (skip records already
reflected in the page) and tolerates pages that must be re-created (a page
that was allocated and logged but whose image never reached disk before the
crash: its Alloc + Format records rebuild it).

The MOVE records implement the paper's careful-writing optimization
(section 5): with careful writing on, only the *keys* of moved records are
logged.  Applying the out-half removes those records from the org page and
stashes them (keyed by the out-record's LSN); the in-half picks them up.
Careful writing guarantees the stash can always be populated during redo:
the org page cannot have reached disk with the records already removed
unless the dest page (with the records added) is durable too, in which case
both halves are skipped by the page-LSN test.
"""

from __future__ import annotations

from typing import Any

from repro.errors import LogError, StorageError
from repro.storage.page import InternalPage, LeafPage, PageId, Record
from repro.storage.store import StorageManager
from repro.wal.records import (
    AllocRecord,
    BaseEntryDeleteRecord,
    BaseEntryInsertRecord,
    BaseEntryUpdateRecord,
    CompensationRecord,
    FreeRecord,
    InternalFormatRecord,
    LeafDeleteRecord,
    LeafFormatRecord,
    LeafInsertRecord,
    LogRecord,
    ReorgModifyRecord,
    ReorgMoveInRecord,
    ReorgMoveOutRecord,
    ReorgSwapRecord,
    SidePointerRecord,
)

#: Stash type threading moved-record contents from a MoveOut application to
#: the matching MoveIn: {move_out_lsn: [Record, ...]}.
MoveStash = dict[int, list[Record]]


def _page_for_redo(store: StorageManager, page_id: PageId, record: LogRecord):
    """Fetch a page during redo, or None when the record is for a page that
    no longer exists (freed later in the log; the later Free wins)."""
    if store.buffer.contains(page_id):
        return store.get(page_id)
    if store.disk.has_image(page_id):
        return store.get(page_id)
    return None


def _needs_redo(page, record: LogRecord) -> bool:
    return page.page_lsn < record.lsn


def apply_record(
    store: StorageManager,
    record: LogRecord,
    *,
    redo: bool = False,
    stash: MoveStash | None = None,
) -> Any:
    """Apply one log record's page effects.

    Returns an operation-specific value (e.g. the records a MoveOut
    removed).  In redo mode, records already reflected on the page are
    skipped and missing pages are rebuilt where the record carries a full
    image (format records) or ignored where it cannot matter.
    """
    record_type = type(record)
    handler = _PLAIN_HANDLERS.get(record_type)
    if handler is not None:
        return handler(store, record, redo)
    handler = _STASH_HANDLERS.get(record_type)
    if handler is not None:
        return handler(store, record, redo, stash)
    raise LogError(f"record type {record_type.__name__} has no page effects")


def is_redoable(record: LogRecord) -> bool:
    """Whether the record type carries page effects ``apply_record`` knows."""
    return type(record) in _REDOABLE_TYPES


# -- user / structural records ------------------------------------------------


def _apply_leaf_insert(store, record: LeafInsertRecord, redo: bool):
    page = _fetch(store, record.page_id, redo, record)
    if page is None or (redo and not _needs_redo(page, record)):
        return None
    page.insert(record.record)
    store.mark_dirty(page.page_id, record.lsn)
    return None


def _apply_leaf_delete(store, record: LeafDeleteRecord, redo: bool):
    page = _fetch(store, record.page_id, redo, record)
    if page is None or (redo and not _needs_redo(page, record)):
        return None
    page.delete(record.record.key)
    store.mark_dirty(page.page_id, record.lsn)
    return None


def _apply_clr(store, record: CompensationRecord, redo: bool):
    page = _fetch(store, record.page_id, redo, record)
    if page is None or (redo and not _needs_redo(page, record)):
        return None
    if record.is_insert:
        page.insert(record.record)
    else:
        page.delete(record.record.key)
    store.mark_dirty(page.page_id, record.lsn)
    return None


def _apply_leaf_format(store, record: LeafFormatRecord, redo: bool):
    page = _fetch_or_create_leaf(store, record.page_id)
    if redo and not _needs_redo(page, record):
        return None
    page.replace_all(list(record.records))
    page.next_leaf = record.next_leaf
    page.prev_leaf = record.prev_leaf
    store.mark_dirty(page.page_id, record.lsn)
    return None


def _apply_internal_format(store, record: InternalFormatRecord, redo: bool):
    page = _fetch_or_create_internal(store, record.page_id, record.level)
    if redo and not _needs_redo(page, record):
        return None
    page.level = record.level
    page.set_entries(list(record.entries))
    page.low_mark = record.low_mark
    store.mark_dirty(page.page_id, record.lsn)
    return None


def _apply_base_insert(store, record: BaseEntryInsertRecord, redo: bool):
    page = _fetch(store, record.page_id, redo, record)
    if page is None or (redo and not _needs_redo(page, record)):
        return None
    page.insert_entry(record.key, record.child)
    store.mark_dirty(page.page_id, record.lsn)
    return None


def _apply_base_delete(store, record: BaseEntryDeleteRecord, redo: bool):
    page = _fetch(store, record.page_id, redo, record)
    if page is None or (redo and not _needs_redo(page, record)):
        return None
    page.remove_entry_for_child(record.child)
    store.mark_dirty(page.page_id, record.lsn)
    return None


def _apply_base_update(store, record: BaseEntryUpdateRecord, redo: bool):
    page = _fetch(store, record.page_id, redo, record)
    if page is None or (redo and not _needs_redo(page, record)):
        return None
    page.update_entry(
        record.org_key, record.org_child, record.new_key, record.new_child
    )
    store.mark_dirty(page.page_id, record.lsn)
    return None


def _apply_side_pointer(store, record: SidePointerRecord, redo: bool):
    page = _fetch(store, record.page_id, redo, record)
    if page is None or (redo and not _needs_redo(page, record)):
        return None
    page.next_leaf = record.next_leaf
    page.prev_leaf = record.prev_leaf
    store.mark_dirty(page.page_id, record.lsn)
    return None


def _apply_alloc(store, record: AllocRecord, redo: bool):
    if not redo:
        # Normal operation allocates through the store before logging.
        return None
    if store.free_map.is_free(record.page_id):
        store.free_map.allocate(
            store.free_map.extent_for(record.page_id), record.page_id
        )
    return None


def _apply_free(store, record: FreeRecord, redo: bool):
    if not redo:
        return None
    if store.free_map.is_free(record.page_id):
        return None
    # Reincarnation test: if the page's current image carries a later LSN,
    # the page was freed, reallocated and rewritten after this record — the
    # free is superseded and must not erase the newer incarnation.
    if store.buffer.contains(record.page_id) or store.disk.has_image(record.page_id):
        page = store.get(record.page_id)
        if page.page_lsn > record.lsn:
            return None
    if store.buffer.contains(record.page_id):
        store.buffer.drop(record.page_id)
    store.free_map.free(record.page_id)
    return None


# -- reorganization records -----------------------------------------------------


def _apply_move_out(
    store, record: ReorgMoveOutRecord, redo: bool, stash: MoveStash | None
):
    page = _fetch(store, record.org_page, redo, record)
    if page is None:
        return None
    if redo and not _needs_redo(page, record):
        # Careful writing: org already durable without the records, so the
        # dest must be durable with them; nothing to stash.
        return None
    if redo and not all(page.contains(key) for key in record.keys):
        # The org page's on-disk state is a *later incarnation* than this
        # record (the page was freed and reallocated further down the log;
        # page ids reincarnate, page LSNs only see the latest).  Careful
        # writing guarantees the move's downstream resting place is durable:
        # the free that ended the incarnation could only run after its
        # drop() force-flushed every write-before dependency.  Removing the
        # "present subset" would corrupt the newer incarnation, so this is
        # strictly all-or-nothing: skip entirely.
        return None
    removed = [page.delete(key) for key in record.keys]
    store.mark_dirty(page.page_id, record.lsn)
    if stash is not None:
        stash[record.lsn] = removed
    return removed


def _apply_move_in(
    store, record: ReorgMoveInRecord, redo: bool, stash: MoveStash | None
):
    if redo and not record.records:
        stashed = stash is not None and record.move_out_lsn in stash
        if not stashed:
            # The matching MoveOut was skipped during redo (org page gone,
            # already-applied, or a later incarnation of its page id).
            # Careful writing implies the move's effects are durably
            # superseded: the dest was forced to disk before the org could
            # be written or freed, and if the dest was *itself* freed later
            # in the log, its own drop() force-flushed the next hop of the
            # chain first.  Whatever dest state redo is looking at —
            # durable post-move image, a rebuilt newer incarnation, or
            # nothing — this MoveIn must be skipped, never resurrected.
            return None
    page = _fetch_or_create_leaf(store, record.dest_page)
    if redo and not _needs_redo(page, record):
        return None
    if record.records:
        moved = list(record.records)
    else:
        if stash is None or record.move_out_lsn not in stash:
            raise LogError(
                f"MoveIn at LSN {record.lsn}: keys-only record but no "
                f"stashed contents from MoveOut LSN {record.move_out_lsn}"
            )
        moved = stash.pop(record.move_out_lsn)
        if redo:
            # The write-before edge registered when the move first ran is
            # volatile and died with the crash.  Redo has just re-created
            # the same in-memory state (org dirty without the records, dest
            # dirty with them), so the same ordering constraint must be
            # re-established: the org page may not reach disk before the
            # dest, or a second crash would strand the keys-only records.
            store.buffer.add_write_dependency(
                source=record.org_page, dest=record.dest_page
            )
    for moved_record in moved:
        page.insert(moved_record)
    store.mark_dirty(page.page_id, record.lsn)
    return None


def _apply_swap(store, record: ReorgSwapRecord, redo: bool):
    """Swap leaf contents.  A write-before dependency (A before B) plus the
    logged full contents of A make this redoable; see records.py."""
    page_a = _fetch(store, record.page_a, redo, record)
    page_b = _fetch(store, record.page_b, redo, record)
    if not redo and (page_a is None or page_b is None):
        raise LogError(f"swap at LSN {record.lsn}: missing page")
    # During redo a missing page means it was freed later in the log; its
    # half of the swap is superseded.  The write-before dependency (A
    # durable before B may be written or freed) guarantees the *other*
    # half's inputs are still available whenever it needs redoing.
    redo_a = page_a is not None and (not redo or _needs_redo(page_a, record))
    redo_b = page_b is not None and (not redo or _needs_redo(page_b, record))
    if redo_a:
        if record.records_b:
            contents_for_a = list(record.records_b)
        elif page_b is not None:
            # Careful writing: B is unmodified whenever A needs redo.
            contents_for_a = [Record(r.key, r.payload) for r in page_b.records]
        else:
            raise LogError(
                f"swap at LSN {record.lsn}: page A needs redo but page B "
                f"is gone and its contents were not logged"
            )
        page_a.replace_all(contents_for_a)
        store.mark_dirty(page_a.page_id, record.lsn)
        if redo and not record.records_b:
            # Same volatile-edge problem as MoveIn: A's redo sourced B's
            # unlogged contents from B's pre-swap image, so B must again be
            # barred from disk until the rebuilt A is durable.
            store.buffer.add_write_dependency(
                source=record.page_b, dest=record.page_a
            )
    if redo_b:
        page_b.replace_all(list(record.records_a))
        store.mark_dirty(page_b.page_id, record.lsn)
    return None


def _apply_modify(store, record: ReorgModifyRecord, redo: bool):
    page = _fetch(store, record.base_page, redo, record)
    if page is None or (redo and not _needs_redo(page, record)):
        return None
    if record.org_child == -1:
        page.insert_entry(record.new_key, record.new_child)
    elif record.new_child == -1:
        page.remove_entry_for_child(record.org_child)
    else:
        page.update_entry(
            record.org_key, record.org_child, record.new_key, record.new_child
        )
    store.mark_dirty(page.page_id, record.lsn)
    return None


# -- fetch helpers -----------------------------------------------------------


def _fetch(store, page_id: PageId, redo: bool, record: LogRecord):
    if redo:
        return _page_for_redo(store, page_id, record)
    return store.get(page_id)


def _fetch_or_create_leaf(store, page_id: PageId) -> LeafPage:
    if store.buffer.contains(page_id) or store.disk.has_image(page_id):
        page = store.get(page_id)
        if not isinstance(page, LeafPage):
            raise StorageError(f"page {page_id} is not a leaf")
        return page
    page = LeafPage(page_id, store.config.leaf_capacity)
    store.buffer.put_new(page)
    store.free_map.mark_allocated(page_id)
    return page


def _fetch_or_create_internal(store, page_id: PageId, level: int) -> InternalPage:
    if store.buffer.contains(page_id) or store.disk.has_image(page_id):
        page = store.get(page_id)
        if not isinstance(page, InternalPage):
            raise StorageError(f"page {page_id} is not an internal page")
        return page
    page = InternalPage(page_id, store.config.internal_capacity, level=level)
    store.buffer.put_new(page)
    store.free_map.mark_allocated(page_id)
    return page


# -- dispatch tables -----------------------------------------------------------
# Exact-type dispatch: no record class subclasses another concrete record
# class, so a dict lookup replaces the isinstance chain on the hot path.

_PLAIN_HANDLERS = {
    LeafInsertRecord: _apply_leaf_insert,
    LeafDeleteRecord: _apply_leaf_delete,
    CompensationRecord: _apply_clr,
    LeafFormatRecord: _apply_leaf_format,
    InternalFormatRecord: _apply_internal_format,
    BaseEntryInsertRecord: _apply_base_insert,
    BaseEntryDeleteRecord: _apply_base_delete,
    BaseEntryUpdateRecord: _apply_base_update,
    SidePointerRecord: _apply_side_pointer,
    AllocRecord: _apply_alloc,
    FreeRecord: _apply_free,
    ReorgSwapRecord: _apply_swap,
    ReorgModifyRecord: _apply_modify,
}

_STASH_HANDLERS = {
    ReorgMoveOutRecord: _apply_move_out,
    ReorgMoveInRecord: _apply_move_in,
}

_REDOABLE_TYPES = frozenset(_PLAIN_HANDLERS) | frozenset(_STASH_HANDLERS)
