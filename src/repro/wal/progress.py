"""The reorganization progress table (paper section 5).

"We keep an in-memory table to record the minimum LSN of the current
reorganization unit. ... We keep the most recent LSN of the unit.  We also
record the largest key (LK) of the last finished reorganization unit
processed. ... It will be copied to the log checkpoint record."

With the paper's single reorganization process the table holds one, two, or
three live values:

* only **LK** — the last unit finished and a new one has not started;
* LK and **begin LSN** — a unit just wrote its BEGIN record;
* LK, begin LSN and **recent LSN** — the unit has logged further work.

``recent_lsn`` supplies the ``prev_lsn`` field of the unit's next log record,
and together with the transaction low-water mark it bounds the log prefix
recovery must keep (section 5).

**Parallel-reorganization extension** (the paper's future work, section 9):
the table naturally generalizes to one `(begin LSN, recent LSN)` row per
in-flight unit — "whenever a new reorganization unit starts, it puts the
LSN of its BEGIN log record into this table" already reads that way.  The
single-unit API (``begin_lsn`` / ``recent_lsn`` / ``unit_logged``) keeps
working when at most one unit is in flight, which is the paper's base
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReorgError

#: LK value meaning "no unit has finished yet": below every real key.
NO_KEY_YET = -(2**62)


@dataclass
class ProgressSnapshot:
    """Immutable copy of the table, as stored in a checkpoint record."""

    largest_finished_key: int
    begin_lsn: int  # min over in-flight units; 0 when none
    recent_lsn: int  # of the single unit; 0 when none or ambiguous
    #: Parallel extension: every in-flight unit as (unit_id, begin, recent).
    units: tuple[tuple[int, int, int], ...] = ()


class ReorgProgressTable:
    """The tiny system table tracking reorganization progress."""

    def __init__(self):
        self._largest_finished_key: int = NO_KEY_YET
        #: unit_id -> [begin_lsn, recent_lsn]
        self._units: dict[int, list[int]] = {}

    # -- queries ------------------------------------------------------------

    @property
    def largest_finished_key(self) -> int:
        """LK: where to restart reorganization after a failure."""
        return self._largest_finished_key

    @property
    def unit_in_flight(self) -> bool:
        return bool(self._units)

    @property
    def units_in_flight(self) -> list[int]:
        return sorted(self._units)

    @property
    def begin_lsn(self) -> int:
        """BEGIN LSN of the single in-flight unit (0 when none).

        With several units in flight (parallel extension) this is the
        minimum — the low-water bound recovery needs.
        """
        if not self._units:
            return 0
        return min(begin for begin, _ in self._units.values())

    @property
    def recent_lsn(self) -> int:
        """LSN to use as prev_lsn for the single unit's next log record."""
        if not self._units:
            return 0
        if len(self._units) > 1:
            raise ReorgError(
                "recent_lsn is ambiguous with several units in flight; "
                "use recent_lsn_of(unit_id)"
            )
        (_, recent), = self._units.values()
        return recent

    def recent_lsn_of(self, unit_id: int) -> int:
        try:
            return self._units[unit_id][1]
        except KeyError:
            raise ReorgError(f"unit {unit_id} is not in flight") from None

    def begin_lsn_of(self, unit_id: int) -> int:
        try:
            return self._units[unit_id][0]
        except KeyError:
            raise ReorgError(f"unit {unit_id} is not in flight") from None

    @property
    def unit_id(self) -> int:
        if len(self._units) != 1:
            return 0
        return next(iter(self._units))

    def low_water_lsn(self, txn_low_water: int) -> int:
        """Lowest LSN that must stay available for recovery.

        The minimum of every in-flight unit's BEGIN LSN and the transaction
        low-water mark ([GR93]), per section 5.
        """
        if self.unit_in_flight:
            return min(self.begin_lsn, txn_low_water)
        return txn_low_water

    def snapshot(self) -> ProgressSnapshot:
        units = tuple(
            (unit_id, begin, recent)
            for unit_id, (begin, recent) in sorted(self._units.items())
        )
        single_recent = (
            units[0][2] if len(units) == 1 else 0
        )
        return ProgressSnapshot(
            self._largest_finished_key,
            self.begin_lsn,
            single_recent,
            units,
        )

    # -- lifecycle ------------------------------------------------------------

    def unit_started(self, unit_id: int, begin_lsn: int) -> None:
        """A unit wrote its BEGIN record."""
        if unit_id in self._units:
            raise ReorgError(f"unit {unit_id} is already in flight")
        if begin_lsn <= 0:
            raise ReorgError("begin LSN must be positive")
        self._units[unit_id] = [begin_lsn, begin_lsn]

    def unit_logged(self, lsn: int, unit_id: int | None = None) -> None:
        """An in-flight unit wrote another record."""
        if not self._units:
            raise ReorgError("no unit in flight")
        if unit_id is None:
            if len(self._units) > 1:
                raise ReorgError(
                    "unit_id required with several units in flight"
                )
            unit_id = next(iter(self._units))
        entry = self._units.get(unit_id)
        if entry is None:
            raise ReorgError(f"unit {unit_id} is not in flight")
        if lsn <= entry[1]:
            raise ReorgError(f"LSN {lsn} does not advance past {entry[1]}")
        entry[1] = lsn

    def unit_finished(self, largest_key: int, unit_id: int | None = None) -> None:
        """The unit wrote END: deletes its entry and advances LK."""
        unit_id = self._resolve(unit_id)
        del self._units[unit_id]
        self._largest_finished_key = max(self._largest_finished_key, largest_key)

    def unit_aborted(self, unit_id: int | None = None) -> None:
        """The unit was undone (deadlock victim); LK does not advance."""
        unit_id = self._resolve(unit_id)
        del self._units[unit_id]

    def _resolve(self, unit_id: int | None) -> int:
        if not self._units:
            raise ReorgError("no unit in flight")
        if unit_id is None:
            if len(self._units) > 1:
                raise ReorgError("unit_id required with several units in flight")
            return next(iter(self._units))
        if unit_id not in self._units:
            raise ReorgError(f"unit {unit_id} is not in flight")
        return unit_id

    # -- crash recovery ---------------------------------------------------------

    def restore(self, snapshot: ProgressSnapshot) -> None:
        """Reload the table from a checkpoint record."""
        self._largest_finished_key = snapshot.largest_finished_key
        self._units = {}
        if snapshot.units:
            for unit_id, begin, recent in snapshot.units:
                self._units[unit_id] = [begin, recent]
        elif snapshot.begin_lsn:
            # Legacy single-unit snapshot without unit ids.
            self._units[0] = [snapshot.begin_lsn, snapshot.recent_lsn]

    def crash(self) -> None:
        """The table is volatile: a crash clears it (recovery restores it)."""
        self._largest_finished_key = NO_KEY_YET
        self._units = {}
