"""The log manager: append, flush, crash, and scan.

A standard WAL split into a *stable prefix* (survives crashes) and a
*volatile tail* (lost on crash).  ``append`` assigns monotonically increasing
LSNs starting at 1; ``flush`` advances the stable boundary; ``crash``
truncates the tail.  The buffer pool calls :meth:`LogManager.flush` before
page writes (write-ahead rule) via the :class:`repro.storage.buffer.WALHook`
protocol.

Byte accounting feeds benchmark E4: every append adds the record's simulated
size (see :meth:`repro.wal.records.LogRecord.log_bytes`) to per-category
totals, so the careful-writing vs. full-contents comparison can be read
straight off :attr:`LogStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LogError
from repro.metrics import StatsDeltaMixin
from repro.wal.records import (
    CheckpointRecord,
    LogRecord,
    ReorgMoveInRecord,
    ReorgMoveOutRecord,
    ReorgRecord,
    ReorgSwapRecord,
)


@dataclass
class LogStats(StatsDeltaMixin):
    """Byte and record counters, by category.

    ``flushes`` counts stable-boundary advances (device flushes);
    ``absorbed_flushes`` counts flush requests that found their target LSN
    already stable because an earlier group-commit flush over-advanced the
    boundary (see :class:`LogManager`'s ``group_commit_window``).
    """

    records_appended: int = 0
    bytes_appended: int = 0
    reorg_records: int = 0
    reorg_bytes: int = 0
    move_bytes: int = 0
    swap_bytes: int = 0
    flushes: int = 0
    absorbed_flushes: int = 0

    def reset(self) -> None:
        self.records_appended = 0
        self.bytes_appended = 0
        self.reorg_records = 0
        self.reorg_bytes = 0
        self.move_bytes = 0
        self.swap_bytes = 0
        self.flushes = 0
        self.absorbed_flushes = 0


class LogManager:
    """Append-only simulated write-ahead log.

    ``group_commit_window`` > 0 enables group commit: a flush request for
    LSN L advances the stable boundary to ``min(last_lsn, L + window)``,
    deliberately over-flushing so the next few requests find their records
    already stable and are *absorbed* instead of paying another device
    flush.  Flushing more than requested is always legal — extra records
    surviving a crash can only help recovery — so the window is purely a
    cost/latency trade, never a correctness one.  0 keeps the historical
    exact-boundary behaviour.
    """

    def __init__(self, *, group_commit_window: int = 0):
        if group_commit_window < 0:
            raise LogError("group_commit_window must be >= 0")
        self._records: list[LogRecord] = []
        self._flushed_upto: int = 0  # LSN of last stable record
        self._last_checkpoint_lsn: int = 0
        self._group_window = group_commit_window
        self.stats = LogStats()

    # -- append/flush -------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        return len(self._records) + 1

    @property
    def last_lsn(self) -> int:
        return len(self._records)

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_upto

    @property
    def absorbs_flushes(self) -> bool:
        """True when group commit is on and flush requests for already-stable
        LSNs must still reach :meth:`flush` to be counted as absorbed."""
        return self._group_window > 0

    @property
    def last_checkpoint_lsn(self) -> int:
        return self._last_checkpoint_lsn

    def append(self, record: LogRecord) -> int:
        """Assign the next LSN to ``record`` and append it (volatile)."""
        record.lsn = lsn = len(self._records) + 1
        self._records.append(record)
        size = record.log_bytes()
        stats = self.stats
        stats.records_appended += 1
        stats.bytes_appended += size
        if record.is_reorg:
            stats.reorg_records += 1
            stats.reorg_bytes += size
            record_type = type(record)
            if record_type is ReorgMoveInRecord or record_type is ReorgMoveOutRecord:
                stats.move_bytes += size
            elif record_type is ReorgSwapRecord:
                stats.swap_bytes += size
        elif type(record) is CheckpointRecord:
            self._last_checkpoint_lsn = lsn
        return lsn

    def flush(self, up_to_lsn: int | None = None) -> None:
        """Make records with LSN <= ``up_to_lsn`` stable (default: all).

        With group commit on, the boundary advances ``group_commit_window``
        LSNs past the request (capped at the log end); a request already
        covered by an earlier over-advance is counted as absorbed.
        """
        target = self.last_lsn if up_to_lsn is None else min(up_to_lsn, self.last_lsn)
        if target <= self._flushed_upto:
            # ``target > 0`` keeps vacuous requests (a never-logged page's
            # page_lsn of 0) out of the absorption count.
            if self._group_window and up_to_lsn is not None and target > 0:
                self.stats.absorbed_flushes += 1
            return
        if self._group_window:
            target = min(self.last_lsn, target + self._group_window)
        self._flushed_upto = target
        self.stats.flushes += 1

    # -- crash / recovery scan ------------------------------------------------

    def crash(self) -> None:
        """Drop the volatile tail; only flushed records survive."""
        del self._records[self._flushed_upto :]
        # A checkpoint that never reached the disk is gone too.
        if self._last_checkpoint_lsn > self._flushed_upto:
            self._last_checkpoint_lsn = self._find_last_checkpoint()

    def _find_last_checkpoint(self) -> int:
        for record in reversed(self._records):
            if isinstance(record, CheckpointRecord):
                return record.lsn
        return 0

    def truncate(self, before_lsn: int) -> int:
        """Discard records with LSN < ``before_lsn`` (log reclamation).

        Section 5: the reorg progress table's BEGIN LSN, "together with the
        transaction low-water mark [GR93], can be used to calculate the
        low-water mark for system recovery — i.e., the lowest LSN that must
        be kept available for recovery."  Truncating up to that mark is
        safe; truncating past it makes recovery fail loudly
        (:class:`~repro.errors.LogCorruptionError`) instead of silently.

        Returns the number of records discarded.
        """
        cutoff = min(before_lsn, self.last_lsn + 1)
        discarded = 0
        for index in range(cutoff - 1):
            if self._records[index] is not None:
                self._records[index] = None
                discarded += 1
        return discarded

    def get(self, lsn: int) -> LogRecord:
        """Fetch one record by LSN."""
        if not 1 <= lsn <= self.last_lsn:
            raise LogError(f"LSN {lsn} out of range [1, {self.last_lsn}]")
        record = self._records[lsn - 1]
        if record is None:
            from repro.errors import LogCorruptionError

            raise LogCorruptionError(
                f"LSN {lsn} was truncated away (below the low-water mark?)"
            )
        if record.lsn != lsn:
            raise LogError(f"log integrity failure at LSN {lsn}")
        return record

    def records_from(self, lsn: int) -> Iterator[LogRecord]:
        """Yield records with LSN >= ``lsn`` in log order (skipping
        truncated positions)."""
        start = max(lsn, 1)
        for record in self._records[start - 1 :]:
            if record is not None:
                yield record

    def walk_chain(self, lsn: int) -> Iterator[LogRecord]:
        """Follow the prev_lsn chain backwards starting at ``lsn``."""
        cursor = lsn
        while cursor > 0:
            record = self.get(cursor)
            yield record
            cursor = record.prev_lsn

    def __len__(self) -> int:
        return len(self._records)
