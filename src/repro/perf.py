"""Near-zero-overhead performance counters and section timers.

The related B+-tree performance literature (FB+-tree, arXiv:2503.23397;
BS-tree, arXiv:2505.01180) locates most index time on *uncontended* hot
paths: in-node key search, latch acquisition that never blocks, and cache
lookups that hit.  This module makes those paths visible in the simulator:
the lock manager, buffer pool and discrete-event scheduler each bump a
couple of plain integer slots here, and the benchmark harness
(``benchmarks/perf_harness.py``) snapshots them into ``BENCH_<n>.json``.

Two kinds of instrumentation with different guarantees:

* :class:`PerfCounters` — integer event counts.  These are a pure function
  of the workload and its seeds, so identical seeded runs produce identical
  snapshots (asserted by ``tests/perf/test_perf_counters.py``).  Cost per
  event is one attribute increment on a ``__slots__`` object.
* :class:`PerfTimers` — accumulated wall-clock per named section via
  ``time.perf_counter``.  Timers are *not* deterministic and are kept out
  of the counter snapshot; they feed derived rates like events/sec.

A single module-level registry :data:`PERF` is shared by every Database in
the process (the simulator is single-threaded); ``PERF.reset()`` between
measured phases scopes the numbers.

The batched-I/O layer (group commit, elevator write-back, readahead) keeps
its accounting *off* this registry on purpose: its counters live on the
objects that own the behaviour (``IOStats.batch_reads``/``write_cost``,
``LogStats.absorbed_flushes``, ``BufferPool.prefetch_hits`` et al.), so the
``PERF.counters.snapshot()`` dict recorded in ``BENCH_<n>.json`` keeps the
exact same keys across benchmark generations and flags-off runs stay
byte-comparable against older baselines.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class PerfCounters:
    """Deterministic event counters for the four hot subsystems."""

    __slots__ = (
        #: Scheduler heap events executed by :meth:`Scheduler.run`.
        "des_events",
        #: Generator resume calls (:meth:`Scheduler._step` invocations).
        "des_steps",
        #: Lock requests granted by the uncontended-acquire fast path.
        "lock_fast_grants",
        #: Lock requests granted immediately by the full conflict scan.
        "lock_slow_grants",
        #: Lock requests that had to enqueue and wait.
        "lock_waits",
        #: Buffer pool fetches served from a resident frame.
        "buffer_hits",
        #: Buffer pool fetches that went to the simulated disk.
        "buffer_misses",
        #: Hits on the most-recently-used frame (LRU bookkeeping skipped).
        "buffer_mru_hits",
        #: Page flushes that skipped the WAL call (page_lsn <= flushed_lsn).
        "wal_flush_skips",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Copy of every counter; deterministic under fixed seeds."""
        return {name: getattr(self, name) for name in self.__slots__}

    # -- derived rates -------------------------------------------------------

    @property
    def buffer_hit_rate(self) -> float:
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0

    @property
    def lock_fast_path_rate(self) -> float:
        total = self.lock_fast_grants + self.lock_slow_grants + self.lock_waits
        return self.lock_fast_grants / total if total else 0.0


class GapStats:
    """Leaf split / gap-absorption counters for the gapped-leaf layout.

    Like the batched-I/O counters, these live *off* :class:`PerfCounters`
    (whose ``__slots__`` snapshot keys are pinned by the BENCH baselines)
    and out of :meth:`PerfRegistry.snapshot`; the ``churn_daemon`` bench
    workload and the gapped-leaf tests read ``PERF.gap`` explicitly.
    ``leaf_splits``/``internal_splits`` are bumped unconditionally (they
    are what the gapped and ungapped runs are compared on);
    ``absorbed_inserts`` counts inserts that landed in slack a gapless
    layout would not have had, and ``gapped_leaves_built`` counts leaves
    built with a non-zero reserved gap.
    """

    __slots__ = (
        "leaf_splits",
        "internal_splits",
        "absorbed_inserts",
        "gapped_leaves_built",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class PerfTimers:
    """Wall-clock accumulation per named section (non-deterministic)."""

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + seconds

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def snapshot(self) -> dict[str, float]:
        return dict(self._totals)

    def reset(self) -> None:
        self._totals.clear()


class PerfRegistry:
    """Counters + timers + the rates derived from both."""

    def __init__(self) -> None:
        self.counters = PerfCounters()
        self.timers = PerfTimers()
        #: Per-shard counter bags registered by :mod:`repro.shard`.  Kept
        #: off :class:`PerfCounters` (whose snapshot keys are pinned by the
        #: BENCH baselines) and out of :meth:`snapshot`; the bench harness
        #: reads them explicitly via :meth:`shard_snapshot`.
        self.shards: dict[str, object] = {}
        #: Split/absorption counters of the gapped-leaf layout; same
        #: off-snapshot contract as :attr:`shards`.
        self.gap = GapStats()

    def register_shard(self, name: str, stats: object) -> None:
        """Expose one shard's :class:`repro.metrics.ShardStats` here."""
        self.shards[name] = stats

    def shard_snapshot(self) -> dict[str, dict]:
        return {
            name: stats.snapshot() for name, stats in sorted(self.shards.items())
        }

    def reset(self) -> None:
        self.counters.reset()
        self.timers.reset()
        self.shards.clear()
        self.gap.reset()

    def events_per_second(self) -> float:
        """DES throughput over the accumulated ``scheduler.run`` time."""
        elapsed = self.timers.total("scheduler.run")
        return self.counters.des_events / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> dict:
        """Everything at once; ``counters`` is the deterministic part."""
        return {
            "counters": self.counters.snapshot(),
            "timers": {
                name: round(total, 6)
                for name, total in self.timers.snapshot().items()
            },
            "derived": {
                "buffer_hit_rate": round(self.counters.buffer_hit_rate, 4),
                "lock_fast_path_rate": round(
                    self.counters.lock_fast_path_rate, 4
                ),
                "events_per_second": round(self.events_per_second(), 1),
            },
        }


#: Process-wide registry; the simulator is single-threaded, so one is enough.
PERF = PerfRegistry()
