"""Snapshot/delta arithmetic shared by the mutable stats dataclasses.

:class:`~repro.storage.disk.IOStats` and :class:`~repro.wal.log.LogStats`
are plain mutable counter bags that benchmarks sample before and after a
measured phase.  Hand-copying each field at every sample site proved
error-prone (a new counter silently drops out of every existing
measurement), so both inherit :class:`StatsDeltaMixin`:

    before = disk.stats.snapshot()
    ...measured work...
    spent = disk.stats.delta(before)     # {"reads": 412, ...}

``snapshot`` returns every dataclass field by name; ``delta`` subtracts a
prior snapshot field-wise, so adding a counter automatically threads it
through every measurement.
"""

from __future__ import annotations

import dataclasses


class StatsDeltaMixin:
    """snapshot()/delta() over all dataclass fields of the subclass."""

    def snapshot(self) -> dict[str, int | float]:
        """Current value of every counter field, by name."""
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)  # type: ignore[arg-type]
        }

    def delta(self, since: dict[str, int | float]) -> dict[str, int | float]:
        """Field-wise difference against an earlier :meth:`snapshot`.

        Fields added since the snapshot was taken (e.g. a snapshot loaded
        from an old JSON file) are treated as starting from zero.
        """
        now = self.snapshot()
        return {name: value - since.get(name, 0) for name, value in now.items()}


@dataclasses.dataclass
class ShardStats(StatsDeltaMixin):
    """Per-shard routing and reorganization counters.

    One instance lives on each :class:`repro.shard.ShardHandle`; the
    sharded facade aggregates them.  Deliberately *not* part of
    :class:`repro.perf.PerfCounters` — its ``__slots__`` snapshot keys are
    pinned by the BENCH baselines — so these follow the batched-I/O
    precedent of living on the object that owns the behaviour.
    """

    routed_inserts: int = 0
    routed_deletes: int = 0
    routed_lookups: int = 0
    scan_fragments: int = 0
    scan_records: int = 0
    reorg_units: int = 0
    reorg_makespan: float = 0.0

    def reset(self) -> None:
        for f in dataclasses.fields(self):
            setattr(self, f.name, type(f.default)())


@dataclasses.dataclass
class FragmentationStats(StatsDeltaMixin):
    """Live fill-factor / split-rate tracker for one tree (or shard).

    One instance lives on each :class:`repro.shard.ShardHandle` (and on
    :class:`repro.db.Database` for the unsharded case); the tree accessor
    wires it onto every :class:`repro.btree.tree.BPlusTree` it hands out,
    and the tree's insert/delete/split/free paths bump the counters with
    plain attribute arithmetic — no I/O, so the default path stays
    byte-identical to the pinned BENCH counters.

    ``records``/``leaves`` are maintained incrementally and are exact for
    ordinary insert/delete traffic, but the reorganization passes move
    records and free pages *below* the tree API, so consumers that need an
    absolute fill factor (the auto-reorg daemon, tests) call
    :meth:`sync_from_tree` after a build or a reorg to re-baseline.  Until
    the first sync both are deltas from zero and ``fill_factor`` is
    meaningless; ``synced`` says which regime the instance is in.
    """

    inserts: int = 0
    deletes: int = 0
    leaf_splits: int = 0
    absorbed_inserts: int = 0
    records: int = 0
    leaves: int = 0
    #: Slots counted per leaf by :attr:`fill_factor` — the *packed*
    #: capacity (``gapped_leaf_fill(config, 1.0)``), so a gapped layout's
    #: intended slack does not read as fragmentation: a freshly built
    #: gapped tree has fill 1.0, and inserts absorbed into the gap push
    #: it (harmlessly) above 1.0.  Equals ``leaf_capacity`` when the gap
    #: is 0.
    leaf_capacity: int = 0
    reorgs_triggered: int = 0
    synced: bool = False
    #: ``leaf_splits`` at the last :meth:`sync_from_tree`; every split
    #: since then allocated a leaf out of key order, so
    #: :attr:`splits_since_sync` is the live disk-order-scatter signal
    #: (fill factor alone cannot see scatter).
    splits_at_sync: int = 0

    @property
    def fill_factor(self) -> float:
        """Live records / (leaves * packed capacity); 1.0 when unknowable."""
        slots = self.leaves * self.leaf_capacity
        return self.records / slots if slots > 0 else 1.0

    @property
    def fragmentation(self) -> float:
        """1 - fill_factor: the daemon's trigger metric."""
        return 1.0 - self.fill_factor

    @property
    def split_rate(self) -> float:
        """Leaf splits per insert since the last reset."""
        return self.leaf_splits / self.inserts if self.inserts else 0.0

    @property
    def splits_since_sync(self) -> int:
        """Leaf splits since the last re-baseline (scatter proxy)."""
        return self.leaf_splits - self.splits_at_sync

    def sync_from_tree(self, tree) -> None:
        """Re-baseline ``records``/``leaves`` from the tree itself.

        Walks the tree (buffer-pool reads — deterministic, but *not* free:
        never called on the default path, only by the daemon and tests).
        """
        from repro.config import gapped_leaf_fill

        leaf_ids = tree.leaf_ids_in_key_order()
        self.leaves = len(leaf_ids)
        self.records = sum(
            tree.store.get_leaf(page_id).num_items for page_id in leaf_ids
        )
        self.leaf_capacity = gapped_leaf_fill(tree.config, 1.0)
        self.splits_at_sync = self.leaf_splits
        self.synced = True

    def reset(self) -> None:
        for f in dataclasses.fields(self):
            setattr(self, f.name, type(f.default)())
