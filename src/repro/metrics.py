"""Snapshot/delta arithmetic shared by the mutable stats dataclasses.

:class:`~repro.storage.disk.IOStats` and :class:`~repro.wal.log.LogStats`
are plain mutable counter bags that benchmarks sample before and after a
measured phase.  Hand-copying each field at every sample site proved
error-prone (a new counter silently drops out of every existing
measurement), so both inherit :class:`StatsDeltaMixin`:

    before = disk.stats.snapshot()
    ...measured work...
    spent = disk.stats.delta(before)     # {"reads": 412, ...}

``snapshot`` returns every dataclass field by name; ``delta`` subtracts a
prior snapshot field-wise, so adding a counter automatically threads it
through every measurement.
"""

from __future__ import annotations

import dataclasses


class StatsDeltaMixin:
    """snapshot()/delta() over all dataclass fields of the subclass."""

    def snapshot(self) -> dict[str, int | float]:
        """Current value of every counter field, by name."""
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)  # type: ignore[arg-type]
        }

    def delta(self, since: dict[str, int | float]) -> dict[str, int | float]:
        """Field-wise difference against an earlier :meth:`snapshot`.

        Fields added since the snapshot was taken (e.g. a snapshot loaded
        from an old JSON file) are treated as starting from zero.
        """
        now = self.snapshot()
        return {name: value - since.get(name, 0) for name, value in now.items()}


@dataclasses.dataclass
class ShardStats(StatsDeltaMixin):
    """Per-shard routing and reorganization counters.

    One instance lives on each :class:`repro.shard.ShardHandle`; the
    sharded facade aggregates them.  Deliberately *not* part of
    :class:`repro.perf.PerfCounters` — its ``__slots__`` snapshot keys are
    pinned by the BENCH baselines — so these follow the batched-I/O
    precedent of living on the object that owns the behaviour.
    """

    routed_inserts: int = 0
    routed_deletes: int = 0
    routed_lookups: int = 0
    scan_fragments: int = 0
    scan_records: int = 0
    reorg_units: int = 0
    reorg_makespan: float = 0.0

    def reset(self) -> None:
        for f in dataclasses.fields(self):
            setattr(self, f.name, type(f.default)())
