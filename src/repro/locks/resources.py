"""Canonical lock resource names.

Every lockable thing in the system is identified by a small tuple so that
the lock manager can stay generic.  Using constructor functions (rather than
ad-hoc tuples at call sites) keeps the namespaces straight:

* ``tree_lock(name)`` — the large-granularity tree lock of section 4.  The
  old and the new B+-tree have *distinct* lock names (section 7.4), which is
  what lets the switch protocol drain old-tree transactions by X-locking the
  old name while new work proceeds under the new name.
* ``page_lock(pid)`` — one lock per page (base pages and leaf pages).
* ``record_lock(key)`` — record-level locks for readers/updaters doing
  record-level locking [GR93].
* ``sidefile_lock()`` — the side file as a table (IX by updaters, X by the
  reorganizer during the switch, section 7.2/7.4).
* ``sidefile_key(key)`` — record-level lock on one side-file entry.
"""

from __future__ import annotations

from repro.storage.page import PageId

TREE = "tree"
PAGE = "page"
RECORD = "record"
SIDE_FILE = "sidefile"
SIDE_FILE_KEY = "sidefile-key"


def tree_lock(name: str) -> tuple[str, str]:
    return (TREE, name)


def page_lock(page_id: PageId) -> tuple[str, PageId]:
    return (PAGE, page_id)


def record_lock(key: int) -> tuple[str, int]:
    return (RECORD, key)


def sidefile_lock(name: str = "") -> tuple:
    """The side file as a table.

    The default is the single global side file; a sharded database gives
    each shard its own side file named after the shard's tree, so shard
    switches only drain updaters of their own shard.
    """
    if not name:
        return (SIDE_FILE,)
    return (SIDE_FILE, name)


def sidefile_key(key: int) -> tuple[str, int]:
    return (SIDE_FILE_KEY, key)
