"""Locking: Table-1 modes, the lock manager, deadlock handling, resources."""

from repro.locks.manager import (
    LockManager,
    LockRequest,
    LockStats,
    RequestState,
)
from repro.locks.modes import (
    GRANTED_ORDER,
    LockMode,
    REQUESTED_ORDER,
    can_upgrade,
    compatibility_cell,
    compatible,
    format_table,
)
from repro.locks.resources import (
    page_lock,
    record_lock,
    sidefile_key,
    sidefile_lock,
    tree_lock,
)

__all__ = [
    "GRANTED_ORDER",
    "LockManager",
    "LockMode",
    "LockRequest",
    "LockStats",
    "REQUESTED_ORDER",
    "RequestState",
    "can_upgrade",
    "compatibility_cell",
    "compatible",
    "format_table",
    "page_lock",
    "record_lock",
    "sidefile_key",
    "sidefile_lock",
    "tree_lock",
]
