"""Lock modes and the paper's Table 1 compatibility matrix.

The paper (section 4) uses the classical modes IS, IX, S, X plus three new
modes for the reorganizer:

* **R** — held by the reorganizer on *base pages* whose children are in a
  reorganization unit, while it reads them.  Compatible with S in both
  directions, so readers and the reorganizer can share base pages.
* **RX** — held by the reorganizer on the *leaf pages* of a unit while it
  moves records.  "The RX mode is not compatible with any lock mode.  RX is
  not the same as X, because the action of the lock manager when a
  conflicting request arrives is different": the conflicting requester does
  not wait; it forgoes the request, releases its base-page lock, and asks
  for an instant-duration RS lock on the base page instead.
* **RS** — an *unconditional instant-duration* mode requested by blocked
  readers/updaters on the base page.  "Not compatible with R"; it is never
  actually granted — the lock call returns success once it becomes
  grantable, which is exactly when the reorganizer has finished with the
  base page.

Table 1 reconstruction
----------------------

The paper leaves some cells blank: "the two lock modes won't be requested
together by different requesters.  (This happens when, for example, one lock
mode is only used on leaf pages and another only on base pages.)"  The
supplied text's rendering of the table is corrupted, so the matrix below is
reconstructed from the prose constraints, which pin every cell:

* mode usage sites — IS/IX: tree lock and leaf pages; S: tree descent (base
  pages) and leaf pages; X: base pages and leaf pages (and the tree/side
  file at switch time); R: base pages only; RX: leaf pages only; RS: base
  pages only.  Cells whose modes share no site are blank.  R-R, RX-RX,
  R-RX and RX-R are blank as well because there is a single reorganization
  process (section 5: "we are doing reorganization using one process").
* explicit prose cells — S/R and R/S are Yes; RX row and column are No
  everywhere they are defined; RS conflicts with R (and with X, since the
  reorganizer holds X on the base page during the short key-update step);
  an updater's X request on a base page held R "will wait for a
  reorganizer", so R/X is No.

Requesting a blank pairing raises
:class:`~repro.errors.LockProtocolViolation`, surfacing protocol bugs
instead of silently choosing an answer the paper never defined.
"""

from __future__ import annotations

import enum

from repro.errors import LockProtocolViolation


class LockMode(enum.Enum):
    """The seven lock modes of paper Table 1."""

    IS = "IS"
    IX = "IX"
    S = "S"
    X = "X"
    R = "R"
    RX = "RX"
    RS = "RS"

    def __repr__(self) -> str:
        return self.value

    # Members are singletons, so identity hashing is equivalent to the
    # default name-based hash — but runs as a C slot instead of a Python
    # call.  Lock tables hash modes on every request/release.
    __hash__ = object.__hash__


_Y, _N, _B = True, False, None  # Yes / No / blank ("never requested together")

#: Table 1: ``_COMPAT[granted][requested]``.  ``None`` cells are blank.
_COMPAT: dict[LockMode, dict[LockMode, bool | None]] = {
    LockMode.IS: {
        LockMode.IS: _Y, LockMode.IX: _Y, LockMode.S: _Y, LockMode.X: _N,
        LockMode.R: _B, LockMode.RX: _N, LockMode.RS: _B,
    },
    LockMode.IX: {
        LockMode.IS: _Y, LockMode.IX: _Y, LockMode.S: _N, LockMode.X: _N,
        LockMode.R: _B, LockMode.RX: _N, LockMode.RS: _B,
    },
    LockMode.S: {
        LockMode.IS: _Y, LockMode.IX: _N, LockMode.S: _Y, LockMode.X: _N,
        LockMode.R: _Y, LockMode.RX: _N, LockMode.RS: _Y,
    },
    LockMode.X: {
        LockMode.IS: _N, LockMode.IX: _N, LockMode.S: _N, LockMode.X: _N,
        LockMode.R: _N, LockMode.RX: _N, LockMode.RS: _N,
    },
    LockMode.R: {
        LockMode.IS: _B, LockMode.IX: _B, LockMode.S: _Y, LockMode.X: _N,
        LockMode.R: _B, LockMode.RX: _B, LockMode.RS: _N,
    },
    LockMode.RX: {
        LockMode.IS: _N, LockMode.IX: _N, LockMode.S: _N, LockMode.X: _N,
        LockMode.R: _B, LockMode.RX: _B, LockMode.RS: _B,
    },
    # RS is never *held* ("as an instant duration lock, it is never actually
    # granted"), so it has no granted-row.
}

#: Upgrade lattice used by lock conversion: which conversions are legal.
#: The reorganizer converts R -> X to post base-page changes (section 4.1.1);
#: readers may upgrade S -> X is not used, but updaters upgrade IX -> X and
#: IS -> S in classical protocols, and S -> X occurs in Bayer-Scholnick
#: descent restarts.  We admit the classical lattice plus R -> X.
_UPGRADES: set[tuple[LockMode, LockMode]] = {
    (LockMode.IS, LockMode.IX),
    (LockMode.IS, LockMode.S),
    (LockMode.IS, LockMode.X),
    (LockMode.IX, LockMode.X),
    (LockMode.S, LockMode.X),
    (LockMode.R, LockMode.X),
}


def compatible(granted: LockMode, requested: LockMode) -> bool:
    """Table 1 lookup.  Blank cells raise, per the module docstring."""
    if granted is LockMode.RS:
        raise LockProtocolViolation(
            "RS is an instant-duration mode and is never held"
        )
    cell = _COMPAT[granted][requested]
    if cell is None:
        raise LockProtocolViolation(
            f"modes {granted.value} (granted) and {requested.value} "
            f"(requested) are never requested together (Table 1 blank cell)"
        )
    return cell


def compatibility_cell(granted: LockMode, requested: LockMode) -> bool | None:
    """Raw Table 1 cell: True (Yes), False (No) or None (blank).

    Used by the Table 1 reproduction benchmark to print the matrix exactly
    as the paper shows it.
    """
    if granted is LockMode.RS:
        return None
    return _COMPAT[granted][requested]


def can_upgrade(held: LockMode, target: LockMode) -> bool:
    """Whether ``held`` may be converted in place to ``target``."""
    return held is target or (held, target) in _UPGRADES


#: Row/column orders used when printing the matrix like the paper does.
GRANTED_ORDER = [
    LockMode.IS, LockMode.IX, LockMode.S, LockMode.X, LockMode.R, LockMode.RX,
]
REQUESTED_ORDER = [
    LockMode.IS, LockMode.IX, LockMode.S, LockMode.X, LockMode.R,
    LockMode.RX, LockMode.RS,
]


def format_table() -> str:
    """Render Table 1 as the paper prints it (Yes / No / blank)."""
    width = 5
    header = "Granted".ljust(9) + "".join(
        m.value.center(width) for m in REQUESTED_ORDER
    )
    lines = [header]
    for granted in GRANTED_ORDER:
        cells = []
        for requested in REQUESTED_ORDER:
            cell = compatibility_cell(granted, requested)
            text = "" if cell is None else ("Yes" if cell else "No")
            cells.append(text.center(width))
        lines.append(granted.value.ljust(9) + "".join(cells))
    return "\n".join(lines)
