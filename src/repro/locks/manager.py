"""The lock manager.

Implements the paper's locking machinery (section 4):

* grants and FIFO wait queues over arbitrary hashable resources (the tree
  lock, page locks, record locks, the side file and its keys);
* **RX conflict signalling** — a request that conflicts with a *held* RX
  lock is not enqueued; the requester is told to forgo it
  (:class:`~repro.errors.RXConflictError`), so it can run the paper's
  back-off protocol: release the base-page lock and wait via an
  unconditional instant-duration RS lock;
* **instant-duration requests** — "the lock is not to be actually granted,
  but the lock manager has to delay returning the lock call with the
  success status until the lock becomes grantable" ([Moh90]);
* **conversions** (R -> X for posting base-page updates, S -> X, ...) with
  priority over queued requests;
* **deadlock detection** over a waits-for graph, with the paper's victim
  policy: "Whenever the reorganizer gets in a deadlock, we always force the
  reorganizer to give up its lock."

The manager is synchronous and scheduler-agnostic: ``request`` returns a
:class:`LockRequest` whose state is GRANTED, WAITING, or (for instant
requests that could be satisfied immediately) INSTANT_DONE.  The
discrete-event scheduler attaches ``on_grant`` / ``on_deadlock`` callbacks
to waiting requests and is woken by them.
"""

from __future__ import annotations

import enum
import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from repro.errors import (
    LockNotHeldError,
    LockProtocolViolation,
    RXConflictError,
)
from repro.locks.modes import LockMode, can_upgrade, compatible
from repro.perf import PERF

#: See storage/buffer.py: reset() clears in place, the alias stays valid.
_COUNTERS = PERF.counters

Resource = Hashable
Owner = Hashable


class RequestState(enum.Enum):
    GRANTED = "granted"
    WAITING = "waiting"
    #: An instant-duration request that was satisfiable at once (or became
    #: so later): success was reported but nothing is held.
    INSTANT_DONE = "instant_done"
    #: Chosen as a deadlock victim while waiting.
    DEADLOCK = "deadlock"
    #: Cancelled by the owner (e.g. RX back-off releases its request).
    CANCELLED = "cancelled"


@dataclass(slots=True)
class LockRequest:
    """One lock (or conversion) request and its lifecycle."""

    owner: Owner
    resource: Resource
    mode: LockMode
    instant: bool = False
    #: For conversions: the mode being upgraded from (None = fresh request).
    convert_from: LockMode | None = None
    state: RequestState = RequestState.WAITING
    on_grant: Callable[["LockRequest"], None] | None = None
    on_deadlock: Callable[["LockRequest"], None] | None = None
    _seq: int = field(default_factory=itertools.count().__next__)

    @property
    def done(self) -> bool:
        return self.state in (RequestState.GRANTED, RequestState.INSTANT_DONE)


@dataclass
class LockStats:
    """Counters for the concurrency benchmarks (E2, E5)."""

    requests: int = 0
    immediate_grants: int = 0
    #: Immediate grants that skipped the conflict scan entirely (the
    #: resource had no holders and no waiters).  Subset of
    #: ``immediate_grants``.
    fast_path_grants: int = 0
    waits: int = 0
    rx_rejections: int = 0
    deadlocks: int = 0
    conversions: int = 0

    def reset(self) -> None:
        self.requests = 0
        self.immediate_grants = 0
        self.fast_path_grants = 0
        self.waits = 0
        self.rx_rejections = 0
        self.deadlocks = 0
        self.conversions = 0


class LockManager:
    """Grants, queues and converts locks per Table 1."""

    def __init__(self):
        #: resource -> owner -> Counter of held modes (ref-counted).
        self._holders: dict[Resource, dict[Owner, Counter]] = {}
        #: resource -> FIFO list of waiting requests.
        self._queues: dict[Resource, list[LockRequest]] = {}
        self.stats = LockStats()
        #: Explorer choice point (``repro.analysis.explorer``): when set,
        #: permutes a multi-entry wait queue before each dispatch scan,
        #: modelling the grant orders that different arrival interleavings
        #: would have produced.  Must return a permutation of its input.
        #: ``None`` (production) costs one attribute test per *contended*
        #: dispatch; the uncontended fast path never reaches it.
        self.grant_order: Callable[[Resource, list[LockRequest]], list[LockRequest]] | None = None
        #: Observer called as ``on_victim(cycle, victim)`` after every
        #: deadlock victim choice — the hook behind the explorer's
        #: reorganizer-is-always-victim invariant.  ``None`` in production.
        self.on_victim: Callable[[list[Owner], Owner], None] | None = None

    # -- queries ------------------------------------------------------------

    def holders_of(self, resource: Resource) -> dict[Owner, list[LockMode]]:
        held = self._holders.get(resource, {})
        return {
            owner: sorted(counts.elements(), key=lambda m: m.value)
            for owner, counts in held.items()
        }

    def rx_is_held(self, resource: Resource) -> bool:
        """Cheap probe: is any RX lock held on ``resource``?

        The optimistic read path calls this before every lock-free page
        visit to decide whether to downgrade to the Table-1 locked
        protocol, so it must not touch ``stats`` (it is not a lock-manager
        acquire call) and must not build the ``holders_of`` dicts.
        """
        held = self._holders.get(resource)
        if not held:
            return False
        return any(
            counts[LockMode.RX] > 0 for counts in held.values()
        )

    def held_modes(self, owner: Owner, resource: Resource) -> list[LockMode]:
        counts = self._holders.get(resource, {}).get(owner)
        return sorted(counts, key=lambda m: m.value) if counts else []

    def holds(self, owner: Owner, resource: Resource, mode: LockMode) -> bool:
        counts = self._holders.get(resource, {}).get(owner)
        return bool(counts) and counts[mode] > 0

    def waiters_of(self, resource: Resource) -> list[LockRequest]:
        return list(self._queues.get(resource, ()))

    def waiting_request(self, owner: Owner) -> LockRequest | None:
        for queue in self._queues.values():
            for request in queue:
                if request.owner == owner:
                    return request
        return None

    def owned_resources(self, owner: Owner) -> list[Resource]:
        return [
            resource
            for resource, held in self._holders.items()
            if owner in held
        ]

    # -- requesting -----------------------------------------------------------

    def request(
        self,
        owner: Owner,
        resource: Resource,
        mode: LockMode,
        *,
        instant: bool = False,
        on_grant: Callable[[LockRequest], None] | None = None,
        on_deadlock: Callable[[LockRequest], None] | None = None,
    ) -> LockRequest:
        """Request ``mode`` on ``resource``; returns the request object.

        State on return is GRANTED (lock held), INSTANT_DONE (instant
        request satisfiable now), or WAITING (enqueued).  A conflict with a
        held RX lock raises :class:`~repro.errors.RXConflictError` instead
        — the paper's forgo-and-back-off signal.
        """
        if mode is LockMode.RS and not instant:
            raise LockProtocolViolation(
                "RS must be requested as an instant-duration lock"
            )
        self.stats.requests += 1
        request = LockRequest(
            owner, resource, mode,
            instant=instant, on_grant=on_grant, on_deadlock=on_deadlock,
        )
        holders = self._holders
        if resource not in holders and resource not in self._queues:
            # Uncontended fast path: nothing held and nobody queued, so any
            # mode is grantable outright — skip the conflict scan and the
            # earlier-waiter check.  Table-1 outcomes are unchanged because
            # both checks are vacuous on an untouched resource.
            if instant:
                request.state = RequestState.INSTANT_DONE
            else:
                counts: Counter[LockMode] = Counter()
                counts[mode] = 1
                holders[resource] = {owner: counts}
                request.state = RequestState.GRANTED
            self.stats.immediate_grants += 1
            self.stats.fast_path_grants += 1
            _COUNTERS.lock_fast_grants += 1
            return request
        held = holders.get(resource, {})
        own_counts = held.get(owner)
        if own_counts and own_counts[mode] > 0 and not instant:
            # Re-request of an already held mode: just bump the count.
            own_counts[mode] += 1
            request.state = RequestState.GRANTED
            self.stats.immediate_grants += 1
            return request

        self._check_blank_with_waiters(owner, resource, mode)
        conflict_holder = self._first_conflicting_holder(owner, resource, mode)
        if conflict_holder is not None:
            holder_owner, holder_mode = conflict_holder
            if holder_mode is LockMode.RX:
                # Paper: "a conflicting request causes the requester to
                # forgo the conflicting request".
                self.stats.rx_rejections += 1
                raise RXConflictError(
                    f"{mode.value} request on {resource!r} conflicts with "
                    f"RX held by {holder_owner!r}",
                    resource=resource,
                    holder=holder_owner,
                )
            self._enqueue(request)
            return request

        if self._blocked_by_earlier_waiter(request):
            self._enqueue(request)
            return request

        self._grant(request)
        self.stats.immediate_grants += 1
        _COUNTERS.lock_slow_grants += 1
        return request

    def convert(
        self,
        owner: Owner,
        resource: Resource,
        to_mode: LockMode,
        *,
        on_grant: Callable[[LockRequest], None] | None = None,
        on_deadlock: Callable[[LockRequest], None] | None = None,
    ) -> LockRequest:
        """Convert a held lock to a stronger mode (e.g. R -> X, section 4.1.1).

        Conversions are queued ahead of fresh requests.  The *strongest*
        currently held convertible mode is upgraded.
        """
        held = self._holders.get(resource, {}).get(owner)
        if not held:
            raise LockNotHeldError(
                f"{owner!r} holds no lock on {resource!r} to convert"
            )
        from_mode = self._pick_conversion_source(held, to_mode)
        self.stats.requests += 1
        self.stats.conversions += 1
        request = LockRequest(
            owner, resource, to_mode,
            convert_from=from_mode, on_grant=on_grant, on_deadlock=on_deadlock,
        )
        if self._compatible_with_holders(owner, resource, to_mode):
            self._apply_conversion(request)
            request.state = RequestState.GRANTED
            self.stats.immediate_grants += 1
            return request
        if self._conflicts_with_rx(owner, resource, to_mode):
            self.stats.rx_rejections += 1
            raise RXConflictError(
                f"conversion to {to_mode.value} on {resource!r} conflicts "
                f"with a held RX lock",
                resource=resource,
            )
        # Conversions go to the front of the queue (before other
        # conversions already there stay in order).
        queue = self._queues.setdefault(resource, [])
        insert_at = 0
        while insert_at < len(queue) and queue[insert_at].convert_from is not None:
            insert_at += 1
        queue.insert(insert_at, request)
        self.stats.waits += 1
        return request

    @staticmethod
    def _pick_conversion_source(held: Counter, to_mode: LockMode) -> LockMode:
        candidates = [m for m in held if held[m] > 0 and can_upgrade(m, to_mode)]
        if not candidates:
            raise LockProtocolViolation(
                f"no held mode of {sorted(m.value for m in held if held[m] > 0)} "
                f"converts to {to_mode.value}"
            )
        # Prefer the strongest source (R over S over IX over IS) so the
        # conversion releases as little as possible.
        order = [LockMode.R, LockMode.S, LockMode.IX, LockMode.IS]
        for mode in order:
            if mode in candidates:
                return mode
        return candidates[0]

    def downgrade(
        self, owner: Owner, resource: Resource, from_mode: LockMode,
        to_mode: LockMode,
    ) -> None:
        """Replace a held lock with a weaker one, waking anyone it admits.

        Section 4.1.2 describes the classical pattern: "Often an S lock is
        first requested on the page, then the read takes place, then the S
        lock on the page is downgraded to IS lock while an S lock on the
        read record is held to the end of transaction."  Downgrades never
        wait; they can only make more requests grantable.
        """
        from repro.locks.modes import can_upgrade

        if not can_upgrade(to_mode, from_mode):
            raise LockProtocolViolation(
                f"{from_mode.value} does not downgrade to {to_mode.value}"
            )
        held = self._holders.get(resource, {})
        counts = held.get(owner)
        if not counts or counts[from_mode] <= 0:
            raise LockNotHeldError(
                f"{owner!r} does not hold {from_mode.value} on {resource!r}"
            )
        counts[from_mode] -= 1
        if counts[from_mode] == 0:
            del counts[from_mode]
        counts[to_mode] += 1
        self._dispatch(resource)

    # -- releasing -----------------------------------------------------------

    def release(self, owner: Owner, resource: Resource, mode: LockMode) -> None:
        """Release one reference to a held lock."""
        held = self._holders.get(resource, {})
        counts = held.get(owner)
        if not counts or counts[mode] <= 0:
            raise LockNotHeldError(
                f"{owner!r} does not hold {mode.value} on {resource!r}"
            )
        counts[mode] -= 1
        if counts[mode] == 0:
            del counts[mode]
        if not counts:
            del held[owner]
        if not held:
            self._holders.pop(resource, None)
        if resource in self._queues:
            self._dispatch(resource)

    def release_all(self, owner: Owner) -> None:
        """Release every lock held by ``owner`` (end of transaction)."""
        for resource in list(self._holders):
            held = self._holders[resource]
            if owner in held:
                del held[owner]
                if not held:
                    del self._holders[resource]
                if resource in self._queues:
                    self._dispatch(resource)

    def cancel_wait(self, owner: Owner) -> None:
        """Withdraw any waiting request of ``owner`` (back-off / abort)."""
        for resource, queue in list(self._queues.items()):
            kept = []
            for request in queue:
                if request.owner == owner:
                    request.state = RequestState.CANCELLED
                else:
                    kept.append(request)
            if kept:
                self._queues[resource] = kept
            else:
                self._queues.pop(resource, None)
            if len(kept) != len(queue):
                self._dispatch(resource)

    # -- crash simulation -------------------------------------------------------

    def crash(self) -> None:
        """The lock table is volatile; a crash empties it."""
        self._holders.clear()
        self._queues.clear()

    # -- deadlock detection --------------------------------------------------------

    def build_waits_for(self) -> dict[Owner, set[Owner]]:
        """Waits-for edges: waiter -> owners it is blocked by.

        A waiter is blocked by (a) every holder of a conflicting mode and
        (b) every *earlier* waiter on the same resource with a conflicting
        mode (FIFO order means it will be granted first).
        """
        graph: dict[Owner, set[Owner]] = {}
        for resource, queue in self._queues.items():
            held = self._holders.get(resource, {})
            for position, request in enumerate(queue):
                blockers: set[Owner] = set()
                for holder_owner, counts in held.items():
                    if holder_owner == request.owner:
                        continue
                    if any(
                        self._conflicts(held_mode, request.mode)
                        for held_mode in counts
                        if counts[held_mode] > 0
                    ):
                        blockers.add(holder_owner)
                for earlier in queue[:position]:
                    if earlier.owner == request.owner or earlier.instant:
                        continue
                    if self._conflicts(earlier.mode, request.mode):
                        blockers.add(earlier.owner)
                if blockers:
                    graph.setdefault(request.owner, set()).update(blockers)
        return graph

    def find_deadlock_cycle(self) -> list[Owner] | None:
        """Find one cycle in the waits-for graph, or None."""
        graph = self.build_waits_for()
        visiting: list[Owner] = []
        visited: set[Owner] = set()

        def dfs(node: Owner) -> list[Owner] | None:
            if node in visiting:
                return visiting[visiting.index(node):]
            if node in visited:
                return None
            visiting.append(node)
            for neighbour in graph.get(node, ()):
                cycle = dfs(neighbour)
                if cycle is not None:
                    return cycle
            visiting.pop()
            visited.add(node)
            return None

        for start in list(graph):
            cycle = dfs(start)
            if cycle is not None:
                return cycle
        return None

    def resolve_deadlocks(self) -> list[Owner]:
        """Detect and break all deadlock cycles; returns the victims.

        Victim choice per the paper: a reorganizer in the cycle always
        yields; otherwise the owner with the largest ``_seq``-style identity
        (we use the waiting request's sequence number, i.e. the youngest
        request) is chosen.
        """
        victims: list[Owner] = []
        while True:
            cycle = self.find_deadlock_cycle()
            if cycle is None:
                return victims
            victim = self._choose_victim(cycle)
            if self.on_victim is not None:
                self.on_victim(list(cycle), victim)
            victims.append(victim)
            self.stats.deadlocks += 1
            self._deliver_deadlock(victim)

    def _choose_victim(self, cycle: list[Owner]) -> Owner:
        reorgs = [
            owner
            for owner in cycle
            if getattr(owner, "is_reorganizer", False)
        ]
        if len(reorgs) == 1:
            return reorgs[0]
        if reorgs:
            # Several shard reorganizers deadlocked with each other: pick
            # deterministically by shard tag, then transaction id, so the
            # sharded schedule stays replayable.
            return min(
                reorgs,
                key=lambda o: (
                    str(getattr(o, "shard", None) or ""),
                    getattr(o, "txn_id", 0),
                ),
            )
        # Youngest waiting request loses.
        def seq_of(owner: Owner) -> int:
            request = self.waiting_request(owner)
            return request._seq if request is not None else -1

        return max(cycle, key=seq_of)

    def _deliver_deadlock(self, victim: Owner) -> None:
        for resource, queue in list(self._queues.items()):
            kept = []
            for request in queue:
                if request.owner == victim:
                    request.state = RequestState.DEADLOCK
                    if request.on_deadlock is not None:
                        request.on_deadlock(request)
                else:
                    kept.append(request)
            if kept:
                self._queues[resource] = kept
            else:
                self._queues.pop(resource, None)
            if len(kept) != len(queue):
                self._dispatch(resource)

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _conflicts(granted: LockMode, requested: LockMode) -> bool:
        """Permissive conflict test for scheduling decisions.

        Blank Table-1 cells cannot conflict (the pairing never occurs
        between different requesters at the same resource *kind*; if it
        shows up across kinds in the waits-for graph we treat it as
        non-blocking rather than raising mid-analysis).
        """
        if granted is LockMode.RS or requested is LockMode.RS:
            # RS is never held and an RS waiter only waits for R/X.
            if requested is LockMode.RS:
                return granted in (LockMode.R, LockMode.X)
            return False
        from repro.locks.modes import compatibility_cell

        cell = compatibility_cell(granted, requested)
        return cell is False

    def _check_blank_with_waiters(
        self, owner: Owner, resource: Resource, mode: LockMode
    ) -> None:
        """Reject a request that blank-pairs with a *queued* request.

        Blank Table-1 cells mean the two modes are never requested together
        on one resource, and ``_first_conflicting_holder`` raises when the
        partner is already *held* — but the partner may still be waiting
        (e.g. two R requests queued behind an X holder).  Without this
        check the violation would only surface later, inside the innocent
        holder's release when ``_dispatch`` grants the first request and
        probes the second against it — an uncatchable place.  Raising here
        keeps the failure at the offending ``request`` call.
        """
        from repro.locks.modes import compatibility_cell

        if mode is LockMode.RS:
            return  # RS blank-pairs are policed against holders only.
        for earlier in self._queues.get(resource, ()):
            if earlier.owner == owner or earlier.instant:
                continue
            if compatibility_cell(earlier.mode, mode) is None:
                raise LockProtocolViolation(
                    f"modes {earlier.mode.value} (queued) and {mode.value} "
                    f"(requested) are never requested together "
                    f"(Table 1 blank cell)"
                )

    def _first_conflicting_holder(
        self, owner: Owner, resource: Resource, mode: LockMode
    ) -> tuple[Owner, LockMode] | None:
        held = self._holders.get(resource, {})
        for holder_owner, counts in held.items():
            if holder_owner == owner:
                continue
            for held_mode in counts:
                if counts[held_mode] <= 0:
                    continue
                if mode is LockMode.RS:
                    # RS only ever waits for the reorganizer's R (and its
                    # short X window); Table-1 blanks still apply.
                    from repro.locks.modes import compatibility_cell

                    if compatibility_cell(held_mode, LockMode.RS) is None:
                        raise LockProtocolViolation(
                            f"RS requested while {held_mode.value} is held "
                            f"(Table 1 blank cell)"
                        )
                    if held_mode in (LockMode.R, LockMode.X):
                        return holder_owner, held_mode
                    continue
                if not compatible(held_mode, mode):
                    return holder_owner, held_mode
        return None

    def _compatible_with_holders(
        self, owner: Owner, resource: Resource, mode: LockMode
    ) -> bool:
        return self._first_conflicting_holder(owner, resource, mode) is None

    def _conflicts_with_rx(
        self, owner: Owner, resource: Resource, mode: LockMode
    ) -> bool:
        conflict = self._first_conflicting_holder(owner, resource, mode)
        return conflict is not None and conflict[1] is LockMode.RX

    def _blocked_by_earlier_waiter(self, request: LockRequest) -> bool:
        for earlier in self._queues.get(request.resource, ()):
            if earlier.owner == request.owner or earlier.instant:
                continue
            if self._conflicts(earlier.mode, request.mode):
                return True
        return False

    def _enqueue(self, request: LockRequest) -> None:
        request.state = RequestState.WAITING
        self._queues.setdefault(request.resource, []).append(request)
        self.stats.waits += 1
        _COUNTERS.lock_waits += 1

    def _grant(self, request: LockRequest, *, notify: bool = False) -> None:
        if request.instant:
            request.state = RequestState.INSTANT_DONE
        else:
            held = self._holders.setdefault(request.resource, {})
            counts = held.get(request.owner)
            if counts is None:
                counts = held[request.owner] = Counter()
            counts[request.mode] += 1
            request.state = RequestState.GRANTED
        # ``notify`` is True only for deferred grants from the dispatch
        # path; an immediate grant is reported synchronously by request()
        # and must not also fire the callback (double-resume hazard).
        if notify and request.on_grant is not None:
            request.on_grant(request)

    def _apply_conversion(self, request: LockRequest) -> None:
        held = self._holders.setdefault(request.resource, {})
        counts = held.get(request.owner)
        if counts is None:
            counts = held[request.owner] = Counter()
        source = request.convert_from
        if source is not None and source is not request.mode:
            if counts[source] <= 0:
                raise LockNotHeldError(
                    f"conversion source {source.value} no longer held"
                )
            counts[source] -= 1
            if counts[source] == 0:
                del counts[source]
        counts[request.mode] += 1

    def _dispatch(self, resource: Resource) -> None:
        """Grant queued requests that are now compatible, FIFO with
        conversion priority and instant-request pass-through."""
        queue = self._queues.get(resource)
        if not queue:
            return
        if self.grant_order is not None and len(queue) > 1:
            reordered = self.grant_order(resource, list(queue))
            if sorted(map(id, reordered)) != sorted(map(id, queue)):
                raise LockProtocolViolation(
                    "grant_order must return a permutation of the wait queue"
                )
            queue[:] = reordered
        progressed = True
        while progressed:
            progressed = False
            granted_this_scan: list[LockRequest] = []
            blocked_modes: list[LockMode] = []
            remaining: list[LockRequest] = []
            for request in queue:
                if self._request_grantable(request, blocked_modes):
                    if request.convert_from is not None:
                        self._apply_conversion(request)
                        request.state = RequestState.GRANTED
                        if request.on_grant is not None:
                            request.on_grant(request)
                    else:
                        self._grant(request, notify=True)
                    granted_this_scan.append(request)
                    progressed = True
                else:
                    if not request.instant:
                        blocked_modes.append(request.mode)
                    remaining.append(request)
            queue[:] = remaining
            if not queue:
                self._queues.pop(resource, None)
                return

    def _request_grantable(
        self, request: LockRequest, blocked_modes: Iterable[LockMode]
    ) -> bool:
        if not self._compatible_with_holders(
            request.owner, request.resource, request.mode
        ):
            return False
        if request.convert_from is not None:
            return True  # conversions only wait on holders
        for earlier_mode in blocked_modes:
            if self._conflicts(earlier_mode, request.mode):
                return False
        return True
