"""Transaction contexts: identity, lock ownership, per-process metrics.

A :class:`Transaction` is the lock *owner* object handed to the lock
manager and the unit the scheduler accounts time to.  The reorganizer gets
``is_reorganizer=True``, which drives the paper's deadlock-victim policy
("we always force the reorganizer to give up its lock").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

_txn_ids = itertools.count(1)


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TxnMetrics:
    """Per-transaction accounting the concurrency benchmarks read."""

    start_time: float = 0.0
    end_time: float = 0.0
    #: Total simulated time spent waiting for locks.
    wait_time: float = 0.0
    #: Number of times the process blocked on a lock.
    blocks: int = 0
    #: Number of RX back-offs performed (reader/updater protocol).
    rx_backoffs: int = 0
    #: Number of times this transaction was a deadlock victim.
    deadlocks: int = 0
    #: Number of lock requests issued.
    lock_requests: int = 0
    pages_read: int = 0

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time


class Transaction:
    """Lock owner + metrics holder for one scheduled process."""

    def __init__(
        self,
        name: str | None = None,
        *,
        is_reorganizer: bool = False,
        shard: str | None = None,
    ):
        self.txn_id: int = next(_txn_ids)
        self.name = name or f"txn-{self.txn_id}"
        self.is_reorganizer = is_reorganizer
        #: Which shard this process works for (victim-policy tie-break when
        #: several shard reorganizers deadlock with each other).
        self.shard = shard
        self.state = TxnState.ACTIVE
        self.metrics = TxnMetrics()
        #: LSN of this transaction's most recent log record (undo chain head).
        self.last_lsn: int = 0

    def __repr__(self) -> str:
        flag = " reorg" if self.is_reorganizer else ""
        return f"<Txn {self.txn_id} {self.name}{flag} {self.state.value}>"

    def __hash__(self) -> int:
        return self.txn_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Transaction) and other.txn_id == self.txn_id
