"""Transactions and the discrete-event scheduler."""

from repro.txn.ops import (
    Acquire,
    Call,
    Convert,
    Downgrade,
    FetchPage,
    Log,
    Op,
    Release,
    ReleaseAll,
    Think,
)
from repro.txn.scheduler import ProtocolGen, Scheduler, SchedulerStall, run_alone
from repro.txn.transaction import Transaction, TxnMetrics, TxnState

__all__ = [
    "Acquire",
    "Call",
    "Convert",
    "Downgrade",
    "FetchPage",
    "Log",
    "Op",
    "ProtocolGen",
    "Release",
    "ReleaseAll",
    "Scheduler",
    "SchedulerStall",
    "Think",
    "Transaction",
    "TxnMetrics",
    "TxnState",
    "run_alone",
]
