"""Yieldable operations for protocol generators.

Concurrency in this reproduction is modelled with a deterministic
discrete-event scheduler (see DESIGN.md: the paper's results are about
*blocking structure*, which a DES measures exactly, not wall-clock
parallelism).  Transactions and the reorganizer are written as Python
generators that ``yield`` these operation objects; the scheduler performs
them, charges simulated time, and sends results back into the generator.

A protocol generator looks like the paper's pseudo-code, almost line for
line::

    def reader(tree, key):
        yield Acquire(tree_lock(tree.name), LockMode.IS)
        ...
        page = yield FetchPage(leaf_id)
        yield Think(0.1)          # record processing
        yield ReleaseAll()

Exceptions are delivered *into* the generator at the yield point:
:class:`~repro.errors.RXConflictError` when a request hits a held RX lock
(the paper's forgo-and-back-off signal) and
:class:`~repro.errors.DeadlockError` when the process is chosen as a
deadlock victim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.locks.modes import LockMode
from repro.storage.page import PageId
from repro.wal.records import LogRecord


@dataclass(frozen=True)
class Acquire:
    """Request a lock; resumes when granted.

    ``instant`` requests the paper's unconditional instant-duration
    semantics: the generator resumes when the lock *would be* grantable,
    without ever holding it.
    """

    resource: Hashable
    mode: LockMode
    instant: bool = False


@dataclass(frozen=True)
class Convert:
    """Convert a held lock to a stronger mode (e.g. R -> X on a base page)."""

    resource: Hashable
    mode: LockMode


@dataclass(frozen=True)
class Downgrade:
    """Replace a held lock with a weaker mode (e.g. page S -> IS while a
    record-level S is retained, section 4.1.2).  Never waits."""

    resource: Hashable
    from_mode: LockMode
    to_mode: LockMode


@dataclass(frozen=True)
class Release:
    """Release one held lock."""

    resource: Hashable
    mode: LockMode


@dataclass(frozen=True)
class ReleaseAll:
    """Drop every lock the process holds (end of transaction)."""


@dataclass(frozen=True)
class FetchPage:
    """Read a page through the buffer pool; returns the page object.

    Charges the scheduler's I/O time on a buffer miss and hit time
    otherwise.
    """

    page_id: PageId


@dataclass(frozen=True)
class Think:
    """Consume simulated time (record processing, in-memory work)."""

    duration: float


@dataclass(frozen=True)
class Log:
    """Append a log record; returns its LSN.  No simulated time."""

    record: LogRecord


@dataclass(frozen=True)
class Call:
    """Run a synchronous function at the current simulated instant.

    The protocol generators keep lock choreography visible as yields while
    delegating page manipulation to synchronous engine code; ``Call`` makes
    that delegation explicit and gives the scheduler a hook to count work.
    Returns the function's result.
    """

    fn: object  # Callable[[], Any]; typed loosely to keep ops frozen


Op = Acquire | Convert | Downgrade | Release | ReleaseAll | FetchPage | Think | Log | Call
