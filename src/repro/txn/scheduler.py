# reproflow: disable-file=lock-pairing -- the scheduler is the op
# interpreter: it executes Acquire/Release on behalf of protocol
# generators in separate branches, and _start/_resume/_throw_into are
# reached via functools.partial (no static call edge), so per-owner
# pairing cannot be tracked here statically.  Pairing is a property of
# the generators (checked by reproflow there), and release_all on
# finish/abort is the runtime backstop.
"""Deterministic discrete-event scheduler for protocol generators.

The scheduler advances a simulated clock and interleaves *processes* —
generator objects yielding :mod:`repro.txn.ops` operations on behalf of a
:class:`~repro.txn.transaction.Transaction`.  All interleaving is a pure
function of spawn times, operation costs and lock-manager state, so every
concurrency experiment in this repository is exactly reproducible.

Timing model (configurable):

* ``Acquire``/``Convert``/``Release``/``Log``/``Call`` — instantaneous.
  Blocking on a lock suspends the process until the lock manager's grant
  callback fires; the elapsed simulated time is charged to the
  transaction's ``wait_time``.
* ``FetchPage`` — ``hit_time`` if the page is buffered, ``io_time`` if it
  must come from disk.
* ``Think`` — exactly its duration.

Exception delivery: an :class:`~repro.errors.RXConflictError` from the lock
manager and a :class:`~repro.errors.DeadlockError` for deadlock victims are
thrown *into* the generator, which implements the paper's reaction (back
off and RS-wait; or abort/retry).  An exception that escapes the generator
aborts the process: its locks are released and the failure is recorded in
:attr:`Scheduler.failed`.

A :class:`~repro.errors.CrashPoint` escaping any process is different: it
propagates out of :meth:`Scheduler.run` so the crash harness can take over.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Generator

from repro.errors import (
    CrashPoint,
    DeadlockError,
    ReproError,
    RXConflictError,
    SwitchTimeoutError,
    TransactionAborted,
)
from repro.locks.manager import LockManager, LockRequest, RequestState
from repro.perf import PERF

#: See storage/buffer.py: reset() clears in place, the alias stays valid.
_COUNTERS = PERF.counters
from repro.txn.ops import (
    Acquire,
    Call,
    Convert,
    Downgrade,
    FetchPage,
    Log,
    Op,
    Release,
    ReleaseAll,
    Think,
)
from repro.txn.transaction import Transaction, TxnState

ProtocolGen = Generator[Op, Any, Any]


class SchedulerStall(ReproError):
    """No runnable events remain but processes are still waiting.

    Indicates a protocol bug (a wait that nothing will ever satisfy) —
    genuine deadlocks are broken by the victim policy before this fires.
    """


#: Safety valve: maximum ops a process may execute without consuming
#: simulated time (prevents accidental same-instant spin loops).
_MAX_ZERO_TIME_OPS = 100_000


@dataclass
class _Process:
    txn: Transaction
    gen: ProtocolGen
    waiting_since: float | None = None
    done: bool = False
    #: Set by Scheduler.abort_transaction; honoured at the next step.
    abort_requested: bool = False
    #: Lock-manager callbacks, built once at spawn and reused for every
    #: Acquire/Convert this process issues (the hot loop previously closed
    #: over fresh callables per lock request).
    on_grant: Callable[[LockRequest], None] = field(default=None, repr=False)  # type: ignore[assignment]
    on_deadlock: Callable[[LockRequest], None] = field(default=None, repr=False)  # type: ignore[assignment]


class Scheduler:
    """Event loop over simulated time."""

    def __init__(
        self,
        lock_manager: LockManager,
        *,
        store=None,
        log=None,
        io_time: float = 1.0,
        hit_time: float = 0.05,
    ):
        self.lm = lock_manager
        self.store = store
        self.log = log
        self.io_time = io_time
        self.hit_time = hit_time
        #: Bound residency test for the FetchPage hot path (None when the
        #: scheduler runs without a store, e.g. pure lock-protocol tests).
        self._buffer_contains = store.buffer.contains if store is not None else None
        self.now: float = 0.0
        #: Pending events.  ``seq`` (second element) is unique per event, so
        #: tuple comparison is decided by ``(time, seq)`` alone and the
        #: action callables are *never* compared — event order is a pure
        #: function of the spawn plan on every Python version.
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        #: Explorer hook (see ``repro.analysis.explorer``): when set,
        #: :meth:`run` routes through :meth:`_run_explored`, which asks this
        #: callable to pick the next event from the sorted pending list.
        #: ``None`` (production) keeps the branch-free heap loop below; the
        #: attribute is tested once per ``run()`` call, so the hot path is
        #: byte-identical with the explorer merely imported.
        self.pick_next: Callable[[list[tuple[float, int, Callable[[], None]]]], int] | None = None
        self._processes: list[_Process] = []
        #: (txn, result) for processes that ran to completion.
        self.completed: list[tuple[Transaction, Any]] = []
        #: (txn, exception) for processes that died.
        self.failed: list[tuple[Transaction, BaseException]] = []
        self._crash: CrashPoint | None = None

    # -- public API ------------------------------------------------------------

    def spawn(
        self,
        gen: ProtocolGen,
        *,
        txn: Transaction | None = None,
        name: str | None = None,
        at: float = 0.0,
        is_reorganizer: bool = False,
        shard: str | None = None,
    ) -> Transaction:
        """Register a protocol generator to start at simulated time ``at``."""
        transaction = txn or Transaction(
            name, is_reorganizer=is_reorganizer, shard=shard
        )
        process = _Process(transaction, gen)
        process.on_grant = self._make_grant_callback(process)
        process.on_deadlock = self._make_deadlock_callback(process)
        self._processes.append(process)
        self._schedule(at, partial(self._start, process))
        return transaction

    def run(self, *, until: float | None = None, max_events: int = 2_000_000) -> None:
        """Drain the event heap (optionally up to simulated time ``until``).

        Events execute in ``(time, seq)`` order, where ``seq`` is assigned
        from a per-scheduler counter at scheduling time.  Equal-time events
        are therefore ordered by sequence number only — never by dict
        iteration order or callable identity — which is what lets explorer
        traces (``repro.analysis.explorer``) replay identically across runs
        and Python versions.
        """
        if self.pick_next is not None:
            return self._run_explored(until=until, max_events=max_events)
        events = 0
        counters = _COUNTERS
        heap = self._heap
        heappop = heapq.heappop
        with PERF.timers.section("scheduler.run"):
            while heap:
                if self._crash is not None:
                    raise self._crash
                time, _, action = heappop(heap)
                if until is not None and time > until:
                    heapq.heappush(heap, (time, next(self._seq), action))
                    return
                if time > self.now:
                    self.now = time
                action()
                events += 1
                counters.des_events += 1
                if events > max_events:
                    raise SchedulerStall(f"exceeded {max_events} events")
        if self._crash is not None:
            raise self._crash
        stuck = [p for p in self._processes if not p.done and p.waiting_since is not None]
        if stuck:
            names = ", ".join(p.txn.name for p in stuck)
            raise SchedulerStall(f"no events left but processes wait: {names}")

    def _run_explored(self, *, until: float | None, max_events: int) -> None:
        """Policy-driven twin of :meth:`run` for schedule exploration.

        Kept separate so the production loop stays branch-free.  Each
        iteration fully sorts the pending list (total order on
        ``(time, seq)``; actions are never compared) and lets ``pick_next``
        choose *any* pending event, not just the earliest.  The clock is
        clamped monotonically: running a later-timestamped event first must
        not move time backwards when the earlier one finally executes.
        """
        events = 0
        counters = _COUNTERS
        heap = self._heap
        pick_next = self.pick_next
        assert pick_next is not None
        while heap:
            if self._crash is not None:
                raise self._crash
            heap.sort()
            options = heap
            if until is not None:
                options = [event for event in heap if event[0] <= until]
                if not options:
                    return
            index = pick_next(options)
            if not 0 <= index < len(options):
                raise ReproError(
                    f"pick_next returned {index} for {len(options)} pending events"
                )
            event = options[index]
            heap.remove(event)
            if event[0] > self.now:
                self.now = event[0]
            event[2]()
            events += 1
            counters.des_events += 1
            if events > max_events:
                raise SchedulerStall(f"exceeded {max_events} events")
        if self._crash is not None:
            raise self._crash
        stuck = [p for p in self._processes if not p.done and p.waiting_since is not None]
        if stuck:
            names = ", ".join(p.txn.name for p in stuck)
            raise SchedulerStall(f"no events left but processes wait: {names}")

    @property
    def active_count(self) -> int:
        return sum(1 for p in self._processes if not p.done)

    def abort_transaction(self, txn: Transaction, reason: str = "forced abort") -> bool:
        """Force a running process to abort (the paper's switch policy:
        "it will force the on-going transactions that use the old tree to
        abort", section 7.4).  Returns False if the process is done."""
        for process in self._processes:
            if process.txn is txn and not process.done:
                process.abort_requested = True
                if self.lm.waiting_request(txn) is not None:
                    self.lm.cancel_wait(txn)
                # Wake the process *now* — a transaction sleeping in Think
                # must not keep its locks until its timer fires.  Its stale
                # timer event later finds the process done and no-ops.
                self._schedule(
                    self.now,
                    partial(self._throw_into, process, TransactionAborted(reason)),
                )
                return True
        return False

    # -- internals ------------------------------------------------------------

    def _schedule(self, time: float, action: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), action))

    def _start(self, process: _Process) -> None:
        process.txn.metrics.start_time = self.now
        self._step(process, send_value=None)

    def _finish(self, process: _Process, result: Any) -> None:
        process.done = True
        process.txn.metrics.end_time = self.now
        if process.txn.state is TxnState.ACTIVE:
            process.txn.state = TxnState.COMMITTED
        self.lm.release_all(process.txn)
        self.completed.append((process.txn, result))

    def _fail(self, process: _Process, exc: BaseException) -> None:
        process.done = True
        process.txn.state = TxnState.ABORTED
        process.txn.metrics.end_time = self.now
        self.lm.cancel_wait(process.txn)
        self.lm.release_all(process.txn)
        self.failed.append((process.txn, exc))

    def _step(
        self,
        process: _Process,
        *,
        send_value: Any = None,
        throw: BaseException | None = None,
    ) -> None:
        """Advance one process until it suspends, finishes or fails."""
        _COUNTERS.des_steps += 1
        gen = process.gen
        txn = process.txn
        if process.done:
            return  # a late wake-up for an already-aborted process
        if process.abort_requested and throw is None:
            process.abort_requested = False
            throw = TransactionAborted("forced abort")
        for _ in range(_MAX_ZERO_TIME_OPS):
            try:
                if throw is not None:
                    exc, throw = throw, None
                    op = gen.throw(exc)
                else:
                    op = gen.send(send_value)
            except StopIteration as stop:
                self._finish(process, stop.value)
                return
            except CrashPoint as crash:
                # A crash takes the whole system down, not one process.
                self._crash = crash
                return
            except (
                DeadlockError,
                TransactionAborted,
                RXConflictError,
                SwitchTimeoutError,  # an expected switch-policy outcome
            ) as abort:
                self._fail(process, abort)
                return
            send_value = None

            op_cls = op.__class__
            if op_cls is Acquire:
                txn.metrics.lock_requests += 1
                try:
                    request = self.lm.request(
                        txn,
                        op.resource,
                        op.mode,
                        instant=op.instant,
                        on_grant=process.on_grant,
                        on_deadlock=process.on_deadlock,
                    )
                except RXConflictError as conflict:
                    txn.metrics.rx_backoffs += 1
                    throw = conflict
                    continue
                if request.state is RequestState.WAITING:
                    self._suspend_on_lock(process)
                    return
                send_value = request
            elif op_cls is FetchPage:
                # Checked before the rarer op kinds (identity test: op
                # classes are final): fetches and releases
                # dominate the op mix in every experiment.
                txn.metrics.pages_read += 1
                contains = self._buffer_contains
                if contains is not None:
                    cost = self.hit_time if contains(op.page_id) else self.io_time
                    page = self.store.get(op.page_id)
                else:
                    cost = self.io_time
                    page = None
                self._schedule(self.now + cost, partial(self._resume, process, page))
                return
            elif op_cls is Release:
                self.lm.release(txn, op.resource, op.mode)
            elif op_cls is Think:
                self._schedule(
                    self.now + op.duration, partial(self._resume, process, None)
                )
                return
            elif op_cls is Convert:
                txn.metrics.lock_requests += 1
                try:
                    request = self.lm.convert(
                        txn,
                        op.resource,
                        op.mode,
                        on_grant=process.on_grant,
                        on_deadlock=process.on_deadlock,
                    )
                except RXConflictError as conflict:
                    txn.metrics.rx_backoffs += 1
                    throw = conflict
                    continue
                if request.state is RequestState.WAITING:
                    self._suspend_on_lock(process)
                    return
                send_value = request
            elif op_cls is Downgrade:
                self.lm.downgrade(txn, op.resource, op.from_mode, op.to_mode)
            elif op_cls is ReleaseAll:
                self.lm.release_all(txn)
            elif op_cls is Log:
                if self.log is None:
                    send_value = 0
                else:
                    send_value = self.log.append(op.record)
            elif op_cls is Call:
                try:
                    send_value = op.fn()  # type: ignore[operator]
                except CrashPoint as crash:
                    self._crash = crash
                    return
            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown op {op!r}")
        raise SchedulerStall(
            f"process {txn.name} executed {_MAX_ZERO_TIME_OPS} ops without "
            f"consuming simulated time"
        )

    def _resume(self, process: _Process, value: Any) -> None:
        """Timer/grant continuation: re-enter ``_step`` with a sent value."""
        self._step(process, send_value=value)

    def _throw_into(self, process: _Process, error: BaseException) -> None:
        """Continuation that re-enters ``_step`` throwing ``error``.

        A method (scheduled via ``partial``) rather than a lambda so every
        heap event stays introspectable: the explorer attributes pending
        events to their process through ``partial`` arguments.
        """
        self._step(process, throw=error)

    def _suspend_on_lock(self, process: _Process) -> None:
        process.txn.metrics.blocks += 1
        process.waiting_since = self.now
        victims = self.lm.resolve_deadlocks()
        # Victim callbacks have already scheduled their wake-ups.
        del victims

    def _make_grant_callback(self, process: _Process):
        def on_grant(request: LockRequest) -> None:
            if process.waiting_since is not None:
                process.txn.metrics.wait_time += self.now - process.waiting_since
                process.waiting_since = None
            self._schedule(self.now, partial(self._resume, process, request))

        return on_grant

    def _make_deadlock_callback(self, process: _Process):
        def on_deadlock(request: LockRequest) -> None:
            process.txn.metrics.deadlocks += 1
            if process.waiting_since is not None:
                process.txn.metrics.wait_time += self.now - process.waiting_since
                process.waiting_since = None
            error = DeadlockError(
                f"{process.txn.name} chosen as deadlock victim", victim=process.txn
            )
            self._schedule(self.now, partial(self._throw_into, process, error))

        return on_deadlock


def run_alone(gen: ProtocolGen, *, lock_manager: LockManager | None = None,
              store=None, log=None, txn: Transaction | None = None) -> Any:
    """Drive one protocol generator to completion with no contention.

    Used when the algorithms run outside a concurrency experiment (setup
    code, unit tests, the synchronous reorganizer API).  Every lock is
    granted immediately; simulated time is not tracked.
    """
    scheduler = Scheduler(lock_manager or LockManager(), store=store, log=log)
    scheduler.spawn(gen, txn=txn)
    scheduler.run()
    if scheduler.failed:
        raise scheduler.failed[0][1]
    return scheduler.completed[0][1]
