"""The Tandem-style baseline reorganizer ([Smi90], paper section 8).

Reimplemented from the paper's description of Gary Smith's on-line
reorganization of key-sequenced tables (the Franco Putzolu algorithm):

* four operations — **block move**, **block merge**, **block swap**, and
  **block split** — each run as an individual database transaction;
* "No matter what the new page fill factor is, each transaction in [Smi90]
  will only deal with two blocks (pages)";
* "[Smi90] prevents user transactions from accessing the entire file
  (B+-tree)" for the duration of each operation — modelled as an X lock on
  the tree lock per operation;
* interrupted operations are **rolled back**, not forward-recovered.

The data movement itself reuses :class:`~repro.reorg.unit.UnitEngine`
(merge = a two-source compact, move = a MOVE unit, swap = a SWAP unit), so
the comparison against the paper's method isolates exactly the properties
section 8 claims: locking granularity, units of work, transaction count,
and recovery policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Generator

from repro.btree.tree import BPlusTree
from repro.config import ReorgConfig
from repro.db import Database
from repro.errors import ReorgError
from repro.locks.modes import LockMode
from repro.locks.resources import tree_lock
from repro.reorg.switch import current_lock_name
from repro.reorg.unit import UnitEngine, UnitResult
from repro.storage.page import PageId, PageKind
from repro.storage.store import LEAF_EXTENT
from repro.txn.ops import Acquire, Call, Release, Think
from repro.wal.recovery import PendingReorgUnit


@dataclass
class Smith90Stats:
    """Work accounting for the granularity/overhead comparison (E5)."""

    merges: int = 0
    moves: int = 0
    swaps: int = 0
    #: One whole-file lock acquisition per operation.
    file_locks: int = 0
    #: Each operation is its own transaction.
    transactions: int = 0
    results: list[UnitResult] = field(default_factory=list)

    @property
    def operations(self) -> int:
        return self.merges + self.moves + self.swaps


class Smith90Reorganizer:
    """Synchronous engine: pairwise merges, then swap/move ordering."""

    def __init__(
        self,
        db: Database,
        tree: BPlusTree,
        config: ReorgConfig | None = None,
    ):
        self.db = db
        self.tree = tree
        self.config = config or ReorgConfig()
        self.engine = UnitEngine(db, tree)
        self.stats = Smith90Stats()

    # -- planning ----------------------------------------------------------------

    def _target(self) -> int:
        capacity = self.db.store.config.leaf_capacity
        return max(1, math.floor(capacity * self.config.target_fill + 1e-9))

    def next_merge(self) -> tuple[PageId, PageId, PageId] | None:
        """First adjacent same-parent pair that fits in one page:
        (base page, left leaf, right leaf)."""
        target = self._target()
        root = self.db.store.get(self.tree.root_id)
        if root.kind is PageKind.LEAF:
            return None
        stack = [self.tree.root_id]
        while stack:
            page = self.db.store.get(stack.pop())
            if page.kind is not PageKind.INTERNAL:
                continue
            if page.level > 1:  # type: ignore[union-attr]
                stack.extend(reversed(page.children()))  # type: ignore[union-attr]
                continue
            children = page.children()  # type: ignore[union-attr]
            for left, right in zip(children, children[1:]):
                left_n = self.db.store.get_leaf(left).num_items
                right_n = self.db.store.get_leaf(right).num_items
                if 0 < left_n + right_n <= target:
                    return page.page_id, left, right
        return None

    def next_placement(self) -> tuple[PageId, PageId, bool] | None:
        """First out-of-place leaf: (leaf, target slot, slot occupied?)."""
        root = self.db.store.get(self.tree.root_id)
        if root.kind is PageKind.LEAF:
            return None
        start = self.db.store.disk.extent(LEAF_EXTENT).start
        chain = self.tree.leaf_ids_in_key_order()
        for index, leaf in enumerate(chain):
            target = start + index
            if leaf == target:
                continue
            occupied = not self.db.store.free_map.is_free(target)
            if occupied and target not in chain[index + 1 :]:
                continue
            return leaf, target, occupied
        return None

    def _parent_of(self, leaf_id: PageId) -> PageId:
        leaf = self.db.store.get_leaf(leaf_id)
        base = self.tree.base_page_for(leaf.min_key())
        if base is None or base.index_of_child(leaf_id) < 0:
            raise ReorgError(f"cannot locate parent of leaf {leaf_id}")
        return base.page_id

    # -- operations (each one "transaction") ----------------------------------------

    def block_merge(self, base: PageId, left: PageId, right: PageId) -> UnitResult:
        """Merge the contents of two leaf pages into the left one."""
        result = self.engine.compact_unit(
            base, [left, right], left, dest_is_new=False
        )
        self.stats.merges += 1
        self._account()
        self.stats.results.append(result)
        return result

    def block_move(self, leaf: PageId, target: PageId) -> UnitResult:
        result = self.engine.move_unit(self._parent_of(leaf), leaf, target)
        self.stats.moves += 1
        self._account()
        self.stats.results.append(result)
        return result

    def block_swap(self, leaf_a: PageId, leaf_b: PageId) -> UnitResult:
        result = self.engine.swap_unit(
            self._parent_of(leaf_a), leaf_a, self._parent_of(leaf_b), leaf_b
        )
        self.stats.swaps += 1
        self._account()
        self.stats.results.append(result)
        return result

    def _account(self) -> None:
        self.stats.transactions += 1
        self.stats.file_locks += 1

    # -- full run (synchronous) -------------------------------------------------------

    def run_compaction(self) -> int:
        """Merge adjacent pairs until no pair fits; returns merge count."""
        merges = 0
        while True:
            pair = self.next_merge()
            if pair is None:
                return merges
            self.block_merge(*pair)
            merges += 1

    def run_ordering(self) -> int:
        """Move/swap leaves into contiguous key order; returns op count."""
        ops = 0
        guard = 4 * len(self.tree.leaf_ids_in_key_order()) + 8
        for _ in range(guard):
            plan = self.next_placement()
            if plan is None:
                return ops
            leaf, target, occupied = plan
            if occupied:
                self.block_swap(leaf, target)
            else:
                self.block_move(leaf, target)
            ops += 1
        raise ReorgError("ordering did not converge")

    def run(self) -> Smith90Stats:
        self.run_compaction()
        self.run_ordering()
        return self.stats

    # -- recovery policy ----------------------------------------------------------

    def recover_interrupted(self, pending: PendingReorgUnit) -> bool:
        """Rollback, not forward recovery: the baseline's crash policy.

        Returns True when the interrupted operation was rolled back (its
        work is lost and must be redone by a fresh operation).
        """
        return self.engine.rollback_unit(pending)


class Smith90Protocol:
    """DES protocol: each block operation X-locks the whole file.

    "[Smi90] prevents user transactions from accessing the entire file" —
    every user transaction IS/IX-locks the tree, so the per-operation X
    lock blocks all of them for the operation's duration.
    """

    def __init__(
        self,
        db: Database,
        tree_name: str,
        config: ReorgConfig | None = None,
        *,
        op_pause: float = 0.0,
        op_duration: float = 0.3,
    ):
        self.db = db
        self.tree_name = tree_name
        self.config = config or ReorgConfig()
        self.tree = db.tree(tree_name)
        self.reorganizer = Smith90Reorganizer(db, self.tree, self.config)
        self.op_pause = op_pause
        #: Simulated time the file stays locked per block operation.
        self.op_duration = op_duration

    def run(self) -> Generator[Any, Any, dict]:
        stats = {"merges": 0, "placements": 0}
        name = current_lock_name(self.db, self.tree_name)
        while True:
            pair = yield Call(self.reorganizer.next_merge)
            if pair is None:
                break
            yield Acquire(tree_lock(name), LockMode.X)
            yield Think(self.op_duration)
            yield Call(lambda p=pair: self.reorganizer.block_merge(*p))
            yield Release(tree_lock(name), LockMode.X)
            stats["merges"] += 1
            if self.op_pause:
                yield Think(self.op_pause)
        while True:
            plan = yield Call(self.reorganizer.next_placement)
            if plan is None:
                break
            leaf, target, occupied = plan
            yield Acquire(tree_lock(name), LockMode.X)
            yield Think(self.op_duration)
            if occupied:
                yield Call(lambda: self.reorganizer.block_swap(leaf, target))
            else:
                yield Call(lambda: self.reorganizer.block_move(leaf, target))
            yield Release(tree_lock(name), LockMode.X)
            stats["placements"] += 1
            if self.op_pause:
                yield Think(self.op_pause)
        stats["smith"] = self.reorganizer.stats
        return stats
