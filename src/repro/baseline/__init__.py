"""Baselines: the Tandem-style reorganizer of [Smi90]."""

from repro.baseline.smith90 import (
    Smith90Protocol,
    Smith90Reorganizer,
    Smith90Stats,
)

__all__ = ["Smith90Protocol", "Smith90Reorganizer", "Smith90Stats"]
