"""The `Database` facade: storage + log + locks + recovery in one object.

This is the object most users touch first (see README quickstart)::

    db = Database(TreeConfig(leaf_capacity=64))
    tree = db.bulk_load_tree(records)
    ...
    db.crash()          # simulate a failure
    report = db.recover()

It owns the storage manager, the write-ahead log (wired into the buffer
pool for WAL enforcement), the lock manager, and the reorganization
progress table, and it carries the system state the paper's checkpoint
record must include: the progress table (section 5) and the pass-3 state —
reorganization bit, side file, last stable key, new-root location
(sections 7.2-7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.btree.bulkload import bulk_load
from repro.btree.tree import BPlusTree
from repro.config import TreeConfig, gapped_leaf_fill
from repro.locks.manager import LockManager
from repro.metrics import FragmentationStats
from repro.storage.page import PageId, Record
from repro.storage.store import StorageManager
from repro.wal.log import LogManager
from repro.wal.progress import ReorgProgressTable
from repro.wal.recovery import RecoveryManager, RecoveryReport, take_checkpoint


@dataclass
class Pass3State:
    """Volatile pass-3 bookkeeping mirrored into checkpoints (section 7.3)."""

    reorg_bit: bool = False
    stable_key: int | None = None
    new_root: PageId = -1
    #: Live side-file entries (key, child, op); owned by the reorganizer's
    #: SideFile object, mirrored here for checkpointing.
    side_file_entries: list[tuple[int, PageId, str]] = field(default_factory=list)
    #: New base pages closed so far by pass 3: (low key, page id).
    built_entries: list[tuple[int, PageId]] = field(default_factory=list)


class Database:
    """One simulated database instance."""

    def __init__(self, config: TreeConfig | None = None):
        self.config = config or TreeConfig()
        if self.config.sanitizer:
            # Opt-in runtime protocol checks; patches are class-level, so
            # installing before building the store shadows it from birth.
            from repro.analysis.sanitizer import install

            install()
        if self.config.race_detector:
            # Must also precede the store build: the optimistic-window
            # hook wraps the instance-bound version_of shortcut that
            # StorageManager.__init__ creates.
            from repro.analysis.racedetect import install as install_race

            install_race()
        self.store = StorageManager(self.config)
        self.log = LogManager(
            group_commit_window=self.config.group_commit_window
        )
        self.store.set_wal(self.log)
        self.locks = LockManager()
        self.progress = ReorgProgressTable()
        self.pass3 = Pass3State()
        #: Count of simulated crashes, for tests/metrics.
        self.crashes = 0
        #: Per-tree-name live fragmentation trackers
        #: (:class:`repro.metrics.FragmentationStats`), created lazily by
        #: :meth:`frag_stats` and wired onto every handle :meth:`tree`
        #: returns so the throwaway tree objects share one counter bag.
        self.frag_trackers: dict[str, FragmentationStats] = {}

    # -- tree management ---------------------------------------------------------

    def create_tree(self, name: str = "primary") -> BPlusTree:
        tree = BPlusTree.create(self.store, self.log, name=name)
        tree.frag_stats = self.frag_stats(name)
        return tree

    def bulk_load_tree(
        self,
        records: list[Record],
        *,
        name: str = "primary",
        leaf_fill: float = 1.0,
        internal_fill: float = 1.0,
    ) -> BPlusTree:
        tree = bulk_load(
            self.store,
            self.log,
            records,
            name=name,
            leaf_fill=leaf_fill,
            internal_fill=internal_fill,
        )
        tree.frag_stats = self.frag_stats(name)
        return tree

    def frag_stats(self, name: str = "primary") -> FragmentationStats:
        """The live fragmentation tracker for ``name`` (created on demand).

        Counters are deltas until :meth:`FragmentationStats.sync_from_tree`
        baselines them — the auto-reorg daemon and the metrics tests sync;
        the default path never pays the tree walk.
        """
        tracker = self.frag_trackers.get(name)
        if tracker is None:
            tracker = FragmentationStats(
                leaf_capacity=gapped_leaf_fill(self.config, 1.0)
            )
            self.frag_trackers[name] = tracker
        return tracker

    def tree(self, name: str = "primary") -> BPlusTree:
        tree = BPlusTree.attach(self.store, self.log, name=name)
        tree.frag_stats = self.frag_stats(name)
        return tree

    def has_tree(self, name: str = "primary") -> bool:
        return self.store.disk.get_meta(f"root:{name}") is not None

    def drop_tree_name(self, name: str) -> None:
        """Forget a tree's root pointer (used when discarding the old tree
        after the switch, section 7.4)."""
        self.store.disk.del_meta(f"root:{name}")

    # -- durability -----------------------------------------------------------

    def checkpoint(self, active_txns: dict[int, int] | None = None) -> int:
        """Take a sharp checkpoint including all paper-mandated state."""
        return take_checkpoint(
            self.store,
            self.log,
            active_txns=active_txns,
            progress=self.progress,
            stable_key=self.pass3.stable_key,
            new_root=self.pass3.new_root,
            reorg_bit=self.pass3.reorg_bit,
            side_file=self.pass3.side_file_entries,
            pass3_built=self.pass3.built_entries,
        )

    def flush(self) -> None:
        """Force log and all dirty pages to stable storage."""
        self.log.flush()
        self.store.flush_all()

    # -- crash / recovery ---------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state: buffer pool, lock table, progress
        table, pass-3 bookkeeping, and the unflushed log tail."""
        self.log.crash()
        self.store.crash()
        self.locks.crash()
        self.progress.crash()
        self.pass3 = Pass3State()
        self.store.rebuild_free_map_from_disk()
        self.crashes += 1

    def recover(self, *, undo: bool = True) -> RecoveryReport:
        """Run redo + undo; restore the progress table and pass-3 state.

        Forward recovery of an in-flight reorganization unit is *not* done
        here — the report's ``pending_unit`` is handed to
        :meth:`repro.reorg.reorganizer.Reorganizer.forward_recover`.
        """
        report = RecoveryManager(self.store, self.log).run(undo=undo)
        from repro.wal.progress import ProgressSnapshot

        units = tuple(
            (unit.unit_id, unit.records[0].lsn, unit.records[-1].lsn)
            for unit in report.pending_units
        )
        begin = min((b for _, b, _ in units), default=0)
        recent = units[0][2] if len(units) == 1 else 0
        self.progress.restore(
            ProgressSnapshot(report.largest_finished_key, begin, recent, units)
        )
        self.pass3 = Pass3State(
            reorg_bit=report.reorg_bit,
            stable_key=report.stable_key,
            new_root=report.new_root,
            side_file_entries=list(report.side_file),
            built_entries=list(report.built_entries),
        )
        return report
