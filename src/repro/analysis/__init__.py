"""Runtime analysis tooling (the dynamic half of reprolint).

:mod:`repro.analysis.sanitizer` shadows the lock manager, buffer pool,
simulated disk and scheduler with protocol checks.  Nothing here is
imported by the engine itself — enabling the sanitizer is always an
explicit act (``TreeConfig(sanitizer=True)`` or the ``REPRO_SANITIZER=1``
pytest fixture), so the production path pays zero cost.
"""

from repro.analysis.sanitizer import (  # noqa: F401
    Diagnostic,
    LockTableViolation,
    Sanitizer,
    SanitizerError,
    VictimPolicyViolation,
    WALOrderViolation,
    active,
    install,
    uninstall,
)
