"""Runtime lock/WAL sanitizer — the dynamic half of reprolint.

When installed, the sanitizer patches four classes with shadow checks:

* :class:`~repro.locks.manager.LockManager` — after every public mutation
  (request / convert / downgrade / release / release_all / cancel_wait)
  the holder set of each touched resource is re-validated against the
  paper's Table 1: two distinct owners may never concurrently hold modes
  whose cell is *No*, nor a *blank* pairing ("the two lock modes won't be
  requested together by different requesters"), and RS — an instant-
  duration mode — may never appear in the holder table at all.  The
  deadlock victim choice is also shadowed: if a reorganizer participates
  in a cycle, it must be the victim (section 4.2).
* :class:`~repro.storage.buffer.BufferPool` — ``mark_dirty`` may not move
  a page LSN *backwards* (the redo page-LSN test relies on monotonicity)
  nor stamp an LSN the log has not appended yet; ``fetch`` of a page whose
  RX lock is held by a different transaction is a violation (RX is
  compatible with nothing — conflicting requesters must forgo and back
  off, not touch the page), and a *dirty* page fetched by a transaction
  holding no lock on it while others do is recorded as a warning.
  Pin/unpin pairs carry the optimistic read path's contract: a frame
  whose page LSN advanced while pinned (it was mutated) must have had its
  version stamp bumped before the unpin — otherwise lock-free readers
  would validate stale reads as current.
* :class:`~repro.storage.disk.SimulatedDisk` — ``write`` enforces the
  write-ahead rule end to end: a page image may not reach the disk while
  its ``page_lsn`` is beyond the log's ``flushed_lsn``.
* :class:`~repro.txn.scheduler.Scheduler` — ``_step`` publishes which
  transaction is currently driving storage calls, so buffer checks can
  attribute fetches to lock owners.  Outside a scheduler step (synchronous
  engine code, direct unit tests) lock-coverage checks are skipped.

Checks are class-level patches: when the sanitizer is *not* installed the
hot paths are byte-for-byte the original functions — zero overhead, the
same discipline as the :mod:`repro.perf` hooks.  Strict mode (the default)
raises on violations; warnings are always only recorded.

Usage::

    from repro.analysis import sanitizer
    san = sanitizer.install()           # strict; or install(strict=False)
    ...
    san.diagnostics                     # everything observed
    sanitizer.uninstall()

    with san.suspended():               # e.g. around crash simulation
        ...

or via ``TreeConfig(sanitizer=True)`` / the ``REPRO_SANITIZER=1`` pytest
fixture (see ``tests/conftest.py``).
"""

from __future__ import annotations

import functools
import weakref
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ReproError
from repro.locks.modes import LockMode, compatibility_cell


class SanitizerError(ReproError):
    """Base of all sanitizer-detected protocol violations."""


class LockTableViolation(SanitizerError):
    """The granted lock table contradicts Table 1."""


class WALOrderViolation(SanitizerError):
    """Write-ahead / page-LSN ordering was broken."""


class VictimPolicyViolation(SanitizerError):
    """A deadlock was resolved against a non-reorganizer while a
    reorganizer was in the cycle."""


class VersionStampViolation(SanitizerError):
    """A mutated buffer frame was unpinned without its version stamp
    having been bumped — the optimistic read path would validate stale
    reads as current."""


@dataclass(frozen=True)
class Diagnostic:
    """One observation: a violation (strict mode raises) or a warning."""

    kind: str
    severity: str  # "violation" | "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}/{self.severity}] {self.message}"


@dataclass
class Sanitizer:
    """Collected state of one installed sanitizer."""

    strict: bool = True
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: kind -> number of checks performed (not violations; for overhead
    #: accounting and "did it actually run" assertions in tests).
    checks: Counter = field(default_factory=Counter)
    _suspend_depth: int = 0

    @property
    def violations(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "violation"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def suspended_now(self) -> bool:
        return self._suspend_depth > 0

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Temporarily disable all checks (e.g. around crash simulation,
        where volatile state is *supposed* to contradict the disk)."""
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1

    def violation(
        self, kind: str, message: str, exc_type: type[SanitizerError]
    ) -> None:
        self.diagnostics.append(Diagnostic(kind, "violation", message))
        if self.strict:
            raise exc_type(message)

    def warn(self, kind: str, message: str) -> None:
        self.diagnostics.append(Diagnostic(kind, "warning", message))


# -- module state -------------------------------------------------------------

#: The installed sanitizer, or None (all patches gone).
_ACTIVE: Sanitizer | None = None

#: (cls, attr) -> original unbound function, for uninstall.
_ORIGINALS: dict[tuple[type, str], Any] = {}

#: SimulatedDisk -> the BufferPool in front of it (to reach its WAL hook).
_POOL_OF_DISK: "weakref.WeakKeyDictionary[Any, Any]" = weakref.WeakKeyDictionary()

#: BufferPool -> {page_id: (page_lsn, version) snapshot taken at pin time},
#: for the version-stamp-before-unpin check.
_PIN_SNAPSHOTS: "weakref.WeakKeyDictionary[Any, dict]" = weakref.WeakKeyDictionary()


class _StepContext:
    """Which transaction is currently driving storage calls, and under
    which lock manager.  Set by the patched ``Scheduler._step``."""

    __slots__ = ("owner", "lock_manager")

    def __init__(self) -> None:
        self.owner: Any = None
        self.lock_manager: Any = None


_CTX = _StepContext()


def active() -> Sanitizer | None:
    """The installed sanitizer, or None."""
    return _ACTIVE


# -- Table-1 holder-set validation --------------------------------------------


def _check_lock_table(san: Sanitizer, lm: Any, resource: Any) -> None:
    held = lm._holders.get(resource)
    if not held:
        return
    san.checks["lock-table"] += 1
    flat: list[tuple[Any, LockMode]] = [
        (owner, mode)
        for owner, counts in held.items()
        for mode, n in counts.items()
        if n > 0
    ]
    for owner, mode in flat:
        if mode is LockMode.RS:
            san.violation(
                "lock-table",
                f"RS held by {owner!r} on {resource!r}: RS is an "
                f"instant-duration mode and must never be granted",
                LockTableViolation,
            )
    for i, (owner_a, mode_a) in enumerate(flat):
        for owner_b, mode_b in flat[i + 1:]:
            if owner_a == owner_b:
                continue
            cell = compatibility_cell(mode_a, mode_b)
            if cell is None:
                cell = compatibility_cell(mode_b, mode_a)
            if cell is None:
                san.violation(
                    "lock-table",
                    f"blank Table-1 pairing held on {resource!r}: "
                    f"{mode_a.value} ({owner_a!r}) with {mode_b.value} "
                    f"({owner_b!r}) — the paper says these are never "
                    f"requested together",
                    LockTableViolation,
                )
            elif cell is False:
                san.violation(
                    "lock-table",
                    f"incompatible modes granted on {resource!r}: "
                    f"{mode_a.value} ({owner_a!r}) vs {mode_b.value} "
                    f"({owner_b!r}) (Table 1: No)",
                    LockTableViolation,
                )


def _rx_holder(lm: Any, resource: Any, *, other_than: Any) -> Any | None:
    """An owner other than ``other_than`` holding RX on ``resource``."""
    for owner, counts in lm._holders.get(resource, {}).items():
        if owner != other_than and counts.get(LockMode.RX, 0) > 0:
            return owner
    return None


# -- patch helpers -------------------------------------------------------------


def _patch(cls: type, attr: str, wrapper_factory: Callable[[Any], Any]) -> None:
    original = getattr(cls, attr)
    _ORIGINALS[(cls, attr)] = original
    wrapped = functools.wraps(original)(wrapper_factory(original))
    setattr(cls, attr, wrapped)


def _skip(san: Sanitizer | None) -> bool:
    return san is None or san._suspend_depth > 0


# -- lock manager patches -----------------------------------------------------


def _patch_lock_manager() -> None:
    from repro.locks.manager import LockManager

    def wrap_touch_one(original: Any) -> Any:
        """Wrap a mutator whose second positional arg names the resource
        (request / convert / downgrade / release take (owner, resource))."""

        def wrapper(self: Any, owner: Any, resource: Any, *args: Any, **kw: Any):
            result = original(self, owner, resource, *args, **kw)
            san = _ACTIVE
            if not _skip(san):
                _check_lock_table(san, self, resource)
            return result

        return wrapper

    def wrap_release_all(original: Any) -> Any:
        def wrapper(self: Any, owner: Any) -> None:
            san = _ACTIVE
            touched = (
                list(self._holders) + list(self._queues) if not _skip(san) else ()
            )
            original(self, owner)
            if not _skip(san):
                for resource in touched:
                    _check_lock_table(san, self, resource)

        return wrapper

    def wrap_cancel_wait(original: Any) -> Any:
        def wrapper(self: Any, owner: Any) -> None:
            san = _ACTIVE
            touched = list(self._queues) if not _skip(san) else ()
            original(self, owner)
            if not _skip(san):
                for resource in touched:
                    _check_lock_table(san, self, resource)

        return wrapper

    def wrap_deliver_deadlock(original: Any) -> Any:
        def wrapper(self: Any, victim: Any) -> None:
            san = _ACTIVE
            if not _skip(san):
                # Validate against the cycle that still exists at delivery
                # time (delivery is what removes the victim's requests).
                # Checking the *delivered* victim rather than wrapping
                # _choose_victim means buggy victim policies — including
                # overridden ones — cannot dodge the check.
                san.checks["victim-policy"] += 1
                cycle = self.find_deadlock_cycle()
                if (
                    cycle
                    and victim in cycle
                    and not getattr(victim, "is_reorganizer", False)
                    and any(getattr(o, "is_reorganizer", False) for o in cycle)
                ):
                    san.violation(
                        "victim-policy",
                        f"deadlock cycle {cycle!r} contains a reorganizer "
                        f"but {victim!r} was sacrificed; the paper always "
                        f"forces the reorganizer to give up its lock",
                        VictimPolicyViolation,
                    )
            original(self, victim)

        return wrapper

    for name in ("request", "convert", "downgrade", "release"):
        _patch(LockManager, name, wrap_touch_one)
    _patch(LockManager, "release_all", wrap_release_all)
    _patch(LockManager, "cancel_wait", wrap_cancel_wait)
    _patch(LockManager, "_deliver_deadlock", wrap_deliver_deadlock)


# -- buffer pool / disk patches ------------------------------------------------


def _real_wal(pool: Any) -> Any | None:
    """The pool's WAL hook iff it is a real log manager (exposes
    ``last_lsn``); the ``_NullWAL`` test stand-in is ignored."""
    wal = getattr(pool, "_wal", None)
    return wal if hasattr(wal, "last_lsn") else None


def _snapshot_pin(pool: Any, page_id: Any) -> None:
    """Record (page_lsn, version) at first pin; later pins keep the
    original snapshot so nested pin/unpin pairs still compare against the
    state the outermost pinner saw."""
    frame = pool._frames.get(page_id)
    if frame is None:
        return
    snaps = _PIN_SNAPSHOTS.setdefault(pool, {})
    if page_id not in snaps:
        snaps[page_id] = (frame.page.page_lsn, pool.version_of(page_id))


def _check_unpin(san: Sanitizer, pool: Any, page_id: Any) -> None:
    """The mutated-frame-unpinned-without-a-stamp-bump check.

    Runs *before* the pin count drops: if the page LSN advanced while the
    frame was pinned (it was mutated through the WAL funnel) but the
    version stamp is unchanged, an optimistic reader that captured the
    stamp before the mutation would validate its stale read as current.
    """
    snaps = _PIN_SNAPSHOTS.get(pool)
    if not snaps or page_id not in snaps:
        return
    frame = pool._frames.get(page_id)
    if frame is None:
        del snaps[page_id]
        return
    san.checks["version-stamp"] += 1
    snap_lsn, snap_ver = snaps[page_id]
    if frame.page.page_lsn > snap_lsn and pool.version_of(page_id) == snap_ver:
        san.violation(
            "version-stamp",
            f"page {page_id} unpinned after mutation (page LSN "
            f"{snap_lsn} -> {frame.page.page_lsn}) without a version-stamp "
            f"bump; optimistic readers would validate stale reads of it "
            f"as current",
            VersionStampViolation,
        )
    if frame.pins <= 1:
        del snaps[page_id]


def _patch_buffer_pool() -> None:
    from repro.locks.resources import page_lock
    from repro.storage.buffer import BufferPool

    def wrap_init(original: Any) -> Any:
        def wrapper(self: Any, disk: Any, *args: Any, **kw: Any) -> None:
            original(self, disk, *args, **kw)
            _POOL_OF_DISK[disk] = self

        return wrapper

    def wrap_mark_dirty(original: Any) -> Any:
        def wrapper(self: Any, page_id: Any, lsn: Any = None) -> None:
            san = _ACTIVE
            if not _skip(san) and lsn is not None:
                frame = self._frames.get(page_id)
                if frame is not None:
                    san.checks["page-lsn"] += 1
                    if lsn < frame.page.page_lsn:
                        san.violation(
                            "page-lsn",
                            f"page {page_id} LSN would regress "
                            f"{frame.page.page_lsn} -> {lsn}; redo's "
                            f"page-LSN test needs monotonic stamps",
                            WALOrderViolation,
                        )
                    wal = _real_wal(self)
                    if wal is not None and 0 < wal.last_lsn < lsn:
                        san.violation(
                            "page-lsn",
                            f"page {page_id} stamped with LSN {lsn} but the "
                            f"log has only appended up to {wal.last_lsn}; "
                            f"log the change before dirtying the page",
                            WALOrderViolation,
                        )
            original(self, page_id, lsn)

        return wrapper

    def wrap_fetch(original: Any) -> Any:
        def wrapper(self: Any, page_id: Any, *, pin: bool = False) -> Any:
            page = original(self, page_id, pin=pin)
            san = _ACTIVE
            if pin and not _skip(san):
                _snapshot_pin(self, page_id)
            if _skip(san) or _CTX.lock_manager is None or _CTX.owner is None:
                return page
            san.checks["fetch-coverage"] += 1
            lm = _CTX.lock_manager
            owner = _CTX.owner
            resource = page_lock(page_id)
            foreign_rx = _rx_holder(lm, resource, other_than=owner)
            if foreign_rx is not None:
                # Navigation reads fetch pages before lock-coupling onto
                # them, so a foreign-RX fetch is legal as long as the S
                # request that follows forgoes — record it, don't raise.
                san.warn(
                    "rx-foreign-fetch",
                    f"{owner!r} fetched page {page_id} while {foreign_rx!r} "
                    f"holds RX on it; the S request that follows must "
                    f"forgo and back off via instant RS",
                )
            frame = self._frames.get(page_id)
            if (
                frame is not None
                and frame.dirty
                and not lm.held_modes(owner, resource)
                and any(o != owner for o in lm._holders.get(resource, ()))
            ):
                san.warn(
                    "dirty-fetch",
                    f"{owner!r} fetched dirty page {page_id} without "
                    f"holding a lock on it while other transactions do",
                )
            return page

        return wrapper

    def wrap_put_new(original: Any) -> Any:
        def wrapper(self: Any, page: Any, *, pin: bool = False) -> Any:
            result = original(self, page, pin=pin)
            if pin and not _skip(_ACTIVE):
                _snapshot_pin(self, page.page_id)
            return result

        return wrapper

    def wrap_pin(original: Any) -> Any:
        def wrapper(self: Any, page_id: Any) -> None:
            original(self, page_id)
            if not _skip(_ACTIVE):
                _snapshot_pin(self, page_id)

        return wrapper

    def wrap_unpin(original: Any) -> Any:
        def wrapper(self: Any, page_id: Any) -> None:
            san = _ACTIVE
            if not _skip(san):
                _check_unpin(san, self, page_id)
            original(self, page_id)

        return wrapper

    _patch(BufferPool, "__init__", wrap_init)
    _patch(BufferPool, "mark_dirty", wrap_mark_dirty)
    _patch(BufferPool, "fetch", wrap_fetch)
    _patch(BufferPool, "put_new", wrap_put_new)
    _patch(BufferPool, "pin", wrap_pin)
    _patch(BufferPool, "unpin", wrap_unpin)


def _patch_disk() -> None:
    from repro.storage.disk import SimulatedDisk

    def wrap_write(original: Any) -> Any:
        def wrapper(self: Any, page: Any) -> None:
            san = _ACTIVE
            if not _skip(san):
                pool = _POOL_OF_DISK.get(self)
                wal = _real_wal(pool) if pool is not None else None
                if wal is not None:
                    san.checks["write-ahead"] += 1
                    if page.page_lsn > wal.flushed_lsn:
                        san.violation(
                            "write-ahead",
                            f"page {page.page_id} written to disk with "
                            f"page_lsn={page.page_lsn} while the log is "
                            f"only flushed to {wal.flushed_lsn}; the "
                            f"write-ahead rule requires flushing first",
                            WALOrderViolation,
                        )
            original(self, page)

        return wrapper

    _patch(SimulatedDisk, "write", wrap_write)


# -- scheduler patch (owner attribution) --------------------------------------


def _patch_scheduler() -> None:
    from repro.txn.scheduler import Scheduler

    def wrap_step(original: Any) -> Any:
        def wrapper(self: Any, process: Any, **kw: Any) -> None:
            prev_owner, prev_lm = _CTX.owner, _CTX.lock_manager
            _CTX.owner, _CTX.lock_manager = process.txn, self.lm
            try:
                original(self, process, **kw)
            finally:
                _CTX.owner, _CTX.lock_manager = prev_owner, prev_lm

        return wrapper

    _patch(Scheduler, "_step", wrap_step)


# -- install / uninstall -------------------------------------------------------


def install(*, strict: bool = True) -> Sanitizer:
    """Install the sanitizer (idempotent); returns the active instance.

    All patches are class-level, so every lock manager / buffer pool /
    disk / scheduler in the process is shadowed, whenever it was created.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    _ACTIVE = Sanitizer(strict=strict)
    _patch_lock_manager()
    _patch_buffer_pool()
    _patch_disk()
    _patch_scheduler()
    return _ACTIVE


def uninstall() -> Sanitizer | None:
    """Remove every patch; returns the sanitizer that was active (with its
    diagnostics intact), or None if none was installed."""
    global _ACTIVE
    san = _ACTIVE
    if san is None:
        return None
    for (cls, attr), original in _ORIGINALS.items():
        setattr(cls, attr, original)
    _ORIGINALS.clear()
    _POOL_OF_DISK.clear()
    _PIN_SNAPSHOTS.clear()
    _CTX.owner = _CTX.lock_manager = None
    _ACTIVE = None
    return san
