"""Bounded schedule-exploration model checker for the reorg protocols.

The discrete-event scheduler is a pure function of spawn times, operation
costs and lock state, so a concurrency experiment normally exercises *one*
interleaving.  This module turns the scheduler into a model checker that
enumerates interleavings and asserts invariants on every one — the
systematic-concurrency-testing analogue of the PR-2 runtime sanitizer.

How it works
============

Two controlled **choice points** are injected through the hooks the
production code exposes (and never pays for when detached):

* ``Scheduler.pick_next`` — at every event boundary, *which* pending event
  runs next (not just the earliest-timestamped one);
* ``LockManager.grant_order`` — when a wait queue with more than one entry
  is dispatched, which waiter is considered first.

A whole scenario is re-executed from scratch for every explored schedule
(stateless model checking); a schedule is identified by its **trace** — the
dot-separated list of choices taken at every choice point with more than
one option (see :func:`format_trace`).  Exploration is a DFS over trace
prefixes with two reductions:

* **state-hash pruning** — alternatives below an already-expanded lock/
  process/log fingerprint are skipped (heuristic: fingerprints abstract
  the full state; disable with ``hash_pruning=False``);
* a **DPOR-style independence filter** — an alternative is skipped when
  the step it would promote touches lock resources and pages disjoint
  from every step it would commute past (heuristic: footprints are
  derived from lock calls and logged page ids; steps with *no* recorded
  footprint are conservatively treated as dependent; disable with
  ``dpor=False``).

At every explored state the enabled **invariants**
(:mod:`repro.analysis.invariants`) are checked; a violation aborts that
schedule and is reported with its replayable trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Sequence

from repro.db import Database
from repro.txn.scheduler import Scheduler, _Process

#: Trace-format version tag; bump on any change to choice-point placement.
TRACE_VERSION = "t1"

#: Safety valve: maximum recorded choice points in one schedule.
_MAX_CHOICE_POINTS = 100_000


class InvariantViolation(Exception):
    """An invariant failed at an explored state.

    Deliberately *not* a :class:`~repro.errors.ReproError`: protocol code
    catches those, and a violation must always reach the explorer.
    """

    def __init__(self, invariant: str, message: str):
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.message = message


class TraceError(ValueError):
    """A trace string is malformed or does not fit the scenario."""


def format_trace(choices: Sequence[int]) -> str:
    """Render a choice list as a compact replayable trace string."""
    body = ".".join(str(c) for c in choices) if choices else "-"
    return f"{TRACE_VERSION}:{body}"


def parse_trace(text: str) -> list[int]:
    """Inverse of :func:`format_trace`; raises :class:`TraceError`."""
    text = text.strip()
    prefix = f"{TRACE_VERSION}:"
    if not text.startswith(prefix):
        raise TraceError(
            f"trace must start with {prefix!r} (got {text[:8]!r})"
        )
    body = text[len(prefix):]
    if body == "-":
        return []
    try:
        choices = [int(part) for part in body.split(".")]
    except ValueError as err:
        raise TraceError(f"malformed trace body {body!r}: {err}") from None
    if any(c < 0 for c in choices):
        raise TraceError(f"negative choice in trace {text!r}")
    return choices


@dataclass
class World:
    """Everything a scenario run exposes to the invariant suite."""

    db: Database
    scheduler: Scheduler
    tree_name: str = "primary"
    #: Keys present when the scenario starts (sequential-model baseline).
    initial_keys: frozenset[int] = frozenset()
    #: txn name -> key, for point lookups whose results are checked.
    reads: dict[str, int] = field(default_factory=dict)
    #: txn name -> ("insert" | "delete", key).
    writes: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: Exception types a process may legitimately die with.
    expected_failures: tuple[type[BaseException], ...] = ()
    #: Custom driver (crash scenarios); ``None`` = ``scheduler.run()``.
    drive: Callable[["World"], None] | None = None
    #: Scratch space for invariants (memoised LSNs etc.).
    notes: dict[str, Any] = field(default_factory=dict)

    def tree(self):
        return self.db.tree(self.tree_name)


@dataclass(frozen=True)
class Scenario:
    """A named, deterministically re-buildable concurrency experiment."""

    name: str
    description: str
    build: Callable[[], World]
    #: Invariant names to check; () = every registered invariant.
    invariants: tuple[str, ...] = ()


@dataclass
class Violation:
    """One invariant failure, with the trace that reproduces it."""

    invariant: str
    message: str
    trace: str
    scenario: str = ""

    def to_dict(self) -> dict[str, str]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "trace": self.trace,
            "scenario": self.scenario,
        }


@dataclass
class RunOutcome:
    """Everything recorded while executing one schedule."""

    #: Choice taken at each recorded (arity > 1) choice point.
    choices: list[int]
    #: Number of options at each recorded choice point.
    arities: list[int]
    #: "event" or "grant" per recorded choice point.
    kinds: list[str]
    #: For event choices: the option event keys; None for grant choices.
    event_options: list[list[tuple] | None]
    #: For event choices: state fingerprint before the choice; else None.
    fingerprints: list[int | None]
    #: For event choices: index into ``exec_log`` of the chosen event.
    choice_exec_index: list[int]
    #: Executed events in order: (event key, lock/page footprint).
    exec_log: list[tuple[tuple, frozenset]]
    violation: Violation | None
    world: World
    events: int

    @property
    def trace(self) -> str:
        return format_trace(self.choices)


class _Recorder:
    """Choice-point policy + instrumentation for ONE schedule execution.

    Plays back a *script* (list of ints) at the choice points it meets, in
    order; past the end of the script it always picks choice 0 (for event
    picks that is the earliest ``(time, seq)`` event — the native
    schedule).  Records every choice with arity > 1 so the completed run's
    full trace replays deterministically.
    """

    def __init__(
        self,
        world: World,
        script: Sequence[int],
        state_checks: Sequence[tuple[str, Callable[[World], None]]],
        *,
        check_victim_policy: bool = True,
        strict: bool = False,
    ):
        self.world = world
        self.script = list(script)
        self.state_checks = list(state_checks)
        self.check_victim_policy = check_victim_policy
        #: Strict mode (trace replay): a scripted choice that exceeds the
        #: arity actually met is a TraceError instead of silently clamped.
        self.strict = strict
        self.choices: list[int] = []
        self.arities: list[int] = []
        self.kinds: list[str] = []
        self.event_options: list[list[tuple] | None] = []
        self.fingerprints: list[int | None] = []
        self.choice_exec_index: list[int] = []
        self.exec_log: list[tuple[tuple, frozenset]] = []
        self.events = 0
        self._steps: dict[str, int] = {}
        self._pending_key: tuple | None = None
        self._pending_foot: set = set()

    # -- choice plumbing -----------------------------------------------------

    def _next_choice(self, arity: int, kind: str) -> int:
        depth = len(self.choices)
        if depth >= _MAX_CHOICE_POINTS:
            raise TraceError(
                f"schedule exceeded {_MAX_CHOICE_POINTS} choice points"
            )
        choice = self.script[depth] if depth < len(self.script) else 0
        if choice >= arity:
            if self.strict:
                raise TraceError(
                    f"trace choice {choice} at depth {depth} but only "
                    f"{arity} options ({kind} point) — trace does not fit "
                    f"this scenario/build"
                )
            choice = 0
        self.choices.append(choice)
        self.arities.append(arity)
        self.kinds.append(kind)
        return choice

    # -- Scheduler.pick_next hook ---------------------------------------------

    def pick_next(self, options: list[tuple]) -> int:
        # The state reached by the previous event is now complete.
        self._flush_exec()
        self._check_state()
        keys = [self._event_key(event) for event in options]
        if len(options) == 1:
            choice = 0
        else:
            fingerprint = self._fingerprint()
            self.choice_exec_index.append(len(self.exec_log))
            choice = self._next_choice(len(options), "event")
            self.event_options.append(keys)
            self.fingerprints.append(fingerprint)
        key = keys[choice]
        self._pending_key = key
        self.events += 1
        return choice

    def _event_key(self, event: tuple) -> tuple:
        """(process name, per-process step index) for a pending event.

        Scheduled actions are ``functools.partial`` objects whose first
        process-typed argument names the owning process; the key is stable
        across runs taking the same choices, unlike heap sequence numbers.
        """
        _, seq, action = event
        name = None
        if isinstance(action, partial):
            for arg in action.args:
                if isinstance(arg, _Process):
                    name = arg.txn.name
                    break
        if name is None:
            name = f"?{seq}"
        return (name, self._steps.get(name, 0))

    def _flush_exec(self) -> None:
        if self._pending_key is None:
            return
        key = self._pending_key
        self.exec_log.append((key, frozenset(self._pending_foot)))
        self._steps[key[0]] = key[1] + 1
        self._pending_key = None
        self._pending_foot = set()

    # -- LockManager hooks ----------------------------------------------------

    def grant_order(self, resource, queue):
        choice = self._next_choice(len(queue), "grant")
        if choice == 0:
            reordered = queue
        else:
            reordered = [queue[choice]] + queue[:choice] + queue[choice + 1:]
        self.event_options.append(None)
        self.fingerprints.append(None)
        self.choice_exec_index.append(-1)
        return reordered

    def on_victim(self, cycle, victim) -> None:
        if not self.check_victim_policy:
            return
        if any(getattr(owner, "is_reorganizer", False) for owner in cycle) and (
            not getattr(victim, "is_reorganizer", False)
        ):
            names = ", ".join(getattr(o, "name", repr(o)) for o in cycle)
            raise InvariantViolation(
                "victim-policy",
                f"deadlock cycle [{names}] contains the reorganizer but "
                f"{getattr(victim, 'name', victim)!r} was chosen as victim",
            )

    # -- footprint instrumentation --------------------------------------------

    def touch(self, token) -> None:
        self._pending_foot.add(token)

    def instrument(self) -> None:
        """Shadow lock-manager/log mutators with footprint-recording
        wrappers (instance attributes; the classes stay untouched)."""
        lm = self.world.db.locks
        for name in ("request", "convert", "release", "downgrade"):
            original = getattr(lm, name)

            def wrapped(owner, resource, *args, _orig=original, **kwargs):
                self.touch(resource)
                return _orig(owner, resource, *args, **kwargs)

            setattr(lm, name, wrapped)

        orig_release_all = lm.release_all

        def release_all(owner):
            for resource in lm.owned_resources(owner):
                self.touch(resource)
            return orig_release_all(owner)

        lm.release_all = release_all

        orig_cancel = lm.cancel_wait

        def cancel_wait(owner):
            request = lm.waiting_request(owner)
            if request is not None:
                self.touch(request.resource)
            return orig_cancel(owner)

        lm.cancel_wait = cancel_wait

        log = self.world.db.log
        orig_append = log.append

        def append(record):
            page_id = getattr(record, "page_id", None)
            # Records without a page id (switch, checkpoint, done) act as
            # global serialization tokens: conservatively dependent.
            self.touch(("page", page_id) if page_id is not None else ("wal-global",))
            return orig_append(record)

        log.append = append

    # -- state checks ----------------------------------------------------------

    def _check_state(self) -> None:
        for _name, check in self.state_checks:
            check(self.world)

    def _fingerprint(self) -> int:
        """Abstraction of the state: lock table + queues + process phase +
        log position.  Used only to prune re-expansion of equivalent
        states; collisions merely under-explore (heuristic)."""
        lm = self.world.db.locks
        holders = tuple(sorted(
            (
                repr(resource),
                getattr(owner, "name", repr(owner)),
                tuple(sorted(
                    (mode.value, count)
                    for mode, count in counts.items() if count > 0
                )),
            )
            for resource, held in lm._holders.items()
            for owner, counts in held.items()
        ))
        queues = tuple(sorted(
            (
                repr(resource),
                tuple(
                    (
                        getattr(req.owner, "name", repr(req.owner)),
                        req.mode.value,
                        req.instant,
                        req.convert_from.value if req.convert_from else "",
                    )
                    for req in queue
                ),
            )
            for resource, queue in lm._queues.items()
        ))
        processes = tuple(
            (
                proc.txn.name,
                proc.done,
                proc.waiting_since is not None,
                self._steps.get(proc.txn.name, 0),
            )
            for proc in self.world.scheduler._processes
        )
        return hash((holders, queues, processes, self.world.db.log.last_lsn))


@dataclass
class ExplorationResult:
    """Summary of one bounded exploration."""

    scenario: str
    schedules_run: int = 0
    distinct_schedules: int = 0
    choice_points: int = 0
    max_depth: int = 0
    pruned_by_hash: int = 0
    pruned_by_independence: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: True when the frontier emptied before the schedule budget ran out
    #: (the bounded state space was exhausted).
    frontier_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "schedules_run": self.schedules_run,
            "distinct_schedules": self.distinct_schedules,
            "choice_points": self.choice_points,
            "max_depth": self.max_depth,
            "pruned_by_hash": self.pruned_by_hash,
            "pruned_by_independence": self.pruned_by_independence,
            "frontier_exhausted": self.frontier_exhausted,
            "violations": [v.to_dict() for v in self.violations],
        }


class Explorer:
    """DFS over schedule-trace prefixes with pruning and invariants."""

    def __init__(
        self,
        *,
        invariants: Iterable[str] | None = None,
        dpor: bool = True,
        hash_pruning: bool = True,
    ):
        from repro.analysis import invariants as inv

        self.invariant_set = inv.get(invariants)
        self.dpor = dpor
        self.hash_pruning = hash_pruning

    # -- single-schedule execution ---------------------------------------------

    def execute(
        self, scenario: Scenario, script: Sequence[int] = (), *, strict: bool = False
    ) -> RunOutcome:
        """Run one schedule of ``scenario`` following ``script`` (default
        choice 0 past its end) and check invariants along the way."""
        names = scenario.invariants or None
        from repro.analysis import invariants as inv

        enabled = (
            self.invariant_set if names is None else inv.get(names)
        )
        state_checks = [
            (i.name, i.check) for i in enabled if i.scope == "state"
        ]
        final_checks = [
            (i.name, i.check) for i in enabled if i.scope == "final"
        ]
        check_victim = any(i.name == "victim-policy" for i in enabled)

        world = scenario.build()
        recorder = _Recorder(
            world, script, state_checks,
            check_victim_policy=check_victim, strict=strict,
        )
        world.scheduler.pick_next = recorder.pick_next
        world.db.locks.grant_order = recorder.grant_order
        world.db.locks.on_victim = recorder.on_victim
        recorder.instrument()

        violation: Violation | None = None
        try:
            if world.drive is not None:
                world.drive(world)
            else:
                world.scheduler.run()
            recorder._flush_exec()
            recorder._check_state()
            for name, check in final_checks:
                check(world)
        except InvariantViolation as err:
            violation = Violation(
                invariant=err.invariant,
                message=err.message,
                trace=format_trace(recorder.choices),
                scenario=scenario.name,
            )
        except TraceError:
            raise
        except Exception as err:  # a schedule that crashes IS a finding
            violation = Violation(
                invariant="no-runtime-error",
                message=f"{type(err).__name__}: {err}",
                trace=format_trace(recorder.choices),
                scenario=scenario.name,
            )
        finally:
            # Close abandoned generators now (crashed or violating runs
            # leave processes mid-flight).  Their ``finally: yield
            # ReleaseAll()`` blocks would otherwise fire "generator ignored
            # GeneratorExit" warnings at GC time.
            for process in world.scheduler._processes:
                if not process.done:
                    try:
                        process.gen.close()
                    except RuntimeError:
                        pass
        if strict and violation is None and len(script) > len(recorder.choices):
            raise TraceError(
                f"trace has {len(script)} choices but the run met only "
                f"{len(recorder.choices)} choice points"
            )
        return RunOutcome(
            choices=recorder.choices,
            arities=recorder.arities,
            kinds=recorder.kinds,
            event_options=recorder.event_options,
            fingerprints=recorder.fingerprints,
            choice_exec_index=recorder.choice_exec_index,
            exec_log=recorder.exec_log,
            violation=violation,
            world=world,
            events=recorder.events,
        )

    def replay(self, scenario: Scenario, trace: str | Sequence[int]) -> RunOutcome:
        """Deterministically re-run one schedule from its trace string."""
        script = parse_trace(trace) if isinstance(trace, str) else list(trace)
        return self.execute(scenario, script, strict=True)

    # -- exploration ------------------------------------------------------------

    def explore(
        self,
        scenario: Scenario,
        *,
        max_schedules: int = 1000,
        seed_trace: str | Sequence[int] | None = None,
        stop_on_first_violation: bool = False,
        max_violations: int = 25,
    ) -> ExplorationResult:
        """Bounded DFS over schedules of ``scenario``.

        Starts from ``seed_trace`` (default: the native schedule) and
        expands alternative choices depth-first, pruning via state hashes
        and the independence filter.
        """
        result = ExplorationResult(scenario=scenario.name)
        if seed_trace is None:
            seed: list[int] = []
        elif isinstance(seed_trace, str):
            seed = parse_trace(seed_trace)
        else:
            seed = list(seed_trace)
        frontier: list[list[int]] = [seed]
        distinct: set[tuple[int, ...]] = set()
        expanded: set[int] = set()
        while frontier and result.schedules_run < max_schedules:
            prefix = frontier.pop()
            run = self.execute(scenario, prefix)
            result.schedules_run += 1
            result.choice_points += len(run.choices)
            result.max_depth = max(result.max_depth, len(run.choices))
            distinct.add(tuple(run.choices))
            if run.violation is not None:
                result.violations.append(run.violation)
                if (
                    stop_on_first_violation
                    or len(result.violations) >= max_violations
                ):
                    break
            for depth in range(len(prefix), len(run.choices)):
                arity = run.arities[depth]
                if arity <= 1:
                    continue
                if run.kinds[depth] == "event":
                    fingerprint = run.fingerprints[depth]
                    if self.hash_pruning and fingerprint is not None:
                        if fingerprint in expanded:
                            result.pruned_by_hash += arity - 1
                            continue
                        expanded.add(fingerprint)
                for alternative in range(1, arity):
                    if (
                        self.dpor
                        and run.kinds[depth] == "event"
                        and self._independent(run, depth, alternative)
                    ):
                        result.pruned_by_independence += 1
                        continue
                    frontier.append(run.choices[:depth] + [alternative])
        result.distinct_schedules = len(distinct)
        result.frontier_exhausted = not frontier
        return result

    @staticmethod
    def _independent(run: RunOutcome, depth: int, alternative: int) -> bool:
        """True when promoting ``alternative`` at ``depth`` provably
        commutes with every step it would jump ahead of (disjoint nonempty
        footprints), so the reordered schedule is equivalent to one already
        explored.  Conservative: unknown (empty) footprints never prune."""
        options = run.event_options[depth]
        if options is None:
            return False
        alt_key = options[alternative]
        start = run.choice_exec_index[depth]
        if start < 0:
            return False
        for index in range(start, len(run.exec_log)):
            if run.exec_log[index][0] == alt_key:
                alt_foot = run.exec_log[index][1]
                if not alt_foot:
                    return False
                for key_foot in run.exec_log[start:index]:
                    foot = key_foot[1]
                    if not foot or (foot & alt_foot):
                        return False
                return True
        # The alternative never executed under this schedule (blocked,
        # aborted, ...): cannot establish independence.
        return False
