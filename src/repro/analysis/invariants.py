"""The pluggable invariant suite the schedule explorer checks.

Each invariant is registered with a *scope*:

* ``state``  — checked at every explored state (after every event);
* ``final``  — checked once, after the scenario's schedule has drained
  (and, for crash scenarios, after recovery);
* ``hook``   — enforced synchronously inside a lock-manager hook (the
  victim-policy check fires at the moment a deadlock victim is chosen,
  where the cycle is still observable).

Checks signal failure by raising
:class:`~repro.analysis.explorer.InvariantViolation`; the explorer
converts that into a reported violation carrying the replayable trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.explorer import InvariantViolation, World
from repro.errors import TreeInvariantError
from repro.locks.modes import LockMode, compatibility_cell
from repro.storage.page import PageKind


@dataclass(frozen=True)
class Invariant:
    name: str
    scope: str  # "state" | "final" | "hook"
    description: str
    check: Callable[[World], None]


REGISTRY: dict[str, Invariant] = {}


def register(name: str, scope: str, description: str):
    """Decorator: add a check function to the registry under ``name``."""

    def decorate(fn: Callable[[World], None]) -> Callable[[World], None]:
        REGISTRY[name] = Invariant(name, scope, description, fn)
        return fn

    return decorate


def get(names: Iterable[str] | None = None) -> list[Invariant]:
    """Resolve invariant names (``None`` = all), preserving registry order."""
    if names is None:
        return list(REGISTRY.values())
    wanted = list(names)
    unknown = [n for n in wanted if n not in REGISTRY]
    if unknown:
        raise KeyError(
            f"unknown invariant(s) {unknown}; known: {sorted(REGISTRY)}"
        )
    return [REGISTRY[n] for n in wanted]


def _owner_name(owner) -> str:
    return getattr(owner, "name", repr(owner))


# -- 1. Table-1 holder compatibility -----------------------------------------------


@register(
    "table1-compat",
    "state",
    "every pair of lock holders on a resource is Table-1 compatible; RS is "
    "never actually held; blank Table-1 cells never co-occur",
)
def check_table1(world: World) -> None:
    for resource, held in world.db.locks._holders.items():
        entries = [
            (owner, mode)
            for owner, counts in held.items()
            for mode, count in counts.items()
            if count > 0
        ]
        for owner, mode in entries:
            if mode is LockMode.RS:
                raise InvariantViolation(
                    "table1-compat",
                    f"RS held on {resource!r} by {_owner_name(owner)} — RS "
                    f"is instant-duration and must never enter the holder set",
                )
        for i, (owner_a, mode_a) in enumerate(entries):
            for owner_b, mode_b in entries[i + 1:]:
                if owner_a == owner_b:
                    continue
                cell = compatibility_cell(mode_a, mode_b)
                if cell is None:
                    raise InvariantViolation(
                        "table1-compat",
                        f"Table-1 blank cell reached on {resource!r}: "
                        f"{_owner_name(owner_a)}:{mode_a.value} with "
                        f"{_owner_name(owner_b)}:{mode_b.value}",
                    )
                if cell is False:
                    raise InvariantViolation(
                        "table1-compat",
                        f"incompatible modes co-held on {resource!r}: "
                        f"{_owner_name(owner_a)}:{mode_a.value} with "
                        f"{_owner_name(owner_b)}:{mode_b.value}",
                    )


# -- 2. reorganizer-is-always-victim ------------------------------------------------


@register(
    "victim-policy",
    "hook",
    "whenever the reorganizer is part of a deadlock cycle it is chosen as "
    "the victim (paper section 4.2); enforced at the LockManager.on_victim "
    "hook, where the cycle is observable",
)
def check_victim_policy(world: World) -> None:
    """Placeholder: the actual check runs inside the explorer's
    ``on_victim`` hook (see ``_Recorder.on_victim``), because the cycle is
    only known at victim-choice time."""


# -- 3. B+-tree structural integrity -----------------------------------------------


def _exclusive_held(world: World) -> bool:
    for held in world.db.locks._holders.values():
        for counts in held.values():
            if counts.get(LockMode.X, 0) > 0 or counts.get(LockMode.RX, 0) > 0:
                return True
    return False


@register(
    "btree-structure",
    "state",
    "key order, separator bounds, sibling chain and reachability hold at "
    "every quiescent point (no X/RX held — in-flight reorg units are "
    "allowed to be mid-surgery)",
)
def check_structure(world: World) -> None:
    exclusive = _exclusive_held(world)
    notes = world.notes
    previously_exclusive = notes.get("structure.prev_excl", False)
    notes["structure.prev_excl"] = exclusive
    if exclusive:
        # Someone is mid-update; the tree may legitimately be inconsistent.
        return
    lsn = world.db.log.last_lsn
    if not previously_exclusive and notes.get("structure.lsn") == lsn:
        return  # nothing changed since the last validation
    notes["structure.lsn"] = lsn
    try:
        world.tree().validate()
    except TreeInvariantError as err:
        raise InvariantViolation("btree-structure", str(err)) from None


# -- 4. side-file replay equivalence ------------------------------------------------


def _expected_keys(world: World) -> tuple[set[int], set[int]]:
    """(must, may): keys that must be present vs. keys whose presence is
    admissible either way (writers that aborted mid-flight)."""
    must = set(world.initial_keys)
    may: set[int] = set()
    for txn, result in world.scheduler.completed:
        write = world.writes.get(txn.name)
        if write is None or not result:
            continue  # not a writer, or a no-op (duplicate insert / miss)
        kind, key = write
        if kind == "insert":
            must.add(key)
        else:
            must.discard(key)
    for txn, _exc in world.scheduler.failed:
        write = world.writes.get(txn.name)
        if write is None:
            continue
        kind, key = write
        if kind == "insert":
            may.add(key)
        elif key in must:
            must.discard(key)
            may.add(key)
    return must, may


@register(
    "sidefile-replay",
    "final",
    "after reorg + side-file replay the tree holds exactly the records a "
    "serial execution of the committed updates would leave (aborted "
    "writers may land either way)",
)
def check_sidefile_replay(world: World) -> None:
    must, may = _expected_keys(world)
    actual = {record.key for record in world.tree().items()}
    missing = must - actual
    extra = actual - must - may
    if missing or extra:
        raise InvariantViolation(
            "sidefile-replay",
            f"final tree diverges from the sequential model: "
            f"missing={sorted(missing)} unexpected={sorted(extra)}",
        )


# -- 5. switch-protocol safety ------------------------------------------------------


@register(
    "switch-safety",
    "state",
    "the root pointer always names an allocated leaf/internal page — no "
    "process can ever observe a half-switched access path",
)
def check_switch_safety(world: World) -> None:
    tree = world.tree()
    root_id = tree.root_id
    try:
        page = world.db.store.get(root_id)
    except Exception as err:
        raise InvariantViolation(
            "switch-safety", f"root page {root_id} unreadable: {err}"
        ) from None
    if page.kind not in (PageKind.LEAF, PageKind.INTERNAL):
        raise InvariantViolation(
            "switch-safety",
            f"root page {root_id} has kind {page.kind!r}",
        )


# -- 6. linearizability of reads ----------------------------------------------------


@register(
    "read-linearizability",
    "final",
    "every completed point read returns a result admissible under some "
    "serial order of the scenario's writers, and no process dies with an "
    "exception outside the scenario's expected set",
)
def check_read_linearizability(world: World) -> None:
    allowed = world.expected_failures
    for txn, exc in world.scheduler.failed:
        if not isinstance(exc, allowed):
            raise InvariantViolation(
                "read-linearizability",
                f"{txn.name} died with unexpected "
                f"{type(exc).__name__}: {exc}",
            )
    for txn, result in world.scheduler.completed:
        key = world.reads.get(txn.name)
        if key is None:
            continue
        present_initially = key in world.initial_keys
        present_ok = present_initially or any(
            kind == "insert" and wkey == key
            for kind, wkey in world.writes.values()
        )
        absent_ok = (not present_initially) or any(
            kind == "delete" and wkey == key
            for kind, wkey in world.writes.values()
        )
        found = result is not None
        if found and not present_ok:
            raise InvariantViolation(
                "read-linearizability",
                f"{txn.name} found key {key}, but no serial order makes it "
                f"present",
            )
        if not found and not absent_ok:
            raise InvariantViolation(
                "read-linearizability",
                f"{txn.name} missed key {key}, but it is present in every "
                f"serial order",
            )
