"""reprorace — hybrid lockset + happens-before data-race detector.

Reprocheck (:mod:`repro.analysis.explorer`) only finds a missing lock on a
schedule it happens to explore; this module flags one on **any single
execution**, Eraser-style.  When installed it patches the same narrow
funnels as the sanitizer — lock manager, buffer pool, scheduler, WAL —
and maintains two complementary views of every page-frame access:

* **Vector clocks** per DES transaction, with happens-before edges from

  - lock *release -> acquire* (per-resource release clocks; a grant — also
    a delayed grant, joined via an ``on_grant`` chain — merges the
    resource's release clock into the acquirer),
  - WAL *flush ordering* (flushes of one log are serialized by the device,
    so flushers join a per-log clock; appends deliberately do **not**
    publish — the reorganizer's stable-point flushes must not absorb a
    concurrent updater's clock and mask its unlocked writes),
  - scheduler *spawn/join* (a process spawned from inside a step inherits
    the spawner's clock; every process joins the finish clocks of the
    transactions that completed before it started), and
  - optimistic *version validation*: a successful ``version_of``
    validation joins the page's write clock into the reader — PR 6's
    lock-free readers are benign — while a read that commits without
    validating is reported as an ``unvalidated-read``.

* **Eraser lockset state machines** per page
  (virgin -> exclusive -> shared -> shared-modified) fed by the live
  :class:`~repro.locks.manager.LockManager` holder sets.  Intention modes
  (IS/IX) are *not* protective — a tree-level IX must never mask a missing
  page lock.  Reads are protected by S/X/R/RX on a common resource, writes
  only by X/RX.  The reorg side-file hand-off (the ``TreeSwitchRecord``
  append that flips the root) is modeled as a *lockset transfer*: every
  page last written by the switching transaction restarts virgin, because
  ownership of the new tree passes from its builder to the readers that
  will lock it under the new tree-lock name.

A pair of accesses is reported as a race only when it is **both**
vector-clock-unordered **and** unprotected — the hybrid rule.  Reads
performed while holding no lock on the page are *pending* until they are
either validated (optimistic path), covered by a later lock acquire on the
same page by the same owner (the fetch-then-lock-couple navigation idiom),
or finalized at transaction end, where a conflicting unordered write turns
them into an ``unvalidated-read`` report.  Reports carry both access
sites, the Eraser state, the surviving candidate lockset and the
vector-clock evidence.

Like the sanitizer, every patch is class-level and opt-in: when not
installed the hot paths are byte-for-byte the original functions (enforced
by ``benchmarks/test_bench_race_overhead.py``).  Enable via
``TreeConfig(race_detector=True)``, the ``REPRO_RACE=1`` pytest fixture,
or ``python -m reprorace`` (which race-checks every schedule reprocheck
explores).  Install *before* building the database: the optimistic-window
hook rides on the instance-bound ``version_of`` shortcut that
``StorageManager.__init__`` / ``ShardStore.__init__`` create.  When the
sanitizer is also wanted, install it first and uninstall it last (LIFO),
as ``tests/conftest.py`` does.
"""

from __future__ import annotations

import functools
import os
import weakref
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ReproError
from repro.locks.modes import LockMode
from repro.locks.resources import PAGE

#: Modes that protect a *read* of a page they are held on.
_READ_PROTECTIVE = frozenset(
    {LockMode.S, LockMode.X, LockMode.R, LockMode.RX}
)
#: Modes that protect a *write*.  Version stamps never protect writes:
#: every funnel write bumps the version, so a version "lockset" on the
#: write side would mask everything.
_WRITE_PROTECTIVE = frozenset({LockMode.X, LockMode.RX})


class RaceError(ReproError):
    """A data race was detected (strict mode only)."""


@dataclass(frozen=True)
class AccessSite:
    """One side of a racing pair."""

    owner: str  #: repr of the accessing transaction
    op: str  #: "read" | "write"
    site: str  #: file:line in function (innermost generator frame)
    clock: int  #: accessor's own vector-clock component at access time
    locks: tuple[str, ...]  #: protective resources held at access time
    validated: bool = False  #: read was version-validated

    def __str__(self) -> str:
        held = ", ".join(self.locks) if self.locks else "no locks"
        extra = ", version-validated" if self.validated else ""
        return f"{self.op} by {self.owner} at {self.site} ({held}{extra})"


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting, unordered, unprotected accesses to one page."""

    kind: str  #: "read-write" | "write-write" | "unvalidated-read"
    page_id: Any
    state: str  #: Eraser state of the page when the race surfaced
    candidate_lockset: tuple[str, ...]
    earlier: AccessSite
    later: AccessSite
    evidence: str  #: vector-clock evidence

    def summary(self) -> str:
        return (
            f"[{self.kind}] page {self.page_id} ({self.state}): "
            f"{self.earlier} vs {self.later}"
        )

    def __str__(self) -> str:
        cand = (
            ", ".join(self.candidate_lockset)
            if self.candidate_lockset
            else "(empty)"
        )
        return (
            f"{self.summary()}\n"
            f"    candidate lockset: {cand}\n"
            f"    {self.evidence}"
        )


@dataclass
class RaceDetector:
    """Collected state of one installed detector."""

    strict: bool = False
    reports: list[RaceReport] = field(default_factory=list)
    #: kind -> number of checks performed (for "did it run" assertions).
    checks: Counter = field(default_factory=Counter)
    _suspend_depth: int = 0
    _seen: set = field(default_factory=set)

    @property
    def suspended_now(self) -> bool:
        return self._suspend_depth > 0

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Temporarily disable all tracking (e.g. crash simulation)."""
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1

    def report(
        self,
        *,
        kind: str,
        page_id: Any,
        state: str,
        candidate: tuple[str, ...],
        earlier: AccessSite,
        later: AccessSite,
        evidence: str,
    ) -> None:
        key = (kind, page_id, earlier.owner, earlier.site, later.owner, later.site)
        if key in self._seen:
            return
        self._seen.add(key)
        rep = RaceReport(
            kind=kind,
            page_id=page_id,
            state=state,
            candidate_lockset=candidate,
            earlier=earlier,
            later=later,
            evidence=evidence,
        )
        self.reports.append(rep)
        if self.strict:
            raise RaceError(str(rep))


# -- module state -------------------------------------------------------------

_ACTIVE: RaceDetector | None = None

#: (cls, attr) -> original unbound function, for uninstall.
_ORIGINALS: dict[tuple[type, str], Any] = {}

class _OwnerTable:
    """Mapping keyed by whatever drives an access — scheduler process
    objects in DES runs (held weakly, so per-run state dies with the
    run) or plain owner tokens like strings when the lock manager is
    exercised directly by unit tests (held strongly; cleared on
    uninstall)."""

    __slots__ = ("_weak", "_strong")

    def __init__(self) -> None:
        self._weak: "weakref.WeakKeyDictionary[Any, Any]" = (
            weakref.WeakKeyDictionary()
        )
        self._strong: dict = {}

    def _table(self, key: Any):
        try:
            weakref.ref(key)
        except TypeError:
            return self._strong
        return self._weak

    def get(self, key: Any, default: Any = None) -> Any:
        return self._table(key).get(key, default)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._table(key)[key] = value

    def pop(self, key: Any, default: Any = None) -> Any:
        return self._table(key).pop(key, default)

    def items(self) -> list:
        return list(self._weak.items()) + list(self._strong.items())

    def clear(self) -> None:
        self._weak.clear()
        self._strong.clear()


#: Transaction -> vector clock {Transaction: int}.
_VCS = _OwnerTable()
#: LockManager -> {resource: release clock} (lock release->acquire edges).
_LOCK_CLOCKS: "weakref.WeakKeyDictionary[Any, dict]" = weakref.WeakKeyDictionary()
#: LogManager -> flush clock (flusher<->flusher edges only).
_WAL_CLOCKS: "weakref.WeakKeyDictionary[Any, dict]" = weakref.WeakKeyDictionary()
#: Scheduler -> clock published by every finished/failed process.
_FINISH_CLOCKS: "weakref.WeakKeyDictionary[Any, dict]" = weakref.WeakKeyDictionary()
#: Transaction -> spawner's clock snapshot, joined at _start.
_SPAWN_JOIN = _OwnerTable()
#: BufferPool -> {page_id: _PageState}.
_PAGE_STATES: "weakref.WeakKeyDictionary[Any, dict]" = weakref.WeakKeyDictionary()
#: Transaction -> {page_id: captured version} (open optimistic windows).
_WINDOWS = _OwnerTable()
#: Transaction -> {page_id: _PendingRead} (reads awaiting validation/lock).
_PENDING = _OwnerTable()


class _RaceContext:
    """Which process is driving storage calls right now."""

    __slots__ = ("owner", "lock_manager", "scheduler", "process")

    def __init__(self) -> None:
        self.owner: Any = None
        self.lock_manager: Any = None
        self.scheduler: Any = None
        self.process: Any = None

    def clear(self) -> None:
        self.owner = self.lock_manager = self.scheduler = self.process = None


_RCTX = _RaceContext()


def active() -> RaceDetector | None:
    """The installed detector, or None."""
    return _ACTIVE


def _skip(det: RaceDetector | None) -> bool:
    return det is None or det._suspend_depth > 0


def _patch(cls: type, attr: str, wrapper_factory: Callable[[Any], Any]) -> None:
    original = getattr(cls, attr)
    _ORIGINALS[(cls, attr)] = original
    wrapped = functools.wraps(original)(wrapper_factory(original))
    setattr(cls, attr, wrapped)


# -- vector-clock plumbing -----------------------------------------------------


def _vc(owner: Any) -> dict:
    vc = _VCS.get(owner)
    if vc is None:
        vc = _VCS[owner] = {owner: 1}
    return vc


def _merge(dst: dict, src: dict) -> None:
    for k, v in src.items():
        if v > dst.get(k, 0):
            dst[k] = v


def _site() -> str:
    """Source site of the current access: the innermost frame of the
    driving process's generator chain (suspended at a ``Call``/``Think``
    yield, or live during ``gen.send``)."""
    process = _RCTX.process
    gen = getattr(process, "gen", None)
    frame = None
    while gen is not None:
        f = getattr(gen, "gi_frame", None)
        if f is None:
            break
        frame = f
        gen = getattr(gen, "gi_yieldfrom", None)
    if frame is None:
        return "<outside scheduler>"
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{frame.f_lineno} in {code.co_name}"


def _protective(lm: Any, owner: Any) -> tuple[frozenset, frozenset]:
    """(read-protective, write-protective) resources ``owner`` holds.
    Intention modes are excluded by construction of the mode sets."""
    rset: set = set()
    wset: set = set()
    for res, held in lm._holders.items():
        counts = held.get(owner)
        if not counts:
            continue
        for mode, n in counts.items():
            if n > 0:
                if mode in _READ_PROTECTIVE:
                    rset.add(res)
                if mode in _WRITE_PROTECTIVE:
                    wset.add(res)
    return frozenset(rset), frozenset(wset)


def _res_reprs(resources: Any) -> tuple[str, ...]:
    return tuple(sorted(repr(r) for r in resources))


# -- per-page Eraser state -----------------------------------------------------


class _PageState:
    """History of one page: Eraser state machine + FastTrack-style
    last-write epoch and last-read-per-owner map."""

    __slots__ = (
        "state",
        "first_owner",
        "candidate",
        "last_write",
        "write_clock",
        "reads",
    )

    def __init__(self) -> None:
        self.state = "virgin"
        self.first_owner: Any = None
        #: Intersection of protective resources over all shared accesses
        #: (None until the page leaves the exclusive state).  Purely
        #: diagnostic — the pairwise rule below decides races.
        self.candidate: set | None = None
        #: (owner, clock, AccessSite, write-protective frozenset) | None
        self.last_write: tuple | None = None
        #: Join of every writer's clock (optimistic validation edge).
        self.write_clock: dict = {}
        #: owner -> (clock, AccessSite, read-protective frozenset, validated)
        self.reads: dict = {}

    def advance(self, owner: Any, *, write: bool, prot: frozenset) -> None:
        if self.state == "virgin":
            self.state = "exclusive"
            self.first_owner = owner
        elif self.state == "exclusive":
            if owner is not self.first_owner:
                self.state = "shared-modified" if write else "shared"
                self.candidate = set(prot)
            return
        else:
            if write:
                self.state = "shared-modified"
            if self.candidate is not None:
                self.candidate &= prot


class _PendingRead:
    """A page read performed while holding no lock on the page — in limbo
    until validated, covered by a later lock acquire, or finalized."""

    __slots__ = ("pool", "clock", "site", "snapshot", "rprot", "conflicts")

    def __init__(self, pool, clock, site, snapshot, rprot):
        self.pool = pool
        self.clock = clock
        self.site = site
        self.snapshot = snapshot  #: copy of the reader's VC at fetch time
        self.rprot = rprot
        #: Unordered, unprotected writes that hit the page while this read
        #: was pending — noted at write time (a later write, e.g. the
        #: reorganizer's own side-file apply, would overwrite last_write
        #: and hide them from the finalize check), judged at discharge:
        #: dropped if the read gets validated or lock-coupled, reported if
        #: the transaction commits the read as-is.
        self.conflicts: list = []


def _page_state(pool: Any, page_id: Any) -> _PageState:
    states = _PAGE_STATES.get(pool)
    if states is None:
        states = _PAGE_STATES[pool] = {}
    st = states.get(page_id)
    if st is None:
        st = states[page_id] = _PageState()
    return st


def _evidence(later_owner: Any, earlier_owner: Any, earlier_clock: int) -> str:
    vc = _vc(later_owner)
    return (
        f"VC evidence: VC[{later_owner!r}][{earlier_owner!r}] = "
        f"{vc.get(earlier_owner, 0)} < {earlier_clock} (the earlier access"
        f" is not ordered before the later one)"
    )


# -- access recording & the hybrid race rule ----------------------------------


def _record_read(
    det: RaceDetector,
    pool: Any,
    page_id: Any,
    owner: Any,
    *,
    rprot: frozenset,
    validated: bool,
    site: str | None = None,
) -> None:
    st = _page_state(pool, page_id)
    vc = _vc(owner)
    here = AccessSite(
        owner=repr(owner),
        op="read",
        site=site or _site(),
        clock=vc[owner],
        locks=_res_reprs(rprot),
        validated=validated,
    )
    det.checks["read-check"] += 1
    lw = st.last_write
    if lw is not None:
        w_owner, w_clock, w_site, w_prot = lw
        if (
            w_owner is not owner
            and vc.get(w_owner, 0) < w_clock
            and not validated
            and not (rprot & w_prot)
        ):
            st.advance(owner, write=False, prot=rprot)
            det.report(
                kind="read-write",
                page_id=page_id,
                state=st.state,
                candidate=_res_reprs(st.candidate or ()),
                earlier=w_site,
                later=here,
                evidence=_evidence(owner, w_owner, w_clock),
            )
            st.reads[owner] = (vc[owner], here, rprot, validated)
            return
    st.advance(owner, write=False, prot=rprot)
    st.reads[owner] = (vc[owner], here, rprot, validated)


def _record_write(det: RaceDetector, pool: Any, page_id: Any, owner: Any) -> None:
    lm = _RCTX.lock_manager
    if lm is None:
        return
    st = _page_state(pool, page_id)
    vc = _vc(owner)
    _, wprot = _protective(lm, owner)
    here = AccessSite(
        owner=repr(owner),
        op="write",
        site=_site(),
        clock=vc[owner],
        locks=_res_reprs(wprot),
    )
    det.checks["write-check"] += 1
    st.advance(owner, write=True, prot=wprot)
    cand = _res_reprs(st.candidate or ())
    lw = st.last_write
    if lw is not None:
        w_owner, w_clock, w_site, w_prot = lw
        if (
            w_owner is not owner
            and vc.get(w_owner, 0) < w_clock
            and not (wprot & w_prot)
        ):
            det.report(
                kind="write-write",
                page_id=page_id,
                state=st.state,
                candidate=cand,
                earlier=w_site,
                later=here,
                evidence=_evidence(owner, w_owner, w_clock),
            )
    for r_owner, (r_clock, r_site, r_rprot, r_validated) in st.reads.items():
        if r_owner is owner:
            continue
        if vc.get(r_owner, 0) >= r_clock:
            continue
        # A version-validated read is linearized at its validation point:
        # the version stamp is its lock, so a later unordered write is the
        # benign race PR 6 designed for.  Never applies to write pairs.
        if r_validated or (r_rprot & wprot):
            continue
        det.report(
            kind="read-write",
            page_id=page_id,
            state=st.state,
            candidate=cand,
            earlier=r_site,
            later=here,
            evidence=_evidence(owner, r_owner, r_clock),
        )
    for p_owner, pend in list(_PENDING.items()):
        p = pend.get(page_id)
        if p is None or p.pool is not pool:
            continue
        if (
            p_owner is not owner
            and vc.get(p_owner, 0) < p.clock
            and not (p.rprot & wprot)
        ):
            p.conflicts.append((here, p_owner))
        # This write is about to overwrite ``last_write`` — run the
        # finalize-time check against the *old* writer now, or its
        # evidence is lost (e.g. the reorganizer dropping the old tree
        # after the switch overwrites an updater's racy base write).
        if lw is not None:
            lw_owner, lw_clock, lw_site, lw_prot = lw
            if (
                lw_owner is not p_owner
                and p.snapshot.get(lw_owner, 0) < lw_clock
                and not (p.rprot & lw_prot)
            ):
                p.conflicts.append((lw_site, lw_owner))
    st.last_write = (owner, vc[owner], here, wprot)
    _merge(st.write_clock, vc)


def _discharge_pending_with_lock(det: RaceDetector, owner: Any, page_id: Any) -> None:
    """A lock was granted on a page the owner had read unlocked: the
    fetch-then-lock-couple idiom.  Re-record the read *now*, under the
    lock and after the grant's release-clock join."""
    pend = _PENDING.get(owner)
    if not pend:
        return
    p = pend.pop(page_id, None)
    if p is None:
        return
    lm = _RCTX.lock_manager
    rprot, _ = _protective(lm, owner) if lm is not None else (frozenset(), None)
    det.checks["pending-locked"] += 1
    _record_read(
        det,
        p.pool,
        page_id,
        owner,
        rprot=rprot,
        validated=False,
        site=f"{p.site} (lock-coupled after fetch)",
    )


def _finalize_pending(det: RaceDetector, owner: Any) -> None:
    """Transaction end (or mid-protocol ReleaseAll): any read still
    pending was never validated nor locked.  A conflicting write that is
    unordered w.r.t. the *fetch-time* clock snapshot is a race — checking
    against the snapshot matters, because by now drain/switch edges may
    have ordered the writer after the reader's current clock."""
    pend = _PENDING.get(owner)
    if not pend:
        return
    for page_id, p in list(pend.items()):
        det.checks["pending-final"] += 1
        states = _PAGE_STATES.get(p.pool)
        st = states.get(page_id) if states else None
        here = AccessSite(
            owner=repr(owner),
            op="read",
            site=p.site,
            clock=p.clock,
            locks=_res_reprs(p.rprot),
        )
        for w_site, _w_owner in p.conflicts:
            det.report(
                kind="unvalidated-read",
                page_id=page_id,
                state=st.state if st is not None else "shared-modified",
                candidate=_res_reprs(st.candidate or ()) if st is not None else (),
                earlier=here,
                later=w_site,
                evidence=(
                    f"VC evidence: the write was not ordered after the "
                    f"read (writer's VC missed clock {p.clock}); the read "
                    f"was never version-validated nor locked"
                ),
            )
        if p.conflicts:
            continue
        if st is not None:
            lw = st.last_write
            if lw is not None:
                w_owner, w_clock, w_site, w_prot = lw
                if (
                    w_owner is not owner
                    and p.snapshot.get(w_owner, 0) < w_clock
                    and not (p.rprot & w_prot)
                ):
                    st.advance(owner, write=False, prot=p.rprot)
                    det.report(
                        kind="unvalidated-read",
                        page_id=page_id,
                        state=st.state,
                        candidate=_res_reprs(st.candidate or ()),
                        earlier=here if p.clock <= w_clock else w_site,
                        later=w_site if p.clock <= w_clock else here,
                        evidence=(
                            f"VC evidence: snapshot[{w_owner!r}] = "
                            f"{p.snapshot.get(w_owner, 0)} < {w_clock}; the "
                            f"read was never version-validated nor locked"
                        ),
                    )
                    continue
            st.advance(owner, write=False, prot=p.rprot)
            st.reads[owner] = (p.clock, here, p.rprot, False)
    pend.clear()


def _discard_owner(owner: Any) -> None:
    """An aborted transaction never used its reads: drop them silently."""
    for table in (_PENDING, _WINDOWS):
        d = table.get(owner)
        if d:
            d.clear()


# -- optimistic windows (version_of instance hook) -----------------------------


def _on_version_of(
    det: RaceDetector, pool: Any, owner: Any, page_id: Any, version: int
) -> None:
    windows = _WINDOWS.get(owner)
    if windows is None:
        windows = _WINDOWS[owner] = {}
    captured = windows.get(page_id)
    if captured is None:
        windows[page_id] = version
        det.checks["window-capture"] += 1
        return
    if version == captured:
        # Successful validation: a read-acquire edge.  The reader is
        # ordered after every write the stamp covers, and the pending
        # read (if any) is discharged as validated.
        det.checks["validation"] += 1
        states = _PAGE_STATES.get(pool)
        st = states.get(page_id) if states else None
        if st is not None and st.write_clock:
            _merge(_vc(owner), st.write_clock)
        pend = _PENDING.get(owner)
        p = pend.pop(page_id, None) if pend else None
        _record_read(
            det,
            pool,
            page_id,
            owner,
            rprot=frozenset(),
            validated=True,
            site=p.site if p is not None else None,
        )
    else:
        # Mismatch: the protocol restarts — a benign race by design.
        det.checks["window-restart"] += 1
        windows.pop(page_id, None)
        pend = _PENDING.get(owner)
        if pend:
            pend.pop(page_id, None)


def _wrap_version_of(store: Any) -> None:
    """Wrap the *instance-bound* ``version_of`` shortcut.  Patching the
    BufferPool method instead would also intercept the sanitizer's
    internal stamp reads and open spurious windows."""
    inner = store.version_of
    if getattr(inner, "__race_hook__", False):
        return
    pool = store.buffer

    @functools.wraps(inner)
    def version_of(page_id: Any) -> int:
        version = inner(page_id)
        det = _ACTIVE
        if not _skip(det) and _RCTX.owner is not None:
            _on_version_of(det, pool, _RCTX.owner, page_id, version)
        return version

    version_of.__race_hook__ = True
    store.version_of = version_of


# -- side-file hand-off --------------------------------------------------------


def _handoff(det: RaceDetector, owner: Any) -> None:
    """``TreeSwitchRecord`` appended: lockset transfer.  Every page last
    written by the switching transaction (the new tree it built unlocked
    behind the side file / ``reorg_bit``) restarts virgin — its next
    locker becomes the new exclusive owner under the new tree-lock name.
    Targeted by last writer so one shard's switch cannot erase another
    shard's history on the shared pool."""
    det.checks["handoff"] += 1
    for states in _PAGE_STATES.values():
        for page_id in [
            pid
            for pid, st in states.items()
            if st.last_write is not None and st.last_write[0] is owner
        ]:
            del states[page_id]


# -- scheduler patches ---------------------------------------------------------


def _patch_scheduler() -> None:
    from repro.txn.scheduler import Scheduler

    def wrap_spawn(original: Any) -> Any:
        def wrapper(self: Any, gen: Any, **kw: Any):
            txn = original(self, gen, **kw)
            det = _ACTIVE
            if not _skip(det) and _RCTX.owner is not None:
                # Spawned from inside a step: child inherits the
                # spawner's clock (joined when the child starts).
                _SPAWN_JOIN[txn] = dict(_vc(_RCTX.owner))
            return txn

        return wrapper

    def wrap_start(original: Any) -> Any:
        def wrapper(self: Any, process: Any) -> None:
            det = _ACTIVE
            if not _skip(det):
                vc = _vc(process.txn)
                finished = _FINISH_CLOCKS.get(self)
                if finished:
                    _merge(vc, finished)
                spawned = _SPAWN_JOIN.pop(process.txn, None)
                if spawned:
                    _merge(vc, spawned)
            original(self, process)

        return wrapper

    def wrap_step(original: Any) -> Any:
        def wrapper(self: Any, process: Any, **kw: Any) -> None:
            prev = (
                _RCTX.owner,
                _RCTX.lock_manager,
                _RCTX.scheduler,
                _RCTX.process,
            )
            _RCTX.owner = process.txn
            _RCTX.lock_manager = self.lm
            _RCTX.scheduler = self
            _RCTX.process = process
            try:
                original(self, process, **kw)
            finally:
                (
                    _RCTX.owner,
                    _RCTX.lock_manager,
                    _RCTX.scheduler,
                    _RCTX.process,
                ) = prev

        return wrapper

    def wrap_finish(original: Any) -> Any:
        def wrapper(self: Any, process: Any, result: Any) -> None:
            original(self, process, result)
            det = _ACTIVE
            if not _skip(det):
                txn = process.txn
                _finalize_pending(det, txn)
                _discard_owner(txn)
                vc = _vc(txn)
                clock = _FINISH_CLOCKS.get(self)
                if clock is None:
                    clock = _FINISH_CLOCKS[self] = {}
                _merge(clock, vc)
                vc[txn] += 1

        return wrapper

    def wrap_fail(original: Any) -> Any:
        def wrapper(self: Any, process: Any, exc: Any) -> None:
            det = _ACTIVE
            if not _skip(det):
                # Aborted reads were never used; drop them silently
                # *before* release_all would finalize them.
                _discard_owner(process.txn)
            original(self, process, exc)
            if not _skip(det):
                txn = process.txn
                vc = _vc(txn)
                clock = _FINISH_CLOCKS.get(self)
                if clock is None:
                    clock = _FINISH_CLOCKS[self] = {}
                _merge(clock, vc)
                vc[txn] += 1

        return wrapper

    _patch(Scheduler, "spawn", wrap_spawn)
    _patch(Scheduler, "_start", wrap_start)
    _patch(Scheduler, "_step", wrap_step)
    _patch(Scheduler, "_finish", wrap_finish)
    _patch(Scheduler, "_fail", wrap_fail)


# -- lock-manager patches (happens-before edges + discharge) ------------------


def _on_granted(det: RaceDetector, lm: Any, request: Any) -> None:
    """A request/convert was granted (now, or later via the on_grant
    chain): join the resource's release clock, and cover any pending
    unlocked read of that page."""
    det.checks["hb-grant"] += 1
    owner, resource = request.owner, request.resource
    clocks = _LOCK_CLOCKS.get(lm)
    released = clocks.get(resource) if clocks else None
    if released:
        _merge(_vc(owner), released)
    from repro.locks.manager import RequestState

    if (
        request.state is RequestState.GRANTED
        and isinstance(resource, tuple)
        and resource[0] == PAGE
    ):
        _discharge_pending_with_lock(det, owner, resource[1])


def _chain_grant(lm: Any, prev: Any) -> Any:
    def chained(request: Any) -> None:
        det = _ACTIVE
        if not _skip(det):
            _on_granted(det, lm, request)
        if prev is not None:
            prev(request)

    return chained


def _publish_release(lm: Any, owner: Any, resources: Any) -> None:
    """Release/downgrade edge: publish the owner's clock into each
    resource's release clock *before* the manager dispatches waiters, so
    a grant fired inside the original call already sees it."""
    clocks = _LOCK_CLOCKS.get(lm)
    if clocks is None:
        clocks = _LOCK_CLOCKS[lm] = {}
    vc = _vc(owner)
    for resource in resources:
        released = clocks.get(resource)
        if released is None:
            released = clocks[resource] = {}
        _merge(released, vc)
    vc[owner] += 1


def _patch_lock_manager() -> None:
    from repro.locks.manager import LockManager, RequestState

    def wrap_request(original: Any) -> Any:
        def wrapper(
            self: Any,
            owner: Any,
            resource: Any,
            mode: Any,
            *,
            instant: bool = False,
            on_grant: Any = None,
            on_deadlock: Any = None,
        ):
            det = _ACTIVE
            if _skip(det):
                return original(
                    self,
                    owner,
                    resource,
                    mode,
                    instant=instant,
                    on_grant=on_grant,
                    on_deadlock=on_deadlock,
                )
            request = original(
                self,
                owner,
                resource,
                mode,
                instant=instant,
                on_grant=_chain_grant(self, on_grant),
                on_deadlock=on_deadlock,
            )
            if request.state in (RequestState.GRANTED, RequestState.INSTANT_DONE):
                _on_granted(det, self, request)
            return request

        return wrapper

    def wrap_convert(original: Any) -> Any:
        def wrapper(
            self: Any,
            owner: Any,
            resource: Any,
            to_mode: Any,
            *,
            on_grant: Any = None,
            on_deadlock: Any = None,
        ):
            det = _ACTIVE
            if _skip(det):
                return original(
                    self,
                    owner,
                    resource,
                    to_mode,
                    on_grant=on_grant,
                    on_deadlock=on_deadlock,
                )
            request = original(
                self,
                owner,
                resource,
                to_mode,
                on_grant=_chain_grant(self, on_grant),
                on_deadlock=on_deadlock,
            )
            if request.state is RequestState.GRANTED:
                _on_granted(det, self, request)
            return request

        return wrapper

    def wrap_release(original: Any) -> Any:
        def wrapper(self: Any, owner: Any, resource: Any, mode: Any) -> None:
            det = _ACTIVE
            if not _skip(det):
                _publish_release(self, owner, (resource,))
            original(self, owner, resource, mode)

        return wrapper

    def wrap_downgrade(original: Any) -> Any:
        def wrapper(
            self: Any, owner: Any, resource: Any, from_mode: Any, to_mode: Any
        ) -> None:
            det = _ACTIVE
            if not _skip(det):
                _publish_release(self, owner, (resource,))
            original(self, owner, resource, from_mode, to_mode)

        return wrapper

    def wrap_release_all(original: Any) -> Any:
        def wrapper(self: Any, owner: Any) -> None:
            det = _ACTIVE
            if not _skip(det):
                owned = [
                    res
                    for res, held in self._holders.items()
                    if held.get(owner)
                ]
                if owned:
                    _publish_release(self, owner, owned)
            original(self, owner)
            if not _skip(det):
                _finalize_pending(det, owner)
                windows = _WINDOWS.get(owner)
                if windows:
                    windows.clear()

        return wrapper

    _patch(LockManager, "request", wrap_request)
    _patch(LockManager, "convert", wrap_convert)
    _patch(LockManager, "release", wrap_release)
    _patch(LockManager, "downgrade", wrap_downgrade)
    _patch(LockManager, "release_all", wrap_release_all)


# -- buffer-pool patches (the page-frame funnel) ------------------------------


def _patch_buffer_pool() -> None:
    from repro.locks.resources import page_lock
    from repro.storage.buffer import BufferPool

    def wrap_fetch(original: Any) -> Any:
        def wrapper(self: Any, page_id: Any, *, pin: bool = False) -> Any:
            page = original(self, page_id, pin=pin)
            det = _ACTIVE
            if _skip(det) or _RCTX.owner is None or _RCTX.lock_manager is None:
                return page
            owner = _RCTX.owner
            rprot, _ = _protective(_RCTX.lock_manager, owner)
            if page_lock(page_id) in rprot:
                _record_read(
                    det, self, page_id, owner, rprot=rprot, validated=False
                )
            else:
                # No lock on this page: the read is pending until it is
                # validated, lock-coupled, or the transaction ends.
                det.checks["pending-read"] += 1
                vc = _vc(owner)
                pend = _PENDING.get(owner)
                if pend is None:
                    pend = _PENDING[owner] = {}
                if page_id not in pend:
                    # A re-fetch keeps the original pending: it carries
                    # the earliest snapshot and any conflict notes already
                    # attached by intervening writers.
                    pend[page_id] = _PendingRead(
                        self, vc[owner], _site(), dict(vc), rprot
                    )
            return page

        return wrapper

    def wrap_mark_dirty(original: Any) -> Any:
        def wrapper(self: Any, page_id: Any, lsn: Any = None) -> None:
            original(self, page_id, lsn)
            det = _ACTIVE
            if not _skip(det) and _RCTX.owner is not None:
                _record_write(det, self, page_id, _RCTX.owner)

        return wrapper

    def wrap_put_new(original: Any) -> Any:
        def wrapper(self: Any, page: Any, *, pin: bool = False) -> Any:
            result = original(self, page, pin=pin)
            det = _ACTIVE
            if not _skip(det):
                # Allocation starts a new object lifetime: a recycled
                # page id must not inherit the previous tenant's history.
                states = _PAGE_STATES.get(self)
                if states is not None:
                    states.pop(page.page_id, None)
                if _RCTX.owner is not None:
                    _record_write(det, self, page.page_id, _RCTX.owner)
            return result

        return wrapper

    def wrap_drop(original: Any) -> Any:
        def wrapper(self: Any, page_id: Any) -> None:
            det = _ACTIVE
            if not _skip(det) and _RCTX.owner is not None:
                # Dropping a page mutates it as far as readers are
                # concerned (the stamp bumps, the frame dies).
                _record_write(det, self, page_id, _RCTX.owner)
            original(self, page_id)
            if not _skip(det):
                states = _PAGE_STATES.get(self)
                if states is not None:
                    states.pop(page_id, None)

        return wrapper

    def wrap_crash(original: Any) -> Any:
        def wrapper(self: Any) -> None:
            original(self)
            states = _PAGE_STATES.get(self)
            if states is not None:
                states.clear()

        return wrapper

    _patch(BufferPool, "fetch", wrap_fetch)
    _patch(BufferPool, "mark_dirty", wrap_mark_dirty)
    _patch(BufferPool, "put_new", wrap_put_new)
    _patch(BufferPool, "drop", wrap_drop)
    _patch(BufferPool, "crash", wrap_crash)


# -- WAL patches ---------------------------------------------------------------


def _patch_wal() -> None:
    from repro.wal.log import LogManager
    from repro.wal.records import TreeSwitchRecord

    def wrap_append(original: Any) -> Any:
        def wrapper(self: Any, record: Any) -> int:
            lsn = original(self, record)
            det = _ACTIVE
            if (
                not _skip(det)
                and _RCTX.owner is not None
                and isinstance(record, TreeSwitchRecord)
            ):
                _handoff(det, _RCTX.owner)
            return lsn

        return wrapper

    def wrap_flush(original: Any) -> Any:
        def wrapper(self: Any, up_to_lsn: Any = None) -> None:
            original(self, up_to_lsn)
            det = _ACTIVE
            if not _skip(det) and _RCTX.owner is not None:
                # Flushes of one log are serialized by the device:
                # flusher<->flusher edges.  Appends deliberately publish
                # nothing — a reorganizer's stable-point flush must not
                # absorb a concurrent updater's append clock and order
                # away its unlocked writes.
                det.checks["hb-flush"] += 1
                owner = _RCTX.owner
                clock = _WAL_CLOCKS.get(self)
                if clock is None:
                    clock = _WAL_CLOCKS[self] = {}
                vc = _vc(owner)
                _merge(vc, clock)
                _merge(clock, vc)
                vc[owner] += 1

        return wrapper

    _patch(LogManager, "append", wrap_append)
    _patch(LogManager, "flush", wrap_flush)


# -- store patches (optimistic window hook) -----------------------------------


def _patch_stores() -> None:
    from repro.shard.store import ShardStore
    from repro.storage.store import StorageManager

    def wrap_init(original: Any) -> Any:
        def wrapper(self: Any, *args: Any, **kw: Any) -> None:
            original(self, *args, **kw)
            _wrap_version_of(self)

        return wrapper

    _patch(StorageManager, "__init__", wrap_init)
    _patch(ShardStore, "__init__", wrap_init)


# -- install / uninstall -------------------------------------------------------


def install(*, strict: bool = False) -> RaceDetector:
    """Install the race detector (idempotent); returns the active
    instance.  Install *before* constructing the database so the
    instance-bound ``version_of`` shortcut gets the optimistic-window
    hook; when combining with the sanitizer, install it after and remove
    it first (LIFO), or the class patches unwind to the wrong originals.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    _ACTIVE = RaceDetector(strict=strict)
    _patch_scheduler()
    _patch_lock_manager()
    _patch_buffer_pool()
    _patch_wal()
    _patch_stores()
    return _ACTIVE


def uninstall() -> RaceDetector | None:
    """Remove every patch; returns the detector that was active (reports
    intact), or None."""
    global _ACTIVE
    det = _ACTIVE
    if det is None:
        return None
    for (cls, attr), original in _ORIGINALS.items():
        setattr(cls, attr, original)
    _ORIGINALS.clear()
    for table in (
        _VCS,
        _LOCK_CLOCKS,
        _WAL_CLOCKS,
        _FINISH_CLOCKS,
        _SPAWN_JOIN,
        _PAGE_STATES,
        _WINDOWS,
        _PENDING,
    ):
        table.clear()
    _RCTX.clear()
    _ACTIVE = None
    return det


# -- explorer hook -------------------------------------------------------------


class RaceExplorer:
    """Race-check every schedule a reprocheck exploration visits.

    Wraps :class:`repro.analysis.explorer.Explorer` by overriding
    ``execute`` — ``explore``/``replay`` call through it, so every
    schedule runs under the detector and a race surfaces as a
    ``data-race`` violation with the schedule's replay trace attached.
    The detector is installed before the world is built (the recorder
    and the version_of shortcut must capture patched methods) and only
    uninstalled if this explorer installed it.
    """

    def __init__(self, **kw: Any) -> None:
        from repro.analysis.explorer import Explorer

        self._explorer = Explorer(**kw)
        self.last_reports: list[RaceReport] = []

    def __getattr__(self, name: str) -> Any:
        return getattr(self._explorer, name)

    def explore(self, scenario: Any, **kw: Any) -> Any:
        return self._detected(lambda: self._explorer.explore(scenario, **kw))

    def replay(self, scenario: Any, trace: Any) -> Any:
        return self._detected(lambda: self._explorer.replay(scenario, trace))

    def _detected(self, call: Callable[[], Any]) -> Any:
        """Run ``call`` with the inner explorer's ``execute`` rerouted
        through the detector (explore and replay both call it)."""
        inner_execute = self._explorer.execute
        self._explorer.execute = functools.partial(
            self._raced_execute, inner_execute
        )
        try:
            return call()
        finally:
            self._explorer.execute = inner_execute

    def execute(self, scenario: Any, script: Any = (), **kw: Any) -> Any:
        return self._raced_execute(
            self._explorer.execute, scenario, script, **kw
        )

    def _raced_execute(
        self, inner: Any, scenario: Any, script: Any = (), **kw: Any
    ) -> Any:
        from repro.analysis.explorer import Violation

        det = active()
        owned = det is None
        if owned:
            det = install(strict=False)
        mark = len(det.reports)
        try:
            run = inner(scenario, script, **kw)
        finally:
            fresh = det.reports[mark:]
            if owned:
                uninstall()
        self.last_reports = fresh
        if run.violation is None and fresh:
            run.violation = Violation(
                invariant="data-race",
                message="; ".join(r.summary() for r in fresh[:3])
                + (f" (+{len(fresh) - 3} more)" if len(fresh) > 3 else ""),
                trace=run.trace,
                scenario=scenario.name,
            )
        return run
