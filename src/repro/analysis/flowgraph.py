"""Interprocedural pin/lock typestate analysis (the ``reproflow`` core).

Where :mod:`reprolint` checks one function's AST at a time and the runtime
sanitizer / reprocheck / reprorace observe *executions*, this module checks
obligations that span function boundaries **statically**:

* **pin balance** — every ``BufferPool.fetch(..., pin=True)`` / ``pin()``
  must reach a matching ``unpin()`` on every path, including exception
  paths, even when the unpin lives in a callee or the pinned page is handed
  back to a caller.
* **lock pairing** — Table-1 lock manager traffic (``request`` / ``convert``
  / ``downgrade`` / ``release`` / ``release_all`` and the generator-protocol
  ops ``Acquire`` / ``Convert`` / ``Downgrade`` / ``Release`` /
  ``ReleaseAll``) must balance per owner+mode by the time a call-graph root
  returns normally.  Exception escapes are deliberately *not* flagged: the
  scheduler's ``release_all`` backstop covers them (section 5's victim
  policy), which is also why findings carry the acquire site, not the exit.
* **lock order** — held-while-acquiring edges (lock→lock and pin↔lock for
  careful-writing ordering) are collected across all interprocedural paths;
  cycles whose every edge is a *blocking* request under Table 1 are
  reported as potential deadlocks.  This complements the runtime waits-for
  detector in :mod:`repro.locks.manager`, which only sees cycles that
  actually form on explored schedules.

Design notes
------------

The analysis is a structural abstract interpretation over the AST rather
than an explicit basic-block CFG: each compound statement is interpreted
compositionally with dedicated *unwind channels* (exception, return, break,
continue), which gives exact ``try``/``except``/``finally`` routing —
``finally`` bodies are re-run once per live channel, the equivalent of
finally-block duplication in a lowered CFG.

Exceptional states use **prefix snapshots**: a may-raise event contributes
the state *before* its own effect, so ``page = pool.fetch(pid, pin=True)``
does not leak a pin when the fetch itself fails, but a later risky call
does.  May-raise events are calls, ``raise``, and the blocking ops
(``Acquire`` / ``Convert`` — the scheduler throws ``DeadlockError`` into
the generator at those yields); release events never raise, so the
canonical ``finally: unpin`` pattern stays clean.

Held state is a *set* keyed ``(kind, owner, family, mode)`` — not a
counter — so loop-shaped acquire/release passes (``for leaf in unit:
yield Release(page_lock(leaf), RX)``) balance without widening.  Loops are
assumed to execute at least once (a zero-iteration-only leak is out of
scope and documented as such).  Joins are may-unions: a residual item means
*some* path reaches the exit still holding it.

Function summaries carry normal-exit residuals (adds), releases (removes,
applied as may-removes), ``release_all`` owners, conversions, and the
transitive set of lock/pin requests (for order edges at call sites).
Summaries are computed over Tarjan SCCs in reverse topological order with
a bounded fixpoint inside each SCC.  Exceptional residuals are *not*
propagated to callers: an exception-path pin leak is reported exactly
once, in the function whose exception exit holds the pin.

Every finding carries a call-path witness of the form
``root() -> helper() @ file:line -> acquire X(resource) @ file:line``.

Determinism: all maps are insertion-ordered or iterated sorted; no set
iteration order escapes into output, so two runs over the same tree are
byte-identical regardless of hash seeding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.locks.modes import LockMode, can_upgrade, compatibility_cell

#: Owner sentinel for generator-protocol ops: the scheduler supplies the
#: transaction, so every op in one generator shares one logical owner.
PROC = "<proc>"

PIN_BALANCE = "pin-balance"
LOCK_PAIRING = "lock-pairing"
LOCK_ORDER = "lock-order"
ANALYSES = (PIN_BALANCE, LOCK_PAIRING, LOCK_ORDER)

#: Receiver names that identify a LockManager in sync call position.
_LM_RECEIVERS = {"locks", "lm", "lock_manager", "_lm"}
_SYNC_METHODS = {"request", "release", "release_all", "convert", "downgrade"}
_PIN_METHODS = {"fetch", "put_new", "pin", "unpin"}
#: Generator-protocol op constructors (repro.txn.ops).
_OP_NAMES = {"Acquire", "Release", "ReleaseAll", "Convert", "Downgrade"}

#: The buffer pool / lock manager implement the primitives; their internals
#: are not protocol clients, so their events are not extracted and their
#: functions are not call-resolution targets.
_NO_PIN_MODULE_PREFIXES = ("repro.storage.",)
_NO_LOCK_MODULE_PREFIXES = ("repro.locks.",)
_NO_TARGET_MODULE_PREFIXES = ("repro.locks.", "repro.storage.buffer")

_FAMILY_RE = re.compile(r"^(\w[\w.]*)\(")

_MAX_CANDIDATES = 8
_MAX_CHAIN = 6
_MAX_SUMMARY_ITEMS = 60
_SCC_PASSES = 4
_MAX_CYCLE_LEN = 5
_CYCLE_BUDGET = 20000
_MAX_CYCLES = 50


def _family(text: str) -> str:
    """Resource-constructor family of an unparsed resource expression:
    ``page_lock(leaf)`` -> ``page_lock``; non-call texts are their own
    family (``self._sidefile``)."""
    match = _FAMILY_RE.match(text)
    if match:
        return match.group(1).rsplit(".", 1)[-1]
    return text


def _mode_text(node: ast.expr) -> str:
    """``LockMode.X`` -> ``X``; a bare alias ``X`` -> ``X``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return "?"


def _mode_of(text: str) -> LockMode | None:
    try:
        return LockMode[text]
    except KeyError:
        return None


def _can_upgrade_text(held: str, target: str) -> bool:
    if held == target:
        return True
    h, t = _mode_of(held), _mode_of(target)
    if h is None or t is None:
        return False
    return can_upgrade(h, t)


def _blocks(node: str, granted: str, requested: str) -> bool:
    """Would ``requested`` block behind ``granted`` on ``node``?

    Mirrors ``LockManager._conflicts``: RS waiters are blocked by R/X
    only; blank Table-1 cells never block (the modes are never requested
    together); pin nodes always "block" (a pinned page stalls eviction /
    careful writing).  Unknown mode texts are conservatively blocking.
    """
    if node.startswith("pin:"):
        return True
    req = _mode_of(requested)
    if req is LockMode.RS:
        return granted in ("R", "X")
    held = _mode_of(granted)
    if held is None or req is None:
        return True
    if held is LockMode.RS:
        return False
    return compatibility_cell(held, req) is False


@dataclass(frozen=True)
class Site:
    """A source location (posix path relative to the repo root)."""

    path: str
    line: int
    col: int = 0

    def __str__(self) -> str:
        return f"{self.path}:{self.line}"


#: Call-path breadcrumbs: ``(callee qualname, call-site path, call line)``
#: from the outermost frame inward.
Chain = tuple[tuple[str, str, int], ...]


@dataclass(frozen=True)
class Item:
    """One abstract held resource (a pin or a lock mode)."""

    kind: str  # "pin" | "lock"
    owner: str
    family: str
    mode: str  # "" for pins
    fine: str  # full unparsed resource text (order-graph node identity)
    site: Site  # acquire site
    chain: Chain = ()

    @property
    def key(self) -> tuple[str, str, str, str]:
        return (self.kind, self.owner, self.family, self.mode)

    def node(self) -> str:
        return self.fine if self.kind == "lock" else "pin:" + self.fine

    def describe(self) -> str:
        if self.kind == "pin":
            return f"pin({self.fine})"
        return f"acquire {self.mode}({self.fine})"


#: Abstract state: insertion-ordered map of held items.
State = dict[tuple[str, str, str, str], Item]


def _join(a: State | None, b: State | None) -> State | None:
    """May-union of two states (``None`` = unreachable)."""
    if a is None:
        return None if b is None else dict(b)
    if b is None:
        return dict(a)
    out = dict(a)
    for key, item in b.items():
        out.setdefault(key, item)
    return out


@dataclass(frozen=True)
class FlowFinding:
    """One reproflow finding, with its interprocedural witness."""

    analysis: str
    path: str
    line: int
    col: int
    message: str
    witness: tuple[str, ...] = ()
    #: every source site that may carry a suppression for this finding
    #: (for cycles: each edge's request site).
    sites: tuple[tuple[str, int], ...] = ()

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.analysis, self.message)

    def to_dict(self) -> dict:
        return {
            "analysis": self.analysis,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "witness": list(self.witness),
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.analysis}] {self.message}"


@dataclass
class Event:
    """One typestate-relevant program event, in evaluation order."""

    kind: str  # pin+ pin- lock+ lock- lockall- convert downgrade call
    site: Site
    owner: str = ""
    resource: str = ""
    mode: str = ""
    mode2: str = ""  # downgrade target mode
    instant: bool = False
    may_raise: bool = False
    call: ast.Call | None = None


@dataclass(frozen=True)
class Acq:
    """A transitive lock/pin request, for held-while-acquiring edges."""

    kind: str
    fine: str
    mode: str
    site: Site
    chain: Chain


@dataclass(frozen=True)
class Summary:
    """Effect summary of one function, applied at its call sites."""

    adds: tuple[Item, ...] = ()
    removes: tuple[tuple[str, str, str, str], ...] = ()  # (kind, owner, resource, mode)
    removes_all: tuple[str, ...] = ()
    converts: tuple[tuple[str, str, str], ...] = ()  # (owner, resource, to_mode)
    acquires: tuple[Acq, ...] = ()

    def has_effects(self) -> bool:
        return bool(
            self.adds or self.removes or self.removes_all
            or self.converts or self.acquires
        )

    def sig(self) -> tuple:
        """Fixpoint signature: keys only (witness chains may churn)."""
        return (
            tuple(item.key for item in self.adds),
            self.removes,
            self.removes_all,
            self.converts,
            tuple((a.kind, a.fine, a.mode) for a in self.acquires),
        )


_EMPTY_SUMMARY = Summary()


@dataclass
class FuncInfo:
    """One function/method collected from the analyzed tree."""

    qualname: str
    module: str
    rel: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None
    params: tuple[str, ...]
    allow_pins: bool
    allow_locks: bool


def _module_name(rel: str) -> str:
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _starts_with_any(text: str, prefixes: Sequence[str]) -> bool:
    return any(text.startswith(p) for p in prefixes)


class Program:
    """The analyzed tree: functions, indexes, events, call resolution."""

    def __init__(self, files: Sequence[tuple[str, ast.Module]]) -> None:
        self.functions: list[FuncInfo] = []
        self._top: dict[tuple[str, str], FuncInfo] = {}
        self._by_name: dict[str, list[FuncInfo]] = {}
        self._meth: dict[tuple[str, str, str], FuncInfo] = {}
        self._meth_by_name: dict[str, list[FuncInfo]] = {}
        self._events: dict[int, list[Event]] = {}
        self._resolved: dict[int, tuple[FuncInfo, ...]] = {}
        self._subst: dict[tuple[int, str], list[tuple[re.Pattern, str]]] = {}
        self.file_count = len(files)
        for rel, tree in sorted(files, key=lambda pair: pair[0]):
            module = _module_name(rel)
            self._collect(tree.body, module, rel, prefix=module, cls=None, top=True)
        self.callees: dict[str, tuple[str, ...]] = {}
        self.roots: set[str] = set()
        self._build_call_graph()

    # -- collection -------------------------------------------------------

    def _collect(
        self,
        body: list[ast.stmt],
        module: str,
        rel: str,
        prefix: str,
        cls: str | None,
        top: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{stmt.name}"
                args = stmt.args
                params = tuple(
                    a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)
                )
                info = FuncInfo(
                    qualname=qual,
                    module=module,
                    rel=rel,
                    node=stmt,
                    cls=cls,
                    params=params,
                    allow_pins=not _starts_with_any(module, _NO_PIN_MODULE_PREFIXES),
                    allow_locks=not _starts_with_any(module, _NO_LOCK_MODULE_PREFIXES),
                )
                self.functions.append(info)
                indexable = not _starts_with_any(module, _NO_TARGET_MODULE_PREFIXES)
                if indexable:
                    if cls is None:
                        if top:
                            self._top.setdefault((module, stmt.name), info)
                        self._by_name.setdefault(stmt.name, []).append(info)
                    else:
                        self._meth.setdefault((module, cls, stmt.name), info)
                        self._meth_by_name.setdefault(stmt.name, []).append(info)
                # nested defs are separate functions
                self._collect(stmt.body, module, rel, qual, cls=None, top=False)
            elif isinstance(stmt, ast.ClassDef):
                self._collect(
                    stmt.body, module, rel, f"{prefix}.{stmt.name}",
                    cls=stmt.name, top=False,
                )

    # -- event extraction -------------------------------------------------

    def events(self, node: ast.AST, func: FuncInfo) -> list[Event]:
        cached = self._events.get(id(node))
        if cached is None:
            cached = []
            self._extract(node, func, cached)
            self._events[id(node)] = cached
        return cached

    def _site(self, node: ast.AST, func: FuncInfo) -> Site:
        return Site(func.rel, getattr(node, "lineno", 1), getattr(node, "col_offset", 0))

    def _extract(self, node: ast.AST, func: FuncInfo, out: list[Event]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.Lambda):
            # thunks like ``yield Call(lambda: switch.run())`` execute in
            # the same process: inline their bodies.
            self._extract(node.body, func, out)
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = node.value
            if (
                isinstance(node, ast.Yield)
                and isinstance(value, ast.Call)
                and self._op_name(value) in _OP_NAMES
            ):
                for arg in value.args:
                    self._extract(arg, func, out)
                for kw in value.keywords:
                    self._extract(kw.value, func, out)
                if func.allow_locks:
                    ev = self._op_event(value, func)
                    if ev is not None:
                        out.append(ev)
                return
            if value is not None:
                self._extract(value, func, out)
            return
        if isinstance(node, ast.Call):
            # evaluation order: callee expression, then arguments.
            self._extract(node.func, func, out)
            for arg in node.args:
                self._extract(arg, func, out)
            for kw in node.keywords:
                self._extract(kw.value, func, out)
            out.append(self._classify_call(node, func))
            return
        for child in ast.iter_child_nodes(node):
            self._extract(child, func, out)

    @staticmethod
    def _op_name(call: ast.Call) -> str:
        f = call.func
        if isinstance(f, ast.Name):
            return f.id
        if isinstance(f, ast.Attribute):
            return f.attr
        return ""

    def _op_event(self, call: ast.Call, func: FuncInfo) -> Event | None:
        name = self._op_name(call)
        site = self._site(call, func)
        args = call.args
        kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}

        def text(i: int, kw: str | None = None) -> str:
            if i < len(args):
                return ast.unparse(args[i])
            if kw and kw in kwargs:
                return ast.unparse(kwargs[kw])
            return "?"

        def mode(i: int, kw: str | None = None) -> str:
            if i < len(args):
                return _mode_text(args[i])
            if kw and kw in kwargs:
                return _mode_text(kwargs[kw])
            return "?"

        if name == "Acquire":
            instant_node = kwargs.get("instant")
            instant = isinstance(instant_node, ast.Constant) and bool(instant_node.value)
            return Event(
                "lock+", site, owner=PROC, resource=text(0, "resource"),
                mode=mode(1, "mode"), instant=instant, may_raise=True,
            )
        if name == "Release":
            return Event(
                "lock-", site, owner=PROC, resource=text(0, "resource"),
                mode=mode(1, "mode"),
            )
        if name == "ReleaseAll":
            return Event("lockall-", site, owner=PROC)
        if name == "Convert":
            return Event(
                "convert", site, owner=PROC, resource=text(0, "resource"),
                mode=mode(1, "mode"), may_raise=True,
            )
        if name == "Downgrade":
            return Event(
                "downgrade", site, owner=PROC, resource=text(0, "resource"),
                mode=mode(1, "from_mode"), mode2=mode(2, "to_mode"),
            )
        return None

    def _classify_call(self, call: ast.Call, func: FuncInfo) -> Event:
        site = self._site(call, func)
        f = call.func
        meth = recv_last = None
        if isinstance(f, ast.Attribute):
            meth = f.attr
            recv = ast.unparse(f.value)
            recv_last = recv.rsplit(".", 1)[-1]
        elif isinstance(f, ast.Name):
            meth = f.id
        args = call.args
        kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}

        if func.allow_pins and meth in _PIN_METHODS:
            if meth in ("fetch", "put_new"):
                pin_kw = kwargs.get("pin")
                if isinstance(pin_kw, ast.Constant) and pin_kw.value is True and args:
                    return Event(
                        "pin+", site, owner=PROC,
                        resource=ast.unparse(args[0]), may_raise=True,
                    )
            elif meth == "pin" and args:
                return Event(
                    "pin+", site, owner=PROC,
                    resource=ast.unparse(args[0]), may_raise=True,
                )
            elif meth == "unpin" and args:
                return Event("pin-", site, owner=PROC, resource=ast.unparse(args[0]))

        if (
            func.allow_locks
            and meth in _SYNC_METHODS
            and recv_last in _LM_RECEIVERS
        ):
            texts = [ast.unparse(a) for a in args]
            if meth == "request" and len(texts) >= 3:
                instant_node = kwargs.get("instant")
                instant = (
                    isinstance(instant_node, ast.Constant) and bool(instant_node.value)
                )
                return Event(
                    "lock+", site, owner=texts[0], resource=texts[1],
                    mode=_mode_text(args[2]), instant=instant, may_raise=True,
                )
            if meth == "release" and len(texts) >= 3:
                return Event(
                    "lock-", site, owner=texts[0], resource=texts[1],
                    mode=_mode_text(args[2]),
                )
            if meth == "release_all" and len(texts) >= 1:
                return Event("lockall-", site, owner=texts[0])
            if meth == "convert" and len(texts) >= 3:
                return Event(
                    "convert", site, owner=texts[0], resource=texts[1],
                    mode=_mode_text(args[2]), may_raise=True,
                )
            if meth == "downgrade" and len(texts) >= 4:
                return Event(
                    "downgrade", site, owner=texts[0], resource=texts[1],
                    mode=_mode_text(args[2]), mode2=_mode_text(args[3]),
                )
        return Event("call", site, may_raise=True, call=call)

    # -- call resolution --------------------------------------------------

    def resolve(self, call: ast.Call, caller: FuncInfo) -> tuple[FuncInfo, ...]:
        cached = self._resolved.get(id(call))
        if cached is not None:
            return cached
        result = self._resolve_uncached(call, caller)
        self._resolved[id(call)] = result
        return result

    def _resolve_uncached(
        self, call: ast.Call, caller: FuncInfo
    ) -> tuple[FuncInfo, ...]:
        f = call.func
        if isinstance(f, ast.Name):
            hit = self._top.get((caller.module, f.id))
            if hit is not None:
                return (hit,)
            cands = self._by_name.get(f.id, [])
            return tuple(cands) if len(cands) == 1 else ()
        if isinstance(f, ast.Attribute):
            name = f.attr
            if name in _SYNC_METHODS or name in _PIN_METHODS:
                return ()
            recv = f.value
            if (
                isinstance(recv, ast.Name)
                and recv.id in ("self", "cls")
                and caller.cls is not None
            ):
                hit = self._meth.get((caller.module, caller.cls, name))
                if hit is not None:
                    return (hit,)
            cands = self._meth_by_name.get(name, [])
            if not cands:
                top = self._by_name.get(name, [])
                return tuple(top) if len(top) == 1 else ()
            if len(cands) > _MAX_CANDIDATES:
                return ()
            return tuple(cands)
        return ()

    def substitution(
        self, call: ast.Call, cand: FuncInfo
    ) -> list[tuple[re.Pattern, str]]:
        cached = self._subst.get((id(call), cand.qualname))
        if cached is not None:
            return cached
        params = list(cand.params)
        mapping: dict[str, str] = {}
        if (
            isinstance(call.func, ast.Attribute)
            and params
            and params[0] in ("self", "cls")
        ):
            mapping[params[0]] = ast.unparse(call.func.value)
            params = params[1:]
        for name, arg in zip(params, call.args):
            if isinstance(arg, ast.Starred):
                break
            mapping[name] = ast.unparse(arg)
        for kw in call.keywords:
            if kw.arg and kw.arg in cand.params:
                mapping[kw.arg] = ast.unparse(kw.value)
        subst = [
            (re.compile(rf"\b{re.escape(k)}\b"), v)
            for k, v in sorted(mapping.items())
            if v != k
        ]
        self._subst[(id(call), cand.qualname)] = subst
        return subst

    # -- call graph / SCCs ------------------------------------------------

    def _build_call_graph(self) -> None:
        called: set[str] = set()
        for func in self.functions:
            targets: dict[str, None] = {}
            for stmt in func.node.body:
                for ev in self._iter_all_events(stmt, func):
                    if ev.kind == "call" and ev.call is not None:
                        for cand in self.resolve(ev.call, func):
                            targets[cand.qualname] = None
            self.callees[func.qualname] = tuple(targets)
            called.update(targets)
        self.roots = {
            f.qualname for f in self.functions if f.qualname not in called
        }

    def _iter_all_events(self, stmt: ast.stmt, func: FuncInfo) -> Iterator[Event]:
        """All events in a statement *including* nested compound bodies
        (used only for call-graph construction; the interpreter extracts
        per-region instead)."""
        for ev in self.events(stmt, func):
            yield ev
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt) and not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from self._iter_all_events(child, func)

    def scc_order(self) -> list[list[FuncInfo]]:
        """Tarjan SCCs of the call graph, callees before callers."""
        by_qual = {f.qualname: f for f in self.functions}
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[FuncInfo]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            # iterative Tarjan to dodge recursion limits on deep graphs
            work = [(v, iter(self.callees.get(v, ())))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in by_qual:
                        continue
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(self.callees.get(w, ()))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    members = [by_qual[q] for q in comp if q in by_qual]
                    members.sort(key=lambda f: (f.rel, f.node.lineno))
                    sccs.append(members)

        for func in self.functions:
            if func.qualname not in index:
                strongconnect(func.qualname)
        # Tarjan emits SCCs in reverse topological order already
        # (callees before callers) for this traversal.
        return sccs

    def scc_has_cycle(self, scc: list[FuncInfo]) -> bool:
        quals = {f.qualname for f in scc}
        if len(scc) > 1:
            return True
        q = scc[0].qualname
        return q in self.callees.get(q, ())


@dataclass
class _EdgeInfo:
    """Witness for one held-while-acquiring edge."""

    func: str
    req_site: Site
    req_chain: Chain
    held_site: Site


@dataclass
class _Sink:
    """Global collectors for the final (reporting) pass."""

    edges: dict[tuple[str, str, str, str], _EdgeInfo] = field(default_factory=dict)


class _Interp:
    """Structural abstract interpreter for one function."""

    def __init__(
        self,
        prog: Program,
        func: FuncInfo,
        summaries: dict[str, Summary],
        sink: _Sink | None,
    ) -> None:
        self.p = prog
        self.f = func
        self.sums = summaries
        self.sink = sink
        self.exc: State | None = None
        self.ret: State | None = None
        self._break: list[State | None] = []
        self._cont: list[State | None] = []
        self._acquires: dict[tuple[str, str, str], Acq] = {}
        self._removes: dict[tuple[str, str, str, str], None] = {}
        self._removes_all: dict[str, None] = {}
        self._converts: dict[tuple[str, str, str], None] = {}

    # -- driving ----------------------------------------------------------

    def run(self) -> tuple[State | None, State | None]:
        out = self._block(self.f.node.body, {})
        return _join(out, self.ret), self.exc

    def summary(self, normal: State | None) -> Summary:
        adds: tuple[Item, ...] = ()
        if normal:
            adds = tuple(
                normal[k] for k in sorted(normal)
            )[:_MAX_SUMMARY_ITEMS]
        return Summary(
            adds=adds,
            removes=tuple(self._removes)[:_MAX_SUMMARY_ITEMS],
            removes_all=tuple(self._removes_all),
            converts=tuple(self._converts)[:_MAX_SUMMARY_ITEMS],
            acquires=tuple(
                self._acquires[k] for k in sorted(self._acquires)
            )[:_MAX_SUMMARY_ITEMS],
        )

    # -- statements -------------------------------------------------------

    def _block(self, stmts: Sequence[ast.stmt], state: State | None) -> State | None:
        for stmt in stmts:
            if state is None:
                return None
            state = self._stmt(stmt, state)
        return state

    def _stmt(self, s: ast.stmt, st: State) -> State | None:
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return st
        if isinstance(s, ast.Return):
            if s.value is not None:
                st = self._events(s.value, st)
            self.ret = _join(self.ret, st)
            return None
        if isinstance(s, ast.Raise):
            if s.exc is not None:
                st = self._events(s.exc, st)
            self.exc = _join(self.exc, st)
            return None
        if isinstance(s, ast.If):
            st = self._events(s.test, st)
            a = self._block(s.body, dict(st))
            b = self._block(s.orelse, dict(st))
            return _join(a, b)
        if isinstance(s, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(s, st)
        if isinstance(s, ast.Break):
            if self._break:
                self._break[-1] = _join(self._break[-1], st)
            return None
        if isinstance(s, ast.Continue):
            if self._cont:
                self._cont[-1] = _join(self._cont[-1], st)
            return None
        if isinstance(s, ast.Try) or s.__class__.__name__ == "TryStar":
            return self._try(s, st)  # type: ignore[arg-type]
        if isinstance(s, (ast.With, ast.AsyncWith)):
            for item in s.items:
                st = self._events(item.context_expr, st)
            return self._block(s.body, st)
        if isinstance(s, ast.Match):
            st = self._events(s.subject, st)
            outs: State | None = None
            for case in s.cases:
                cs = dict(st)
                if case.guard is not None:
                    cs = self._events(case.guard, cs)
                outs = _join(outs, self._block(case.body, cs))
            return _join(outs, st)
        return self._events(s, st)

    def _loop(self, s: ast.For | ast.AsyncFor | ast.While, st: State) -> State | None:
        test: ast.expr | None = None
        if isinstance(s, (ast.For, ast.AsyncFor)):
            st = self._events(s.iter, st)
        else:
            test = s.test
        self._break.append(None)
        self._cont.append(None)
        inp: State = st
        out: State | None = None
        for _ in range(4):
            cur = dict(inp)
            if test is not None:
                cur = self._events(test, cur)
            o = self._block(s.body, cur)
            o = _join(o, self._cont[-1])
            self._cont[-1] = None
            if o is None:
                out = None
                break
            new_inp = _join(inp, o) or {}
            out = o
            if set(new_inp) == set(inp):
                break
            inp = new_inp
        self._cont.pop()
        brk = self._break.pop()
        after = out  # loops assumed to run at least once (module docstring)
        if s.orelse and after is not None:
            after = self._block(s.orelse, after)
        return _join(after, brk)

    def _capture(
        self, fn: Callable[[State], State | None], st: State
    ) -> tuple[State | None, State | None, State | None, State | None, State | None]:
        saved_exc, saved_ret = self.exc, self.ret
        self.exc = None
        self.ret = None
        saved_brk = saved_cont = None
        if self._break:
            saved_brk, self._break[-1] = self._break[-1], None
            saved_cont, self._cont[-1] = self._cont[-1], None
        out = fn(st)
        captured = (
            out,
            self.exc,
            self.ret,
            self._break[-1] if self._break else None,
            self._cont[-1] if self._cont else None,
        )
        self.exc, self.ret = saved_exc, saved_ret
        if self._break:
            self._break[-1] = saved_brk
            self._cont[-1] = saved_cont
        return captured

    def _try(self, s: ast.Try, st: State) -> State | None:
        b_out, b_exc, b_ret, b_brk, b_cont = self._capture(
            lambda x: self._block(s.body, x), st
        )
        handlers = s.handlers
        catches_all = any(
            h.type is None
            or (
                isinstance(h.type, (ast.Name, ast.Attribute))
                and _mode_text(h.type) in ("Exception", "BaseException")
            )
            for h in handlers
        )
        h_out = h_ret = h_brk = h_cont = esc = None
        for h in handlers:
            if b_exc is None:
                break
            o, e, r, bk, cn = self._capture(
                lambda x, h=h: self._block(h.body, x), dict(b_exc)
            )
            h_out = _join(h_out, o)
            esc = _join(esc, e)
            h_ret = _join(h_ret, r)
            h_brk = _join(h_brk, bk)
            h_cont = _join(h_cont, cn)
        if handlers:
            if not catches_all:
                esc = _join(esc, b_exc)
        else:
            esc = b_exc
        if s.orelse and b_out is not None:
            o, e, r, bk, cn = self._capture(
                lambda x: self._block(s.orelse, x), b_out
            )
            b_out = o
            esc = _join(esc, e)
            b_ret = _join(b_ret, r)
            b_brk = _join(b_brk, bk)
            b_cont = _join(b_cont, cn)
        normal = _join(b_out, h_out)
        ret = _join(b_ret, h_ret)
        brk = _join(b_brk, h_brk)
        cont = _join(b_cont, h_cont)
        fin = s.finalbody

        def thru(x: State | None) -> State | None:
            if x is None:
                return None
            return self._block(fin, dict(x)) if fin else x

        if esc is not None:
            self.exc = _join(self.exc, thru(esc))
        if ret is not None:
            self.ret = _join(self.ret, thru(ret))
        if brk is not None and self._break:
            self._break[-1] = _join(self._break[-1], thru(brk))
        if cont is not None and self._cont:
            self._cont[-1] = _join(self._cont[-1], thru(cont))
        return thru(normal)

    # -- events -----------------------------------------------------------

    def _events(self, node: ast.AST, st: State) -> State:
        for ev in self.p.events(node, self.f):
            st = self._apply(ev, st)
        return st

    def _note_acquire(
        self,
        st: State,
        kind: str,
        node: str,
        mode: str,
        site: Site,
        chain: Chain,
        skip_fine: str | None = None,
    ) -> None:
        self._acquires.setdefault(
            (kind, node, mode), Acq(kind, node, mode, site, chain)
        )
        if self.sink is None:
            return
        for key in sorted(st):
            held = st[key]
            if held.node() == node:
                continue
            if skip_fine is not None and held.fine == skip_fine:
                continue
            edge = (held.node(), held.mode, node, mode)
            self.sink.edges.setdefault(
                edge, _EdgeInfo(self.f.qualname, site, chain, held.site)
            )

    def _apply(self, ev: Event, st: State) -> State:
        if ev.may_raise:
            self.exc = _join(self.exc, st)
        kind = ev.kind
        if kind == "pin+":
            item = Item("pin", PROC, ev.resource, "", ev.resource, ev.site)
            self._note_acquire(st, "pin", item.node(), "", ev.site, ())
            st.setdefault(item.key, item)
        elif kind == "pin-":
            st.pop(("pin", PROC, ev.resource, ""), None)
            self._removes[("pin", PROC, ev.resource, "")] = None
        elif kind == "lock+":
            item = Item(
                "lock", ev.owner, _family(ev.resource), ev.mode, ev.resource, ev.site
            )
            # instant acquires never enter the held set but still block
            # behind holders, so they participate in order edges.
            self._note_acquire(st, "lock", item.node(), ev.mode, ev.site, ())
            if not ev.instant:
                st.setdefault(item.key, item)
        elif kind == "lock-":
            st.pop(("lock", ev.owner, _family(ev.resource), ev.mode), None)
            self._removes[("lock", ev.owner, ev.resource, ev.mode)] = None
        elif kind == "lockall-":
            for key in [k for k in st if k[0] == "lock" and k[1] == ev.owner]:
                st.pop(key)
            self._removes_all[ev.owner] = None
        elif kind == "convert":
            fam = _family(ev.resource)
            for key in [
                k
                for k in st
                if k[0] == "lock"
                and k[1] == ev.owner
                and k[2] == fam
                and _can_upgrade_text(k[3], ev.mode)
            ]:
                st.pop(key)
            item = Item("lock", ev.owner, fam, ev.mode, ev.resource, ev.site)
            self._note_acquire(
                st, "lock", item.node(), ev.mode, ev.site, (), skip_fine=ev.resource
            )
            st.setdefault(item.key, item)
            self._converts[(ev.owner, ev.resource, ev.mode)] = None
        elif kind == "downgrade":
            fam = _family(ev.resource)
            st.pop(("lock", ev.owner, fam, ev.mode), None)
            self._removes[("lock", ev.owner, ev.resource, ev.mode)] = None
            item = Item("lock", ev.owner, fam, ev.mode2, ev.resource, ev.site)
            st.setdefault(item.key, item)
        elif kind == "call" and ev.call is not None:
            self._apply_call(ev, st)
        return st

    def _apply_call(self, ev: Event, st: State) -> None:
        assert ev.call is not None
        for cand in self.p.resolve(ev.call, self.f):
            summ = self.sums.get(cand.qualname)
            if summ is None or not summ.has_effects():
                continue
            sub = self.p.substitution(ev.call, cand)

            def subst(text: str) -> str:
                for pat, rep in sub:
                    text = pat.sub(rep, text)
                return text

            def smode(mode: str) -> str:
                # modes passed as parameters: substitute, then reduce
                # ``LockMode.X`` spellings to the bare mode name.
                mode = subst(mode)
                if re.fullmatch(r"[\w.]+", mode):
                    return mode.rsplit(".", 1)[-1]
                return mode

            hop = (cand.qualname, ev.site.path, ev.site.line)
            # order edges first: caller-held items vs everything the
            # callee transitively requests.
            for acq in summ.acquires:
                fine2 = subst(acq.fine)
                chain2 = (hop,) + acq.chain
                self._note_acquire(
                    st, acq.kind, fine2, smode(acq.mode), acq.site,
                    chain2[:_MAX_CHAIN],
                )
            for rkind, rowner, rres, rmode in summ.removes:
                owner2, res2 = subst(rowner), subst(rres)
                if rkind == "pin":
                    st.pop(("pin", PROC, res2, ""), None)
                    self._removes[("pin", PROC, res2, "")] = None
                else:
                    mode2 = smode(rmode)
                    st.pop(("lock", owner2, _family(res2), mode2), None)
                    self._removes[("lock", owner2, res2, mode2)] = None
            for rowner in summ.removes_all:
                owner2 = subst(rowner)
                for key in [k for k in st if k[0] == "lock" and k[1] == owner2]:
                    st.pop(key)
                self._removes_all[owner2] = None
            for cowner, cres, cmode in summ.converts:
                # a convert inside the callee upgrades a lock the *caller*
                # may hold: drop the caller's upgradable modes.  The
                # converted-to mode is NOT added here — if it survives to
                # the callee's normal exit it already sits in summ.adds.
                owner2, res2 = subst(cowner), subst(cres)
                cmode = smode(cmode)
                fam = _family(res2)
                for key in [
                    k
                    for k in st
                    if k[0] == "lock"
                    and k[1] == owner2
                    and k[2] == fam
                    and _can_upgrade_text(k[3], cmode)
                ]:
                    st.pop(key)
                self._converts[(owner2, res2, cmode)] = None
            for item in summ.adds:
                owner2, fine2 = subst(item.owner), subst(item.fine)
                fam = _family(fine2) if item.kind == "lock" else fine2
                new = Item(
                    item.kind, owner2, fam,
                    smode(item.mode) if item.kind == "lock" else item.mode,
                    fine2, item.site,
                    chain=((hop,) + item.chain)[:_MAX_CHAIN],
                )
                st.setdefault(new.key, new)


def _node_family(node: str) -> str:
    if node.startswith("pin:"):
        return "pin:" + _family(node[4:])
    return _family(node)


def _render_witness(root_qual: str, item: Item) -> tuple[str, ...]:
    lines = [f"{root_qual}()"]
    for qual, path, line in item.chain:
        lines.append(f"-> {qual}() @ {path}:{line}")
    lines.append(f"-> {item.describe()} @ {item.site}")
    return tuple(lines)


def _find_cycles(
    edges: dict[tuple[str, str, str, str], _EdgeInfo],
) -> list[list[tuple[str, str, str, str]]]:
    """Elementary cycles (length <= _MAX_CYCLE_LEN) in the order graph
    whose every edge is a blocking request under Table 1."""
    adj: dict[str, list[tuple[str, str, str, str]]] = {}
    for key in sorted(edges):
        src = key[0]
        if src == key[2]:
            continue  # self-edges: lock coupling / re-entrant re-requests
        adj.setdefault(src, []).append(key)
    cycles: list[list[tuple[str, str, str, str]]] = []
    seen: set[tuple[tuple[str, str, str, str], ...]] = set()
    #: family-level shapes already reported: cycles that differ only in
    #: the variable names inside the resource texts (``page_lock(base_a)``
    #: vs ``page_lock(base_b)``) are one deadlock pattern, not many.
    shapes: set[tuple[tuple[str, str, str, str], ...]] = set()
    budget = [_CYCLE_BUDGET]

    def shape_of(
        cand: list[tuple[str, str, str, str]],
    ) -> tuple[tuple[str, str, str, str], ...]:
        fams = [
            (_node_family(k[0]), k[1], _node_family(k[2]), k[3]) for k in cand
        ]
        best = min(range(len(fams)), key=lambda i: fams[i:] + fams[:i])
        return tuple(fams[best:] + fams[:best])

    def deadlocks(path: list[tuple[str, str, str, str]]) -> bool:
        n = len(path)
        for i in range(n):
            req = path[i]
            nxt = path[(i + 1) % n]
            # the request of edge i targets the node edge i+1 holds.
            if not _blocks(req[2], nxt[1], req[3]):
                return False
        return True

    def dfs(
        start: str,
        node: str,
        path: list[tuple[str, str, str, str]],
        visited: set[str],
    ) -> None:
        if budget[0] <= 0 or len(cycles) >= _MAX_CYCLES:
            return
        for key in adj.get(node, ()):
            budget[0] -= 1
            if budget[0] <= 0:
                return
            dst = key[2]
            if dst == start and path:
                cand = path + [key]
                if deadlocks(cand):
                    best = min(range(len(cand)), key=lambda i: cand[i])
                    canon = tuple(cand[best:] + cand[:best])
                    shape = shape_of(cand)
                    if canon not in seen and shape not in shapes:
                        seen.add(canon)
                        shapes.add(shape)
                        cycles.append(list(canon))
            elif dst not in visited and dst > start and len(path) + 1 < _MAX_CYCLE_LEN:
                visited.add(dst)
                dfs(start, dst, path + [key], visited)
                visited.discard(dst)

    for start in sorted(adj):
        dfs(start, start, [], {start})
    cycles.sort(key=lambda c: c[0])
    return cycles


@dataclass
class FlowReport:
    """Result of one whole-program analysis run."""

    findings: list[FlowFinding]
    stats: dict


def analyze_files(
    files: Sequence[tuple[str, ast.Module]],
    *,
    analyses: Sequence[str] | None = None,
) -> FlowReport:
    """Analyze parsed modules given as ``(relative posix path, tree)``."""
    wanted = set(analyses) if analyses is not None else set(ANALYSES)
    unknown = wanted - set(ANALYSES)
    if unknown:
        raise ValueError(f"unknown analysis: {', '.join(sorted(unknown))}")
    prog = Program(files)

    # Phase 1: summaries over SCCs, callees first.
    sums: dict[str, Summary] = {}
    order = prog.scc_order()
    for scc in order:
        passes = _SCC_PASSES if prog.scc_has_cycle(scc) else 1
        for _ in range(passes):
            changed = False
            for func in scc:
                interp = _Interp(prog, func, sums, sink=None)
                normal, _exc = interp.run()
                summ = interp.summary(normal)
                if summ.sig() != sums.get(func.qualname, _EMPTY_SUMMARY).sig():
                    changed = True
                sums[func.qualname] = summ
            if not changed:
                break

    # Phase 2: reporting pass.
    sink = _Sink()
    findings: list[FlowFinding] = []
    #: acquire site -> (chain length, qualname, finding) — innermost wins.
    exc_pins: dict[Site, tuple[int, str, FlowFinding]] = {}
    report_order = sorted(prog.functions, key=lambda f: (f.rel, f.node.lineno))
    for func in report_order:
        interp = _Interp(prog, func, sums, sink=sink)
        normal, exc = interp.run()
        if func.qualname in prog.roots and normal:
            for key in sorted(normal):
                item = normal[key]
                if item.kind == "pin" and PIN_BALANCE in wanted:
                    findings.append(FlowFinding(
                        analysis=PIN_BALANCE,
                        path=item.site.path,
                        line=item.site.line,
                        col=item.site.col,
                        message=(
                            f"page pin on {item.fine} is still held when "
                            f"{func.qualname}() returns — no unpin() on this path"
                        ),
                        witness=_render_witness(func.qualname, item),
                        sites=((item.site.path, item.site.line),),
                    ))
                elif item.kind == "lock" and LOCK_PAIRING in wanted:
                    findings.append(FlowFinding(
                        analysis=LOCK_PAIRING,
                        path=item.site.path,
                        line=item.site.line,
                        col=item.site.col,
                        message=(
                            f"{item.mode} lock on {item.fine} (owner {item.owner}) "
                            f"escapes {func.qualname}() without a release"
                        ),
                        witness=_render_witness(func.qualname, item),
                        sites=((item.site.path, item.site.line),),
                    ))
        if exc and PIN_BALANCE in wanted:
            for key in sorted(exc):
                item = exc[key]
                if item.kind != "pin":
                    continue
                finding = FlowFinding(
                    analysis=PIN_BALANCE,
                    path=item.site.path,
                    line=item.site.line,
                    col=item.site.col,
                    message=(
                        f"page pin on {item.fine} leaks if an exception "
                        f"unwinds {func.qualname}() — no finally/handler "
                        "unpins it on that path"
                    ),
                    witness=_render_witness(func.qualname, item),
                    sites=((item.site.path, item.site.line),),
                )
                prev = exc_pins.get(item.site)
                cand = (len(item.chain), func.qualname, finding)
                if prev is None or cand[:2] < prev[:2]:
                    exc_pins[item.site] = cand
    findings.extend(f for _, _, f in exc_pins.values())

    if LOCK_ORDER in wanted:
        for cycle in _find_cycles(sink.edges):
            nodes = " -> ".join(f"{k[3]}({k[2]})" for k in cycle)
            first = sink.edges[cycle[0]]
            witness: list[str] = []
            sites: list[tuple[str, int]] = []
            for key in cycle:
                info = sink.edges[key]
                line = (
                    f"{info.func}() holds {key[1] or 'pin'}({key[0]}) while "
                    f"requesting {key[3] or 'pin'}({key[2]}) @ {info.req_site}"
                )
                for qual, path, lno in info.req_chain:
                    line += f" via {qual}() @ {path}:{lno}"
                witness.append(line)
                sites.append((info.req_site.path, info.req_site.line))
            findings.append(FlowFinding(
                analysis=LOCK_ORDER,
                path=first.req_site.path,
                line=first.req_site.line,
                col=first.req_site.col,
                message=(
                    "potential static deadlock: held-while-acquiring cycle "
                    f"{cycle[0][1] or 'pin'}({cycle[0][0]}) -> {nodes}"
                ),
                witness=tuple(witness),
                sites=tuple(sites),
            ))

    findings.sort(key=FlowFinding.sort_key)
    stats = {
        "files": prog.file_count,
        "functions": len(prog.functions),
        "roots": len(prog.roots),
        "sccs": len(order),
        "order_edges": len(sink.edges),
        "findings": len(findings),
        "by_analysis": {
            name: sum(1 for f in findings if f.analysis == name)
            for name in ANALYSES
        },
    }
    return FlowReport(findings=findings, stats=stats)
