"""Pass 2: swapping and moving leaves into contiguous key order on disk.

Paper section 6: "Finally we are going to swap leaf pages to make them
contiguous in the key order."  The pass is optional — "the user can decide
not to do swapping"; "One scenario we envision is choosing to do swapping
only when range query performance falls below some acceptable level."

The implementation walks the leaves in key order and drives each one to the
target slot assigned by the configured placement policy
(:mod:`repro.reorg.placement`; under the default ``key_order`` policy the
i-th leaf belongs at the i-th page of the leaf extent, and every built-in
policy either keeps that assignment or skips the pass):

* target slot free           -> **Moving** (a MOVE unit, new-place; cheaper:
  one base page, and careful writing keeps the log small);
* target slot holds a leaf   -> **Swapping** (a SWAP unit; "swapping usually
  involves two distinct base pages" and always logs a full page image).

Benchmark E1 counts the swaps this pass needs under each pass-1 empty-page
policy.

Version-stamp coverage (optimistic read path): every move and swap funnels
through log-apply -> ``BufferPool.mark_dirty`` for *both* pages of the
unit, so a lock-free reader that validated either page before the unit
restarts afterwards; no extra bumping is needed here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.db import Database
from repro.errors import ReorgError
from repro.reorg.placement import make_policy
from repro.reorg.unit import UnitEngine
from repro.storage.page import PageId, PageKind
from repro.storage.store import LEAF_EXTENT


@dataclass
class Pass2Stats:
    """Outcome of the swap/move pass."""

    swaps: int = 0
    moves: int = 0
    already_placed: int = 0

    @property
    def operations(self) -> int:
        return self.swaps + self.moves


class SwapMovePass:
    """Runs pass 2 synchronously against one tree."""

    def __init__(
        self,
        db: Database,
        tree: BPlusTree,
        engine: UnitEngine | None = None,
    ):
        self.db = db
        self.tree = tree
        self.engine = engine or UnitEngine(db, tree)
        #: Placement policy: supplies the target slot of every leaf (or
        #: declines to place leaves at all, making this pass a no-op).
        self.placement = make_policy(db.config.placement_policy)

    def _leaf_slots(self, n_leaves: int) -> list[PageId]:
        """Policy-assigned target page for each leaf rank.

        The target window starts at the shard's leaf-lease start when this
        database is a lease-constrained shard view, else at the leaf extent
        start — pass 2 must never drive a leaf outside its shard's lease.
        """
        lease = getattr(self.db.store, "leaf_lease", None)
        window_start = (
            lease.start
            if lease is not None
            else self.db.store.disk.extent(LEAF_EXTENT).start
        )
        slots = self.placement.leaf_slots(n_leaves, window_start)
        assert slots is not None  # run() checked places_leaves
        return slots

    def run(self) -> Pass2Stats:
        stats = Pass2Stats()
        if not self.placement.places_leaves:
            return stats  # the `none` policy: leaves stay where pass 1 left them
        root = self.db.store.get(self.tree.root_id)
        if root.kind is PageKind.LEAF:
            return stats  # a single-leaf tree is trivially in order
        use_cache = self.db.config.reorg_chain_cache
        if use_cache:
            self.engine.enable_chain_cache()
        try:
            if self.db.config.seek_aware_pass2:
                self._run_seek_aware(stats)
            else:
                self._run_key_order(stats)
        finally:
            if use_cache:
                self.engine.disable_chain_cache()
        return stats

    def _run_key_order(self, stats: Pass2Stats) -> None:
        """The paper's ordering: drive leaf i to slot i, for i ascending."""
        chain = self.engine.leaf_chain()
        slots = self._leaf_slots(len(chain))
        position = {pid: i for i, pid in enumerate(chain)}
        for index in range(len(chain)):
            current = chain[index]
            target = slots[index]
            if current == target:
                stats.already_placed += 1
                continue
            if self.db.store.free_map.is_free(target):
                self._move(current, target)
                chain[index] = target
                position.pop(current, None)
                position[target] = index
                stats.moves += 1
            else:
                occupant_index = position.get(target)
                if occupant_index is None or occupant_index <= index:
                    raise ReorgError(
                        f"page {target} is allocated but not a later leaf "
                        f"of this tree; cannot place leaf {current}"
                    )
                self._swap(current, target)
                chain[index], chain[occupant_index] = target, current
                position[target] = index
                position[current] = occupant_index
                stats.swaps += 1

    def _run_seek_aware(self, stats: Pass2Stats) -> None:
        """Seek-minimizing ordering: the same moves/swaps, elevator-style.

        The key-order schedule jumps the disk head around — leaf ``i`` may
        live anywhere in the extent, so consecutive units touch distant
        pages.  This variant keeps the *placement* invariant (leaf ``i``
        ends at its policy-assigned slot) but picks the order of units to
        sweep ascending over the **source** page ids:

        1. repeatedly sweep the still-misplaced leaves in ascending order
           of their current page, MOVE-ing any whose target slot is free
           (each move can free another leaf's target, so sweep until a
           full pass makes no progress);
        2. when no move is possible every remaining leaf's target is held
           by another remaining leaf (the misplaced leaves form cycles) —
           break one with a SWAP at the smallest pending index, then go
           back to sweeping.

        Every step places at least one leaf, so the pass terminates with
        exactly the same final layout as the key-order schedule.
        """
        chain = self.engine.leaf_chain()
        slots = self._leaf_slots(len(chain))
        cur = list(chain)  # cur[i]: page currently holding leaf i
        page_to_index = {pid: i for i, pid in enumerate(cur)}
        pending = {i for i, pid in enumerate(cur) if pid != slots[i]}
        stats.already_placed += len(cur) - len(pending)
        while pending:
            # 1. Elevator sweeps of MOVEs, ascending source page id.
            progressed = True
            while progressed and pending:
                progressed = False
                for index in sorted(pending, key=lambda i: cur[i]):
                    target = slots[index]
                    if not self.db.store.free_map.is_free(target):
                        continue
                    source = cur[index]
                    self._move(source, target)
                    page_to_index.pop(source, None)
                    page_to_index[target] = index
                    cur[index] = target
                    pending.discard(index)
                    stats.moves += 1
                    progressed = True
            if not pending:
                break
            # 2. All remaining targets are occupied by pending leaves:
            # break a cycle with one swap at the smallest pending index.
            index = min(pending)
            target = slots[index]
            occupant = page_to_index.get(target)
            if occupant is None or occupant not in pending:
                raise ReorgError(
                    f"page {target} is allocated but not a misplaced leaf "
                    f"of this tree; cannot place leaf {cur[index]}"
                )
            source = cur[index]
            self._swap(source, target)
            cur[index], cur[occupant] = target, source
            page_to_index[target] = index
            page_to_index[source] = occupant
            pending.discard(index)
            if cur[occupant] == slots[occupant]:
                # Leaf ``index`` was sitting on the occupant's own target,
                # so the swap placed both ends of a 2-cycle.
                pending.discard(occupant)
            stats.swaps += 1

    def _parent_of(self, leaf_id: PageId) -> PageId:
        leaf = self.db.store.get_leaf(leaf_id)
        if leaf.is_empty:
            raise ReorgError(f"leaf {leaf_id} is empty; pass 1 must run first")
        base = self.tree.base_page_for(leaf.min_key())
        if base is None or base.index_of_child(leaf_id) < 0:
            raise ReorgError(f"cannot locate parent of leaf {leaf_id}")
        return base.page_id

    def _move(self, source: PageId, dest: PageId) -> None:
        self.engine.move_unit(self._parent_of(source), source, dest)

    def _swap(self, leaf_a: PageId, leaf_b: PageId) -> None:
        self.engine.swap_unit(
            self._parent_of(leaf_a), leaf_a, self._parent_of(leaf_b), leaf_b
        )
