"""Pass 2: swapping and moving leaves into contiguous key order on disk.

Paper section 6: "Finally we are going to swap leaf pages to make them
contiguous in the key order."  The pass is optional — "the user can decide
not to do swapping"; "One scenario we envision is choosing to do swapping
only when range query performance falls below some acceptable level."

The implementation walks the leaves in key order and drives each one to its
target slot (the i-th leaf belongs at the i-th page of the leaf extent):

* target slot free           -> **Moving** (a MOVE unit, new-place; cheaper:
  one base page, and careful writing keeps the log small);
* target slot holds a leaf   -> **Swapping** (a SWAP unit; "swapping usually
  involves two distinct base pages" and always logs a full page image).

Benchmark E1 counts the swaps this pass needs under each pass-1 empty-page
policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.db import Database
from repro.errors import ReorgError
from repro.reorg.unit import UnitEngine
from repro.storage.page import PageId, PageKind
from repro.storage.store import LEAF_EXTENT


@dataclass
class Pass2Stats:
    """Outcome of the swap/move pass."""

    swaps: int = 0
    moves: int = 0
    already_placed: int = 0

    @property
    def operations(self) -> int:
        return self.swaps + self.moves


class SwapMovePass:
    """Runs pass 2 synchronously against one tree."""

    def __init__(
        self,
        db: Database,
        tree: BPlusTree,
        engine: UnitEngine | None = None,
    ):
        self.db = db
        self.tree = tree
        self.engine = engine or UnitEngine(db, tree)

    def run(self) -> Pass2Stats:
        stats = Pass2Stats()
        root = self.db.store.get(self.tree.root_id)
        if root.kind is PageKind.LEAF:
            return stats  # a single-leaf tree is trivially in order
        extent = self.db.store.disk.extent(LEAF_EXTENT)
        chain = self.tree.leaf_ids_in_key_order()
        position = {pid: i for i, pid in enumerate(chain)}
        for index in range(len(chain)):
            current = chain[index]
            target = extent.start + index
            if current == target:
                stats.already_placed += 1
                continue
            if self.db.store.free_map.is_free(target):
                self._move(current, target)
                chain[index] = target
                position.pop(current, None)
                position[target] = index
                stats.moves += 1
            else:
                occupant_index = position.get(target)
                if occupant_index is None or occupant_index <= index:
                    raise ReorgError(
                        f"page {target} is allocated but not a later leaf "
                        f"of this tree; cannot place leaf {current}"
                    )
                self._swap(current, target)
                chain[index], chain[occupant_index] = target, current
                position[target] = index
                position[current] = occupant_index
                stats.swaps += 1
        return stats

    def _parent_of(self, leaf_id: PageId) -> PageId:
        leaf = self.db.store.get_leaf(leaf_id)
        if leaf.is_empty:
            raise ReorgError(f"leaf {leaf_id} is empty; pass 1 must run first")
        base = self.tree.base_page_for(leaf.min_key())
        if base is None or base.index_of_child(leaf_id) < 0:
            raise ReorgError(f"cannot locate parent of leaf {leaf_id}")
        return base.page_id

    def _move(self, source: PageId, dest: PageId) -> None:
        self.engine.move_unit(self._parent_of(source), source, dest)

    def _swap(self, leaf_a: PageId, leaf_b: PageId) -> None:
        self.engine.swap_unit(
            self._parent_of(leaf_a), leaf_a, self._parent_of(leaf_b), leaf_b
        )
