"""Reorganization units: the leaf-level operations of passes 1 and 2.

A *reorganization unit* is the paper's atom of leaf reorganization
(section 5): a compaction of several children of one base page, a move of
one leaf to an empty page, or a swap of two leaves.  Each unit logs

    BEGIN -> (MOVE | SWAP)* -> MODIFY* -> END

chained through ``prev_lsn`` and mirrored in the in-memory progress table,
exactly as section 5 prescribes.  The BEGIN record "is only written after
all leaf page locks for the reorganization unit are acquired" — the engine
assumes its caller (the synchronous driver or the DES protocol generator)
has done the locking; the engine performs data movement and logging only.

**Careful writing** (section 5): when the buffer manager enforces
write-before dependencies, MOVE records carry only the keys of the moved
records; otherwise full record contents are logged.  Swaps always log at
least one full page image.

**Forward recovery** (section 5.1): :meth:`UnitEngine.finish_unit` takes
the :class:`~repro.wal.recovery.PendingReorgUnit` recovered after a crash
and completes the unit *by inspecting current page state* — every step is
idempotent, so "the reorganization unit will be able to finish the work
instead of rolling back and wasting the work that has already been done."

**Undo at deadlock** (section 5.2): :meth:`UnitEngine.undo_unit` moves
already-moved records back, for the rare case where the reorganizer
deadlocks after data movement (e.g. while upgrading R to X).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.config import SidePointerKind
from repro.db import Database
from repro.errors import ReorgError
from repro.btree.tree import BPlusTree
from repro.storage.page import LeafPage, NO_PAGE, PageId, Record
from repro.wal.apply import MoveStash, apply_record
from repro.wal.records import (
    AllocRecord,
    FreeRecord,
    LeafFormatRecord,
    ReorgBeginRecord,
    ReorgEndRecord,
    ReorgModifyRecord,
    ReorgMoveInRecord,
    ReorgMoveOutRecord,
    ReorgRecord,
    ReorgSwapRecord,
    ReorgUnitType,
    SidePointerRecord,
    TxnRecord,
)
from repro.wal.recovery import PendingReorgUnit


@dataclass(frozen=True)
class UnitResult:
    """Summary of one executed unit."""

    unit_id: int
    unit_type: ReorgUnitType
    dest_page: PageId
    sources_freed: tuple[PageId, ...]
    largest_key: int
    records_moved: int


class UnitEngine:
    """Executes reorganization units against one tree."""

    def __init__(self, db: Database, tree: BPlusTree):
        self.db = db
        self.tree = tree
        self.store = db.store
        self.log = db.log
        self._unit_ids = itertools.count(1)
        #: Stash for keys-only MOVE records within the current unit.
        self._stash: MoveStash = {}
        #: Incrementally maintained key-order leaf chain (None = off).
        #: Enabled only by the synchronous pass drivers (TreeConfig
        #: ``reorg_chain_cache``): side-pointer maintenance needs the chain
        #: once per unit, and each unit changes it by one local splice or
        #: swap, so re-sweeping the internal level every time is pure
        #: overhead.  Recovery/undo paths invalidate it instead of
        #: patching, and the DES protocols never enable it (concurrent
        #: user transactions would mutate the chain underneath it).
        self._chain: list[PageId] | None = None

    # -- leaf-chain cache -----------------------------------------------------

    def enable_chain_cache(self) -> None:
        """Seed the cached chain from a full tree walk (pass drivers only)."""
        self._chain = self.tree.leaf_ids_in_key_order()

    def disable_chain_cache(self) -> None:
        self._chain = None

    def leaf_chain(self) -> list[PageId]:
        """The key-order leaf chain — cached when enabled, walked otherwise.

        Always a fresh list: units executed through this engine splice the
        cache in place, so callers must not alias it.
        """
        if self._chain is not None:
            return list(self._chain)
        return self.tree.leaf_ids_in_key_order()

    def _chain_splice(self, removed: set[PageId], inserted: list[PageId]) -> None:
        """Replace the contiguous run of ``removed`` chain pages with
        ``inserted`` (no-op with the cache off).

        Compaction groups are consecutive children of one base page, hence
        contiguous in the chain; if page state ever disagrees, fall back to
        a full rebuild rather than serve a wrong chain.
        """
        chain = self._chain
        if chain is None:
            return
        positions = [i for i, pid in enumerate(chain) if pid in removed]
        if not positions:
            self._chain = self.tree.leaf_ids_in_key_order()
            return
        lo, hi = positions[0], positions[-1]
        if hi - lo + 1 != len(positions):
            self._chain = self.tree.leaf_ids_in_key_order()
            return
        chain[lo : hi + 1] = inserted

    def _chain_swap(self, leaf_a: PageId, leaf_b: PageId) -> None:
        """Exchange two pages' chain positions (no-op with the cache off)."""
        chain = self._chain
        if chain is None:
            return
        try:
            index_a = chain.index(leaf_a)
            index_b = chain.index(leaf_b)
        except ValueError:
            self._chain = self.tree.leaf_ids_in_key_order()
            return
        chain[index_a], chain[index_b] = leaf_b, leaf_a

    # -- logging plumbing -----------------------------------------------------

    def _next_unit_id(self) -> int:
        return next(self._unit_ids)

    def resume_unit_ids_after(self, unit_id: int) -> None:
        """After forward recovery, keep unit ids monotonic (section 5:
        "Unit m is a monotonically increasing integer")."""
        self._unit_ids = itertools.count(unit_id + 1)

    def _log_unit(self, record: ReorgRecord) -> ReorgRecord:
        """Append a unit record, maintaining the chain + progress table.

        Chains are per unit (BEGIN starts at prev_lsn 0), so several units
        may be in flight at once — the parallel-reorganization extension.
        """
        if isinstance(record, ReorgBeginRecord):
            record.prev_lsn = 0
        else:
            record.prev_lsn = self.db.progress.recent_lsn_of(record.unit_id)
        lsn = self.log.append(record)
        if isinstance(record, ReorgBeginRecord):
            self.db.progress.unit_started(record.unit_id, lsn)
        elif isinstance(record, ReorgEndRecord):
            self.db.progress.unit_finished(
                record.largest_key, unit_id=record.unit_id
            )
        else:
            self.db.progress.unit_logged(lsn, unit_id=record.unit_id)
        return record

    def _log_structural(self, record: TxnRecord) -> TxnRecord:
        """Append and apply a structural record that belongs to the unit's
        work but uses the system-transaction family (Alloc/Free/Format/
        SidePointer)."""
        self.log.append(record)
        apply_record(self.store, record)
        return record

    # -- compact / move units -----------------------------------------------------

    def compact_unit(
        self,
        base_page: PageId,
        sources: list[PageId],
        dest: PageId,
        *,
        dest_is_new: bool,
    ) -> UnitResult:
        """Compact ``sources`` (children of ``base_page``) into ``dest``.

        In-place when ``dest`` is one of the sources (paper section 4.1);
        new-place copy-and-switch when ``dest`` is a free page the caller
        picked with Find-Free-Space (section 4.2).
        """
        if dest_is_new and dest in sources:
            raise ReorgError("a new-place dest cannot be one of the sources")
        if not dest_is_new and dest not in sources:
            raise ReorgError("an in-place dest must be one of the sources")
        unit_id = self.begin_compact(base_page, sources, dest, dest_is_new=dest_is_new)
        return self.complete_compact(
            unit_id, base_page, sources, dest, dest_is_new=dest_is_new
        )

    def begin_compact(
        self,
        base_page: PageId,
        sources: list[PageId],
        dest: PageId,
        *,
        dest_is_new: bool,
        unit_type: ReorgUnitType = ReorgUnitType.COMPACT,
    ) -> int:
        """First half of a compact/move unit: BEGIN plus record movement.

        The DES protocol calls this while holding R on the base page and RX
        on the leaves; it then converts R to X and calls
        :meth:`complete_compact`.  "Our new locking protocol only holds an
        X lock on base pages for a short period of time, after the records
        in the leaf pages have been reorganized" (section 4.1).
        """
        unit_id = self._next_unit_id()
        begin = ReorgBeginRecord(
            unit_id=unit_id,
            unit_type=unit_type,
            base_pages=(base_page,),
            leaf_pages=tuple(sources),
            dest_page=dest,
        )
        self._log_unit(begin)
        self._move_phase(unit_id, sources, dest, dest_is_new)
        return unit_id

    def complete_compact(
        self,
        unit_id: int,
        base_page: PageId,
        sources: list[PageId],
        dest: PageId,
        *,
        dest_is_new: bool,
    ) -> UnitResult:
        """Second half: base-page MODIFYs, side pointers, frees, END.

        The caller holds X on the base page for exactly this call.
        """
        unit_type = ReorgUnitType.MOVE if (
            dest_is_new and len(sources) == 1
        ) else ReorgUnitType.COMPACT
        self._finish_phase(unit_id, base_page, sources, dest, dest_is_new)
        largest = self._largest_key_of(dest)
        moved = self.store.get_leaf(dest).num_items
        self._log_unit(ReorgEndRecord(unit_id=unit_id, largest_key=largest))
        freed = tuple(s for s in sources if s != dest)
        return UnitResult(unit_id, unit_type, dest, freed, largest, moved)

    def compact_unit_multi(
        self,
        base_page: PageId,
        sources: list[PageId],
        dests: list[PageId],
        *,
        target_per_page: int,
    ) -> UnitResult:
        """One unit that constructs *several* new leaf pages (section 6:
        "While we could construct more than one page, it would require the
        reorganization unit to hold locks longer").

        All destinations are fresh empty pages (multi-output is new-place
        only); the sources' records are repacked into them in key order,
        ``target_per_page`` records each.  One BEGIN..END, one base-page
        X window — the lock-hold-time trade-off the A3 ablation measures.
        """
        if len(dests) < 2:
            raise ReorgError("multi-output units need at least two dests")
        if set(dests) & set(sources):
            raise ReorgError("multi-output dests must all be fresh pages")
        unit_id = self.begin_compact_multi(
            base_page, sources, dests, target_per_page
        )
        return self.complete_compact_multi(unit_id, base_page, sources, dests)

    def begin_compact_multi(
        self,
        base_page: PageId,
        sources: list[PageId],
        dests: list[PageId],
        target_per_page: int,
    ) -> int:
        """BEGIN + destination allocation + the repack moves (RX held)."""
        unit_id = self._next_unit_id()
        begin = ReorgBeginRecord(
            unit_id=unit_id,
            unit_type=ReorgUnitType.COMPACT,
            base_pages=(base_page,),
            leaf_pages=tuple(sources),
            dest_page=dests[0],
            dest_pages=tuple(dests),
        )
        self._log_unit(begin)
        self._multi_move_phase(unit_id, sources, dests, target_per_page)
        return unit_id

    def complete_compact_multi(
        self,
        unit_id: int,
        base_page: PageId,
        sources: list[PageId],
        dests: list[PageId],
    ) -> UnitResult:
        """Base MODIFYs (X held), side pointers, frees, END."""
        self._multi_finish_phase(unit_id, base_page, sources, dests)
        largest = self._largest_key_of_any(dests)
        moved = sum(
            self.store.get_leaf(d).num_items
            for d in dests
            if not self.store.free_map.is_free(d)
        )
        self._log_unit(ReorgEndRecord(unit_id=unit_id, largest_key=largest))
        return UnitResult(
            unit_id, ReorgUnitType.COMPACT, dests[0], tuple(sources),
            largest, moved,
        )

    def _execute_compact_multi(
        self,
        unit_id: int,
        base_page: PageId,
        sources: list[PageId],
        dests: list[PageId],
        target_per_page: int,
    ) -> None:
        """Idempotent body of a multi-output unit (forward recovery)."""
        self._multi_move_phase(unit_id, sources, dests, target_per_page)
        self._multi_finish_phase(unit_id, base_page, sources, dests)

    def _multi_move_phase(
        self,
        unit_id: int,
        sources: list[PageId],
        dests: list[PageId],
        target_per_page: int,
    ) -> None:
        for dest in dests:
            self._materialize_dest(dest)
        # Repack: walk the sources in key order, filling the dest frontier
        # to the target.  On recovery re-entry, already-drained sources are
        # skipped and partially-filled dests resume at their frontier.
        frontier = 0
        for dest in dests:
            filled = self.store.get_leaf(dest).num_items
            if filled >= target_per_page:
                frontier += 1
        pending = [
            s for s in sources
            if not self.store.free_map.is_free(s)
            and self.store.get_leaf(s).num_items > 0
        ]
        pending.sort(key=lambda pid: self.store.get_leaf(pid).min_key())
        for source in pending:
            while self.store.get_leaf(source).num_items > 0:
                if frontier >= len(dests):
                    raise ReorgError(
                        f"unit {unit_id}: destinations full with records left"
                    )
                dest = dests[frontier]
                room = target_per_page - self.store.get_leaf(dest).num_items
                if room <= 0:
                    frontier += 1
                    continue
                keys = tuple(
                    r.key
                    for r in self.store.get_leaf(source).records[:room]
                )
                self._move_some_records(unit_id, source, dest, keys)
    def _multi_finish_phase(
        self,
        unit_id: int,
        base_page: PageId,
        sources: list[PageId],
        dests: list[PageId],
    ) -> None:
        self._fix_base_multi(unit_id, base_page, sources, dests)
        used_dests = [
            d for d in dests if not self.store.free_map.is_free(d)
        ]
        self._chain_splice(set(sources), used_dests)
        self._fix_side_pointers_around(*dests)
        for source in sources:
            if self.store.free_map.is_free(source):
                continue
            leaf = self.store.get_leaf(source)
            if leaf.num_items == 0:
                self._log_structural(FreeRecord(page_id=source))
                self.store.deallocate(source)

    def _move_some_records(
        self, unit_id: int, source: PageId, dest: PageId, keys: tuple[int, ...]
    ) -> None:
        """A MOVE pair for a key subset of the source page."""
        source_leaf = self.store.get_leaf(source)
        records = tuple(source_leaf.get(k) for k in keys)
        careful = self.store.buffer.careful_writing
        if careful:
            self.store.buffer.add_write_dependency(source=source, dest=dest)
        out = ReorgMoveOutRecord(
            unit_id=unit_id, org_page=source, dest_page=dest,
            keys=keys, records=() if careful else records,
        )
        self._log_unit(out)
        apply_record(self.store, out, stash=self._stash)
        into = ReorgMoveInRecord(
            unit_id=unit_id, org_page=source, dest_page=dest,
            keys=keys, records=() if careful else records,
            move_out_lsn=out.lsn,
        )
        self._log_unit(into)
        apply_record(self.store, into, stash=self._stash)

    def _fix_base_multi(
        self,
        unit_id: int,
        base_page: PageId,
        sources: list[PageId],
        dests: list[PageId],
    ) -> None:
        base = self.store.get_internal(base_page)
        for source in sources:
            index = base.index_of_child(source)
            if index < 0:
                continue
            org_key = base.entries[index][0]
            modify = ReorgModifyRecord(
                unit_id=unit_id, base_page=base_page,
                org_key=org_key, org_child=source,
                new_key=0, new_child=-1,
            )
            self._log_unit(modify)
            apply_record(self.store, modify)
        for dest in dests:
            leaf = self.store.get_leaf(dest)
            if leaf.is_empty:
                continue  # an over-provisioned dest; freed below by caller
            if base.index_of_child(dest) >= 0:
                continue
            modify = ReorgModifyRecord(
                unit_id=unit_id, base_page=base_page,
                org_key=0, org_child=-1,
                new_key=leaf.min_key(), new_child=dest,
            )
            self._log_unit(modify)
            apply_record(self.store, modify)
        # Return any dest that ended up unused (recovery oddities).
        for dest in dests:
            if self.store.free_map.is_free(dest):
                continue
            leaf = self.store.get_leaf(dest)
            if leaf.is_empty and base.index_of_child(dest) < 0:
                self._log_structural(FreeRecord(page_id=dest))
                self.store.deallocate(dest)

    def move_unit(self, base_page: PageId, source: PageId, dest: PageId) -> UnitResult:
        """Move one leaf into an empty page (pass-2 Moving, section 6)."""
        unit_id = self.begin_compact(
            base_page, [source], dest, dest_is_new=True,
            unit_type=ReorgUnitType.MOVE,
        )
        return self.complete_compact(
            unit_id, base_page, [source], dest, dest_is_new=True
        )

    def _execute_compact(
        self,
        unit_id: int,
        base_page: PageId,
        sources: list[PageId],
        dest: PageId,
        dest_is_new: bool,
    ) -> None:
        """The idempotent body shared by fresh execution and forward
        recovery: make ``dest`` hold every record of ``sources``, fix the
        base page, the side pointers, and free the emptied sources."""
        self._move_phase(unit_id, sources, dest, dest_is_new)
        self._finish_phase(unit_id, base_page, sources, dest, dest_is_new)

    def _move_phase(
        self,
        unit_id: int,
        sources: list[PageId],
        dest: PageId,
        dest_is_new: bool,
    ) -> None:
        """Allocate a new dest if needed and move every record into it."""
        if dest_is_new:
            self._materialize_dest(dest)

        # Move records source by source, in key order (the engine's caller
        # supplies sources in key order; re-sorting by min key keeps the
        # extend()-style appends valid even on recovery re-entry).
        pending = [
            s
            for s in sources
            if s != dest
            and not self.store.free_map.is_free(s)
            and self.store.get_leaf(s).num_items > 0
        ]
        pending.sort(
            key=lambda pid: self.store.get_leaf(pid).min_key()
        )
        for source in pending:
            self._move_records(unit_id, source, dest)

    def _finish_phase(
        self,
        unit_id: int,
        base_page: PageId,
        sources: list[PageId],
        dest: PageId,
        dest_is_new: bool,
    ) -> None:
        """Post the moves in the base page, fix pointers, free sources."""
        self._fix_base_after_compact(unit_id, base_page, sources, dest, dest_is_new)
        # The base now maps the group's key range to dest alone; mirror
        # that one splice in the cached chain before the side-pointer fix
        # reads it.
        self._chain_splice(set(sources), [dest])
        self._fix_side_pointers_around(dest)
        for source in sources:
            if source == dest or self.store.free_map.is_free(source):
                continue
            leaf = self.store.get_leaf(source)
            if leaf.num_items == 0:
                self._log_structural(FreeRecord(page_id=source))
                self.store.deallocate(source)

    def _materialize_dest(self, dest: PageId) -> None:
        """Ensure a new-place destination page exists and is formatted.

        Idempotent across every crash window: the page may be (a) still
        free (fresh run, or its Alloc record never reached the stable log),
        (b) allocated by redo of the Alloc record but never formatted (the
        crash fell between Alloc and Format), or (c) fully present.
        """
        if self.store.free_map.is_free(dest):
            self.store.free_map.allocate(
                self.store.free_map.extent_for(dest), dest
            )
            self.store.buffer.put_new(
                LeafPage(dest, self.store.config.leaf_capacity)
            )
            self._log_structural(AllocRecord(page_id=dest, kind="leaf"))
            self._log_structural(LeafFormatRecord(page_id=dest, records=()))
        elif not (
            self.store.buffer.contains(dest) or self.store.disk.has_image(dest)
        ):
            self.store.buffer.put_new(
                LeafPage(dest, self.store.config.leaf_capacity)
            )
            self._log_structural(LeafFormatRecord(page_id=dest, records=()))

    def _move_records(self, unit_id: int, source: PageId, dest: PageId) -> None:
        """One MOVE pair: org-page half first, then dest-page half."""
        source_leaf = self.store.get_leaf(source)
        records = tuple(source_leaf.records)
        keys = tuple(r.key for r in records)
        careful = self.store.buffer.careful_writing
        if careful:
            # Source must not reach disk (or be freed) before dest does.
            self.store.buffer.add_write_dependency(source=source, dest=dest)
        out = ReorgMoveOutRecord(
            unit_id=unit_id,
            org_page=source,
            dest_page=dest,
            keys=keys,
            records=() if careful else records,
        )
        self._log_unit(out)
        apply_record(self.store, out, stash=self._stash)
        into = ReorgMoveInRecord(
            unit_id=unit_id,
            org_page=source,
            dest_page=dest,
            keys=keys,
            records=() if careful else records,
            move_out_lsn=out.lsn,
        )
        self._log_unit(into)
        apply_record(self.store, into, stash=self._stash)

    def _fix_base_after_compact(
        self,
        unit_id: int,
        base_page: PageId,
        sources: list[PageId],
        dest: PageId,
        dest_is_new: bool,
    ) -> None:
        base = self.store.get_internal(base_page)
        dest_leaf = self.store.get_leaf(dest)
        new_key = dest_leaf.min_key()
        # Remove entries of compacted-away sources.
        for source in sources:
            if source == dest:
                continue
            index = base.index_of_child(source)
            if index < 0:
                continue  # already removed (recovery re-entry)
            org_key = base.entries[index][0]
            modify = ReorgModifyRecord(
                unit_id=unit_id,
                base_page=base_page,
                org_key=org_key,
                org_child=source,
                new_key=0,
                new_child=-1,
            )
            self._log_unit(modify)
            apply_record(self.store, modify)
        # Point the base at dest under the right key.
        index = base.index_of_child(dest)
        if index < 0:
            modify = ReorgModifyRecord(
                unit_id=unit_id,
                base_page=base_page,
                org_key=0,
                org_child=-1,
                new_key=new_key,
                new_child=dest,
            )
            self._log_unit(modify)
            apply_record(self.store, modify)
        else:
            org_key = base.entries[index][0]
            if org_key != new_key:
                modify = ReorgModifyRecord(
                    unit_id=unit_id,
                    base_page=base_page,
                    org_key=org_key,
                    org_child=dest,
                    new_key=new_key,
                    new_child=dest,
                )
                self._log_unit(modify)
                apply_record(self.store, modify)

    # -- side pointers ----------------------------------------------------------

    def _fix_side_pointers_around(self, *leaves: PageId) -> None:
        """Recompute side pointers of ``leaves`` and their key-order
        neighbours from the (already corrected) tree structure.

        Computing from the post-MODIFY tree makes the fix idempotent: on
        forward-recovery re-entry the chain positions are derived from base
        pages, never from possibly half-updated pointers.  Only pages whose
        pointers actually change are logged — exactly the extra pages the
        reorganizer must lock for side-pointer maintenance (section 4.3).
        """
        kind = self.tree.side_pointers
        if kind is SidePointerKind.NONE:
            return
        two_way = kind is SidePointerKind.TWO_WAY
        chain = (
            self._chain
            if self._chain is not None
            else self.tree.leaf_ids_in_key_order()
        )
        position = {pid: i for i, pid in enumerate(chain)}
        affected: set[PageId] = set()
        for pid in leaves:
            i = position.get(pid)
            if i is None:
                continue
            affected.add(pid)
            if i > 0:
                affected.add(chain[i - 1])
            if i + 1 < len(chain):
                affected.add(chain[i + 1])
        for pid in sorted(affected):
            i = position[pid]
            next_leaf = chain[i + 1] if i + 1 < len(chain) else NO_PAGE
            prev_leaf = chain[i - 1] if (two_way and i > 0) else NO_PAGE
            self._set_pointers(pid, next_leaf=next_leaf, prev_leaf=prev_leaf)

    def _set_pointers(self, page_id: PageId, *, next_leaf: PageId, prev_leaf: PageId) -> None:
        leaf = self.store.get_leaf(page_id)
        if leaf.next_leaf == next_leaf and leaf.prev_leaf == prev_leaf:
            return
        self._log_structural(
            SidePointerRecord(
                page_id=page_id, next_leaf=next_leaf, prev_leaf=prev_leaf
            )
        )

    # -- swap units ---------------------------------------------------------------

    def swap_unit(
        self,
        base_a: PageId,
        leaf_a: PageId,
        base_b: PageId,
        leaf_b: PageId,
    ) -> UnitResult:
        """Swap the contents of two leaves (pass 2, sections 4.1 and 6).

        "Swapping two leaf pages under one or two base pages."
        """
        unit_id = self.begin_swap(base_a, leaf_a, base_b, leaf_b)
        return self.complete_swap(unit_id, base_a, leaf_a, base_b, leaf_b)

    def begin_swap(
        self, base_a: PageId, leaf_a: PageId, base_b: PageId, leaf_b: PageId
    ) -> int:
        """BEGIN plus the content exchange (held under RX on both leaves)."""
        if leaf_a == leaf_b:
            raise ReorgError("cannot swap a leaf with itself")
        unit_id = self._next_unit_id()
        bases = (base_a, base_b) if base_a != base_b else (base_a,)
        begin = ReorgBeginRecord(
            unit_id=unit_id,
            unit_type=ReorgUnitType.SWAP,
            base_pages=bases,
            leaf_pages=(leaf_a, leaf_b),
            dest_page=leaf_a,
        )
        self._log_unit(begin)
        self._swap_contents(unit_id, leaf_a, leaf_b)
        return unit_id

    def complete_swap(
        self, unit_id: int, base_a: PageId, leaf_a: PageId,
        base_b: PageId, leaf_b: PageId,
    ) -> UnitResult:
        """Base MODIFYs (under X on both parents), side pointers, END."""
        self._fix_bases_after_swap(unit_id, base_a, leaf_a, base_b, leaf_b)
        self._chain_swap(leaf_a, leaf_b)
        self._fix_side_pointers_around(leaf_a, leaf_b)
        largest = max(
            self._largest_key_of(leaf_a), self._largest_key_of(leaf_b)
        )
        self._log_unit(ReorgEndRecord(unit_id=unit_id, largest_key=largest))
        return UnitResult(
            unit_id,
            ReorgUnitType.SWAP,
            leaf_a,
            (),
            largest,
            self.store.get_leaf(leaf_a).num_items
            + self.store.get_leaf(leaf_b).num_items,
        )

    def _execute_swap(
        self,
        unit_id: int,
        base_a: PageId,
        leaf_a: PageId,
        base_b: PageId,
        leaf_b: PageId,
        *,
        already_swapped: bool = False,
    ) -> None:
        if not already_swapped:
            self._swap_contents(unit_id, leaf_a, leaf_b)
        self._fix_bases_after_swap(unit_id, base_a, leaf_a, base_b, leaf_b)
        self._fix_side_pointers_around(leaf_a, leaf_b)

    def _swap_contents(self, unit_id: int, leaf_a: PageId, leaf_b: PageId) -> None:
        page_a = self.store.get_leaf(leaf_a)
        page_b = self.store.get_leaf(leaf_b)
        careful = self.store.buffer.careful_writing
        if careful:
            # A must be durable before B may be written: makes the
            # keys-only B side of the swap record redoable.
            self.store.buffer.add_write_dependency(source=leaf_b, dest=leaf_a)
        swap = ReorgSwapRecord(
            unit_id=unit_id,
            page_a=leaf_a,
            page_b=leaf_b,
            records_a=tuple(page_a.records),
            keys_b=tuple(page_b.keys()),
            records_b=() if careful else tuple(page_b.records),
        )
        self._log_unit(swap)
        apply_record(self.store, swap)

    def _fix_bases_after_swap(
        self,
        unit_id: int,
        base_a: PageId,
        leaf_a: PageId,
        base_b: PageId,
        leaf_b: PageId,
    ) -> None:
        """MODIFY the base entries after a swap by exchanging the *child
        pointers* (the slot keys keep describing the same key ranges; the
        leaves holding those ranges exchanged identities).

        "Swapping ... update both their parents to reflect the change"
        (section 4.1).  Exchanging pointers rather than keys avoids a
        transient duplicate-separator state when both leaves share one base
        page, and makes each MODIFY independently idempotent: a slot is
        fixed exactly when its child's minimum key lies in the slot's
        range.
        """
        for base_id in dict.fromkeys((base_a, base_b)):
            base = self.store.get_internal(base_id)
            for slot, (slot_key, child) in enumerate(base.entries):
                if child not in (leaf_a, leaf_b):
                    continue
                correct = self._correct_child_for_slot(
                    base_id, slot, (leaf_a, leaf_b)
                )
                if correct == child:
                    continue
                modify = ReorgModifyRecord(
                    unit_id=unit_id,
                    base_page=base_id,
                    org_key=slot_key,
                    org_child=child,
                    new_key=slot_key,
                    new_child=correct,
                )
                self._log_unit(modify)
                apply_record(self.store, modify)

    def _correct_child_for_slot(
        self, base_id: PageId, slot: int, candidates: tuple[PageId, PageId]
    ) -> PageId:
        """Which of the two swapped leaves belongs in the base slot: the
        one whose records fall inside the slot's key range."""
        base = self.store.get_internal(base_id)
        entries = base.entries
        low = entries[slot][0]
        high = entries[slot + 1][0] if slot + 1 < len(entries) else None
        fitting: list[tuple[int, PageId]] = []
        for pid in candidates:
            leaf = self.store.get_leaf(pid)
            if leaf.is_empty:
                continue
            if leaf.min_key() >= low and (high is None or leaf.min_key() < high):
                fitting.append((leaf.min_key(), pid))
        if not fitting:
            raise ReorgError(
                f"neither swapped leaf fits base {base_id} slot {slot}"
            )
        # When the slot is the last of its base page (high unbounded) both
        # leaves may "fit"; the slot's true range starts at ``low``, so the
        # leaf with the smaller minimum key is the one that belongs here.
        return min(fitting)[1]

    # -- forward recovery & undo ---------------------------------------------------

    def finish_unit(self, pending: PendingReorgUnit) -> UnitResult:
        """Forward recovery: complete an interrupted unit from page state.

        All sub-steps of unit execution are idempotent (they test current
        state before acting), so re-running the remainder after redo has
        installed the logged prefix completes the unit exactly once.
        """
        self.disable_chain_cache()  # derive from pages, not a stale cache
        self.resume_unit_ids_after(pending.unit_id)
        unit_id = pending.unit_id
        dest_pages = pending.dest_pages or (pending.dest_page,)
        if (
            pending.unit_type is ReorgUnitType.COMPACT
            and len(dest_pages) > 1
        ):
            # Multi-output unit: the repack target is recoverable from the
            # fullest destination (every dest but the last is filled to it).
            filled = [
                self.store.get_leaf(d).num_items
                for d in dest_pages
                if not self.store.free_map.is_free(d)
                and (self.store.buffer.contains(d) or self.store.disk.has_image(d))
            ]
            remaining = sum(
                self.store.get_leaf(s).num_items
                for s in pending.leaf_pages
                if not self.store.free_map.is_free(s)
            )
            total = sum(filled) + remaining
            # The exact pre-crash target is unrecoverable in general; any
            # target >= max(filled) that fits the total preserves every
            # record (per-page fill may differ by a record or two from the
            # uncrashed run, which the paper's average-d framing allows).
            target = max(
                max(filled, default=1),
                -(-total // len(dest_pages)),  # ceil division
                1,
            )
            self._execute_compact_multi(
                unit_id, pending.base_pages[0], list(pending.leaf_pages),
                list(dest_pages), target,
            )
            largest = self._largest_key_of_any(dest_pages)
            self._log_unit(ReorgEndRecord(unit_id=unit_id, largest_key=largest))
            return UnitResult(
                unit_id, pending.unit_type, dest_pages[0],
                tuple(pending.leaf_pages), largest, 0,
            )
        if pending.unit_type in (ReorgUnitType.COMPACT, ReorgUnitType.MOVE):
            dest = pending.dest_page
            dest_is_new = dest not in pending.leaf_pages
            self._execute_compact(
                unit_id, pending.base_pages[0], list(pending.leaf_pages), dest,
                dest_is_new,
            )
            largest = self._largest_key_of(dest)
            moved = self.store.get_leaf(dest).num_items
            self._log_unit(ReorgEndRecord(unit_id=unit_id, largest_key=largest))
            freed = tuple(p for p in pending.leaf_pages if p != dest)
            return UnitResult(
                unit_id, pending.unit_type, dest, freed, largest, moved
            )
        if pending.unit_type is ReorgUnitType.SWAP:
            leaf_a, leaf_b = pending.leaf_pages
            already = any(
                isinstance(r, ReorgSwapRecord) for r in pending.records
            )
            base_a = pending.base_pages[0]
            base_b = pending.base_pages[-1]
            self._execute_swap(
                unit_id, base_a, leaf_a, base_b, leaf_b, already_swapped=already
            )
            largest = max(
                self._largest_key_of(leaf_a), self._largest_key_of(leaf_b)
            )
            self._log_unit(ReorgEndRecord(unit_id=unit_id, largest_key=largest))
            return UnitResult(
                unit_id, ReorgUnitType.SWAP, leaf_a, (), largest, 0
            )
        raise ReorgError(f"unknown unit type {pending.unit_type!r}")

    def rollback_unit(self, pending: PendingReorgUnit) -> bool:
        """Roll an interrupted unit *back* — the [Smi90] baseline's policy.

        The paper's comparison point: "[Smi90] treats each leaf page
        operation as a database transaction, so it is rolled back if
        interrupted."  Inverts the unit's logged actions in reverse order.
        Returns True if the unit was rolled back; False when it had already
        freed source pages (past its effective commit point), in which case
        it is completed forward instead.
        """
        from repro.wal.progress import NO_KEY_YET

        freed_any = any(
            leaf != pending.dest_page and self.store.free_map.is_free(leaf)
            for leaf in pending.leaf_pages
        )
        if freed_any:
            self.finish_unit(pending)
            return False
        self.disable_chain_cache()
        self.resume_unit_ids_after(pending.unit_id)
        unit_id = pending.unit_id
        for record in reversed(pending.records):
            if isinstance(record, ReorgMoveInRecord):
                dest_leaf = self.store.get_leaf(record.dest_page)
                present = [k for k in record.keys if dest_leaf.contains(k)]
                if present:
                    self._move_back(
                        unit_id, record.dest_page, record.org_page,
                        tuple(present),
                    )
            elif isinstance(record, ReorgModifyRecord):
                inverse = ReorgModifyRecord(
                    unit_id=unit_id,
                    base_page=record.base_page,
                    org_key=record.new_key,
                    org_child=record.new_child,
                    new_key=record.org_key,
                    new_child=record.org_child,
                )
                self._log_unit(inverse)
                apply_record(self.store, inverse)
            elif isinstance(record, ReorgSwapRecord):
                # A swap is its own inverse.
                self._swap_contents(unit_id, record.page_a, record.page_b)
        if pending.dest_page not in pending.leaf_pages:
            dest = pending.dest_page
            if not self.store.free_map.is_free(dest):
                leaf = self.store.get_leaf(dest)
                if leaf.is_empty:
                    self._log_structural(FreeRecord(page_id=dest))
                    self.store.deallocate(dest)
        # Mark the unit closed in the log without advancing LK.
        self._log_unit(
            ReorgEndRecord(unit_id=unit_id, largest_key=NO_KEY_YET)
        )
        return True

    def undo_unit(self, unit_id: int) -> None:
        """Undo at deadlock (section 5.2): move records back where the
        prev-LSN chain says they came from, then clear the progress entry.

        Only MOVE halves need inverting — a deadlock can only strike before
        the base page was X-locked, hence before any MODIFY was logged.
        """
        self.disable_chain_cache()
        cursor = self.db.progress.recent_lsn_of(unit_id)
        inversions: list[tuple[PageId, PageId, tuple[int, ...]]] = []
        begin: ReorgBeginRecord | None = None
        while cursor > 0:
            record = self.log.get(cursor)
            if isinstance(record, ReorgMoveInRecord):
                inversions.append(
                    (record.dest_page, record.org_page, record.keys)
                )
            if isinstance(record, ReorgBeginRecord):
                begin = record
                break
            cursor = record.prev_lsn
        for dest, org, keys in inversions:
            self._move_back(unit_id, dest, org, keys)
        # A new-place unit may have allocated a fresh dest page before the
        # deadlock; once drained it is returned to the free pool.
        if begin is not None and begin.dest_page not in begin.leaf_pages:
            dest = begin.dest_page
            if not self.store.free_map.is_free(dest):
                leaf = self.store.get_leaf(dest)
                if leaf.is_empty:
                    self._log_structural(FreeRecord(page_id=dest))
                    self.store.deallocate(dest)
        self.db.progress.unit_aborted(unit_id=unit_id)

    def _move_back(
        self, unit_id: int, from_page: PageId, to_page: PageId, keys: tuple[int, ...]
    ) -> None:
        """Reverse one MOVE pair during undo-at-deadlock.

        Full record contents are always logged: a keys-only reverse move
        would need a write-before edge opposite to the forward move's edge
        — a dependency cycle.  With contents logged, the forward edge is
        cancelled instead: after the undo, neither write order loses data.
        """
        source_leaf = self.store.get_leaf(from_page)
        records = tuple(source_leaf.get(k) for k in keys if source_leaf.contains(k))
        keys = tuple(r.key for r in records)
        if not records:
            return
        self.store.buffer.remove_write_dependency(source=to_page, dest=from_page)
        out = ReorgMoveOutRecord(
            unit_id=unit_id,
            org_page=from_page,
            dest_page=to_page,
            keys=keys,
            records=records,
        )
        self._log_unit(out)
        apply_record(self.store, out, stash=self._stash)
        into = ReorgMoveInRecord(
            unit_id=unit_id,
            org_page=from_page,
            dest_page=to_page,
            keys=keys,
            records=records,
            move_out_lsn=out.lsn,
        )
        self._log_unit(into)
        apply_record(self.store, into, stash=self._stash)

    # -- helpers -----------------------------------------------------------------

    def _largest_key_of(self, page_id: PageId) -> int:
        leaf = self.store.get_leaf(page_id)
        return leaf.max_key() if not leaf.is_empty else 0

    def _largest_key_of_any(self, page_ids) -> int:
        keys = [
            self._largest_key_of(pid)
            for pid in page_ids
            if not self.store.free_map.is_free(pid)
        ]
        return max(keys, default=0)
