"""Switching from the old B+-tree to the new one (paper section 7.4).

"A detailed description of switching from the old B+-tree to the new
B+-tree is described for the first time" — the paper's own headline.  The
protocol:

1. X-lock the **side file**.  "This will prevent any further updates on
   base pages of either the new or the old tree" (updaters must IX the side
   file before a base-page change while the reorg bit is set), while plain
   readers and non-structural updaters proceed.
2. Final catch-up: apply the handful of side-file entries appended while
   waiting for the X lock, and log those changes.
3. Flip the root: "we change the information about the location of the
   root of the old B+-tree to that of the new B+-tree.  This information is
   usually on a special place on the disk."  The new tree also gets a lock
   name distinct from the old one, so new transactions lock the new name.
4. X-lock the **old tree** (its old lock name).  Every transaction using
   the old tree holds an IS/IX intention lock on it, so this grant means
   they have all drained.  An optional wait limit aborts stragglers
   ("we might set a time limit ... then it will force the on-going
   transactions that use the old tree to abort").
5. Discard the old upper levels and reclaim their disk space; clear the
   reorganization bit; release the X locks.

The synchronous engine here performs steps 2, 3 and 5 plus the bookkeeping;
the lock choreography of steps 1 and 4 is exercised for real by the DES
protocols in :mod:`repro.reorg.protocols`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.db import Database
from repro.errors import ReorgError
from repro.locks.modes import LockMode
from repro.locks.resources import sidefile_lock, tree_lock
from repro.reorg.shrink import TreeShrinker
from repro.storage.page import PageId, PageKind
from repro.txn.transaction import Transaction
from repro.wal.records import FreeRecord, ReorgDoneRecord, TreeSwitchRecord


@dataclass
class SwitchStats:
    """Outcome of the switch."""

    final_catchup_entries: int = 0
    old_internal_freed: int = 0
    old_root: PageId = -1
    new_root: PageId = -1


def current_lock_name(db: Database, tree_name: str) -> str:
    """The tree's current lock name; distinct per tree incarnation."""
    name = db.store.disk.get_meta(f"lockname:{tree_name}")
    return name if name is not None else f"{tree_name}@0"  # type: ignore[return-value]


def _bump_lock_name(db: Database, tree_name: str) -> tuple[str, str]:
    old = current_lock_name(db, tree_name)
    epoch = int(old.rsplit("@", 1)[1]) + 1
    new = f"{tree_name}@{epoch}"
    db.store.disk.set_meta(f"lockname:{tree_name}", new)
    return old, new


class Switcher:
    """Performs the switch for a finished :class:`TreeShrinker`."""

    def __init__(
        self,
        db: Database,
        tree: BPlusTree,
        shrinker: TreeShrinker,
        *,
        reorg_txn: Transaction | None = None,
    ):
        self.db = db
        self.tree = tree
        self.shrinker = shrinker
        self.reorg_txn = reorg_txn or Transaction("switcher", is_reorganizer=True)
        #: Per-shard side files: a shard handle names its own side file.
        self._sidefile = sidefile_lock(getattr(db, "sidefile_name", ""))

    def run(self) -> SwitchStats:
        stats = SwitchStats()
        if self.shrinker.new_root < 0:
            raise ReorgError("new upper levels are not built; run pass 3 first")
        locks = self.db.locks
        # 1. X lock the side file: stops base-page updaters on both trees.
        locks.request(self.reorg_txn, self._sidefile, LockMode.X)
        try:
            # 2. Catch up the stragglers appended while acquiring the lock.
            stats.final_catchup_entries = self.shrinker.apply_side_file_once()
            # 3. Flip the root pointer and the tree lock name.  The switch
            #    record is forced to the log *first*, so a crash anywhere
            #    from here on can finish the switch forward (both roots and
            #    the old lock name are known).
            stats.old_root = self.tree.root_id
            stats.new_root = self.shrinker.new_root
            old_lock_name = current_lock_name(self.db, self.tree.name)
            self.db.log.append(
                TreeSwitchRecord(
                    old_root=stats.old_root,
                    new_root=stats.new_root,
                    old_lock_name=old_lock_name,
                )
            )
            self.db.log.flush()
            _bump_lock_name(self.db, self.tree.name)
            self.tree.set_root(stats.new_root)
            # Invalidate in-flight optimistic descents anchored at the old
            # root: bump its version stamp so their next validation fails
            # and they restart against the new access path.  (An internal
            # old root is bumped again by the discard below; a *leaf* old
            # root is shared with the new tree and would otherwise never
            # change, leaving lock-free readers pinned to the old route.)
            self.db.store.buffer.bump_version(stats.old_root)
            self.db.store.disk.del_meta(f"root:{self.tree.name}.new")
            # 4. Drain old-tree transactions by X-locking the old lock name.
            #    (Synchronous callers hold no tree locks, so this grants at
            #    once; the DES protocol version waits here, with the
            #    configured time limit and abort policy.)
            locks.request(self.reorg_txn, tree_lock(old_lock_name), LockMode.X)
            # 5. Discard the old upper levels and reclaim the space.
            stats.old_internal_freed = self._discard_internals_under(
                stats.old_root
            )
            self._clear_pass3_state()
            locks.release(self.reorg_txn, tree_lock(old_lock_name), LockMode.X)
        finally:
            locks.release(self.reorg_txn, self._sidefile, LockMode.X)
        return stats

    def finish_pending_switch(
        self, old_root: PageId, new_root: PageId, old_lock_name: str
    ) -> SwitchStats:
        """Forward-complete a switch interrupted by a crash.

        Recovery saw the TreeSwitchRecord but no ReorgDoneRecord: the root
        flip and/or the old-tree discard may or may not have happened.
        Both are idempotent, so simply redo them.
        """
        stats = SwitchStats(old_root=old_root, new_root=new_root)
        locks = self.db.locks
        locks.request(self.reorg_txn, self._sidefile, LockMode.X)
        try:
            if self.db.store.disk.get_meta(f"root:{self.tree.name}.new") is not None:
                stats.final_catchup_entries = self.shrinker.apply_side_file_once()
            if self.tree.root_id == old_root:
                _bump_lock_name(self.db, self.tree.name)
                self.tree.set_root(new_root)
                # Same optimistic-reader invalidation as the normal switch.
                self.db.store.buffer.bump_version(old_root)
            self.db.store.disk.del_meta(f"root:{self.tree.name}.new")
            locks.request(self.reorg_txn, tree_lock(old_lock_name), LockMode.X)
            stats.old_internal_freed = self._discard_internals_under(old_root)
            self._clear_pass3_state()
            locks.release(self.reorg_txn, tree_lock(old_lock_name), LockMode.X)
        finally:
            locks.release(self.reorg_txn, self._sidefile, LockMode.X)
        return stats

    def _clear_pass3_state(self) -> None:
        self.db.log.append(ReorgDoneRecord())
        self.db.log.flush()
        self.db.pass3.reorg_bit = False
        self.db.pass3.stable_key = None
        self.db.pass3.new_root = -1
        self.db.pass3.side_file_entries.clear()
        self.shrinker.built_entries.clear()
        self.shrinker.detach_listener()

    def _discard_internals_under(self, root: PageId) -> int:
        """Free the internal pages of the tree rooted at ``root``,
        children before parents so an interrupted discard stays walkable.
        Already-freed pages (a previous attempt got partway) are skipped.
        """
        if self.db.store.free_map.is_free(root):
            return 0
        post_order: list[PageId] = []

        def walk(page_id: PageId) -> None:
            if self.db.store.free_map.is_free(page_id):
                return
            page = self.db.store.get(page_id)
            if page.kind is not PageKind.INTERNAL:
                return
            for child in page.children():  # type: ignore[union-attr]
                walk(child)
            post_order.append(page_id)

        walk(root)
        for page_id in post_order:
            self.db.log.append(FreeRecord(page_id=page_id))
            self.db.store.deallocate(page_id)
        return len(post_order)
