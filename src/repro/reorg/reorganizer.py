"""The reorganizer: three passes plus forward recovery, orchestrated.

This is the paper's headline artifact (Figure 1): compact the leaves,
optionally swap/move them into disk order, then rebuild the upper levels
and switch.  :class:`Reorganizer` is the synchronous engine — every page
movement, log record and protocol step is real; lock *contention* is
exercised separately by the DES protocols in
:mod:`repro.reorg.protocols`.

Typical use::

    reorg = Reorganizer(db, tree, ReorgConfig(target_fill=0.9))
    report = reorg.run()

Crash handling::

    db.crash()
    recovery = db.recover()
    reorg = Reorganizer(db, db.tree(), config)
    reorg.forward_recover(recovery)     # finishes an interrupted unit,
                                        # restarts pass 3 from its stable
                                        # point, or does nothing
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.btree.tree import BPlusTree
from repro.config import ReorgConfig
from repro.db import Database
from repro.errors import ReorgError
from repro.reorg.compact import LeafCompactor, Pass1Stats
from repro.reorg.shrink import Pass3Stats, SCAN_DONE_KEY, TreeShrinker
from repro.reorg.swap import Pass2Stats, SwapMovePass
from repro.reorg.switch import SwitchStats, Switcher
from repro.reorg.unit import UnitEngine, UnitResult
from repro.txn.transaction import Transaction
from repro.wal.recovery import RecoveryReport


@dataclass
class ReorgReport:
    """Everything one full reorganization produced."""

    pass1: Pass1Stats | None = None
    pass2: Pass2Stats | None = None
    pass3: Pass3Stats | None = None
    switch: SwitchStats | None = None
    forward_recovered_unit: UnitResult | None = None
    pass3_resumed_from: int | None = None


class Reorganizer:
    """Synchronous driver for the full three-pass reorganization."""

    def __init__(
        self,
        db: Database,
        tree: BPlusTree,
        config: ReorgConfig | None = None,
    ):
        self.db = db
        self.tree = tree
        self.config = config or ReorgConfig()
        self.engine = UnitEngine(db, tree)
        self.txn = Transaction("reorganizer", is_reorganizer=True)

    # -- passes -----------------------------------------------------------------

    def run_pass1(self) -> Pass1Stats:
        """Compact the leaves (Figure 2)."""
        compactor = LeafCompactor(self.db, self.tree, self.config, self.engine)
        return compactor.run()

    def run_pass2(self) -> Pass2Stats:
        """Swap/move leaves into contiguous key order on disk (optional)."""
        return SwapMovePass(self.db, self.tree, self.engine).run()

    def run_pass3(
        self,
        *,
        during_scan: Callable[[TreeShrinker], None] | None = None,
        during_catchup: Callable[[TreeShrinker], None] | None = None,
        resume_from: int | None = None,
        shrinker: TreeShrinker | None = None,
    ) -> tuple[Pass3Stats, SwitchStats]:
        """Rebuild the upper levels new-place and switch (section 7)."""
        from repro.storage.page import PageKind

        root = self.db.store.get(self.tree.root_id)
        if root.kind is PageKind.LEAF:
            raise ReorgError("single-leaf tree: nothing to shrink")
        shrinker = shrinker or TreeShrinker(self.db, self.tree, self.config)
        shrinker.attach_listener()
        try:
            shrinker.scan(during_scan, resume_from=resume_from)
            shrinker.build_upper()
            shrinker.catch_up(during_catchup)
            switcher = Switcher(self.db, self.tree, shrinker, reorg_txn=self.txn)
            switch_stats = switcher.run()
        finally:
            shrinker.detach_listener()
        return shrinker.stats, switch_stats

    def run(
        self,
        *,
        during_scan: Callable[[TreeShrinker], None] | None = None,
        during_catchup: Callable[[TreeShrinker], None] | None = None,
        skip_pass3: bool = False,
    ) -> ReorgReport:
        """Run the full three-pass reorganization."""
        from repro.storage.page import PageKind

        report = ReorgReport()
        report.pass1 = self.run_pass1()
        if self.config.do_swap_pass:
            report.pass2 = self.run_pass2()
        root = self.db.store.get(self.tree.root_id)
        if not skip_pass3 and root.kind is PageKind.INTERNAL:
            report.pass3, report.switch = self.run_pass3(
                during_scan=during_scan, during_catchup=during_catchup
            )
        return report

    # -- forward recovery ------------------------------------------------------------

    def forward_recover(self, recovery: RecoveryReport) -> ReorgReport:
        """Resume reorganization after a crash (section 5.1 / 7.3).

        * An in-flight leaf unit is *finished*, never rolled back.
        * If pass 3 was running (reorg bit set), its orphaned allocations
          are reclaimed and the scan restarts from the last stable key.

        Returns a partial report describing what was recovered; the caller
        decides whether to continue with the remaining passes (see
        :meth:`resume_after_crash` for the all-in-one variant).
        """
        report = ReorgReport()
        for pending in recovery.pending_units:
            # One unit under the paper's single-process configuration;
            # several with the parallel extension — each finished forward.
            report.forward_recovered_unit = self.engine.finish_unit(pending)
        if recovery.reorg_bit and recovery.switch_pending is not None:
            # The switch had begun: finish it forward; no rebuilding.
            shrinker = TreeShrinker(self.db, self.tree, self.config)
            old_root, new_root, old_lock_name = recovery.switch_pending
            shrinker.new_root = new_root
            switcher = Switcher(self.db, self.tree, shrinker, reorg_txn=self.txn)
            report.switch = switcher.finish_pending_switch(
                old_root, new_root, old_lock_name
            )
            return report
        if recovery.reorg_bit:
            shrinker = TreeShrinker(self.db, self.tree, self.config)
            resume = shrinker.restart_after_crash(
                allocs_after_stable=list(recovery.allocs_after_stable)
            )
            scan_done = resume is not None and resume >= SCAN_DONE_KEY
            report.pass3_resumed_from = None if scan_done else resume
            shrinker.attach_listener()
            try:
                if not scan_done:
                    shrinker.scan(None, resume_from=resume)
                shrinker.build_upper()
                shrinker.catch_up(None)
                switcher = Switcher(
                    self.db, self.tree, shrinker, reorg_txn=self.txn
                )
                report.switch = switcher.run()
            finally:
                shrinker.detach_listener()
            report.pass3 = shrinker.stats
        return report
