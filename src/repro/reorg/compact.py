"""Pass 1: compacting the leaves (paper section 6, Figure 2).

The driver walks the base pages in key order.  Within each base page it
greedily groups consecutive children whose records fit into one page at the
target fill factor f2 — "on average d = ceil(f2/f1) pages get compacted in
each reorganization unit" — and for each group runs Figure 2's decision::

    Find-free-space;
    If there is appropriate free space
        Copying-Switching;        # new-place, into the chosen empty page
    Else
        In-Place-Reorg;           # into one of the group's own pages

The empty-page choice implements section 6.1 (see
:mod:`repro.reorg.freespace`); L, "the largest finished leaf page ID", is
maintained across units so that compacted leaves come out in ascending disk
order, minimizing pass-2 swaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.btree.tree import BPlusTree
from repro.config import ReorgConfig
from repro.db import Database
from repro.errors import ReorgError
from repro.reorg.freespace import find_free_page
from repro.reorg.placement import gapped_leaf_fill_count, make_policy
from repro.reorg.unit import UnitEngine, UnitResult
from repro.storage.page import PageId, PageKind
from repro.storage.store import LEAF_EXTENT


@dataclass
class Pass1Stats:
    """Outcome of the compaction pass."""

    units: int = 0
    in_place_units: int = 0
    new_place_units: int = 0
    leaves_before: int = 0
    leaves_after: int = 0
    records_moved: int = 0
    groups_skipped: int = 0
    results: list[UnitResult] = field(default_factory=list)


class LeafCompactor:
    """Runs pass 1 synchronously against one tree."""

    def __init__(
        self,
        db: Database,
        tree: BPlusTree,
        config: ReorgConfig,
        engine: UnitEngine | None = None,
    ):
        self.db = db
        self.tree = tree
        self.config = config
        self.engine = engine or UnitEngine(db, tree)
        #: Placement policy: may express a Find-Free-Space preference per
        #: unit (all built-in policies leave pass 1 to the free-space
        #: policy, so pass-1 behaviour is identical across them).
        self.placement = make_policy(db.config.placement_policy)
        lease = getattr(db.store, "leaf_lease", None)
        if lease is not None:
            start = lease.start
        else:
            start = db.store.disk.extent(LEAF_EXTENT).start
        #: L — largest finished leaf page id; starts before the extent
        #: (or before the shard's leased slice of it).
        self.largest_finished: PageId = start - 1

    def run(self) -> Pass1Stats:
        stats = Pass1Stats()
        # The synchronous pass owns the tree for its duration, so the
        # engine may maintain the key-order leaf chain incrementally
        # instead of re-sweeping the internal level around every unit.
        use_cache = self.db.config.reorg_chain_cache
        if use_cache:
            self.engine.enable_chain_cache()
        try:
            stats.leaves_before = len(self.engine.leaf_chain())
            for base_id in self._base_page_ids_in_key_order():
                self._compact_base_page(base_id, stats)
            stats.leaves_after = len(self.engine.leaf_chain())
        finally:
            if use_cache:
                self.engine.disable_chain_cache()
        return stats

    # -- iteration ----------------------------------------------------------------

    def _base_page_ids_in_key_order(self) -> list[PageId]:
        """Snapshot of base-page ids (parents of leaves), in key order.

        Pass 1 only removes/renames *entries* of base pages, never base
        pages themselves (every base keeps at least its group's destination
        child), so the snapshot stays valid for the whole pass.
        """
        ids: list[PageId] = []
        stack = [self.tree.root_id]
        while stack:
            page = self.db.store.get(stack.pop())
            if page.kind is PageKind.INTERNAL:
                if page.level == 1:  # type: ignore[union-attr]
                    ids.append(page.page_id)
                else:
                    stack.extend(reversed(page.children()))  # type: ignore[union-attr]
        return ids

    # -- per-base-page work -----------------------------------------------------------

    def _compact_base_page(self, base_id: PageId, stats: Pass1Stats) -> None:
        target = self._target_records_per_page()
        groups = self._plan_groups(base_id, target)
        for group in groups:
            if len(group) < 2:
                # Nothing to compact; the leaf still counts as finished so
                # later placements stay in relative disk order.
                if group:
                    self.largest_finished = max(self.largest_finished, group[0])
                stats.groups_skipped += 1
                continue
            result = self._compact_group(base_id, group)
            stats.units += 1
            stats.records_moved += result.records_moved
            if result.dest_page in group:
                stats.in_place_units += 1
            else:
                stats.new_place_units += 1
            stats.results.append(result)
            self.largest_finished = max(self.largest_finished, result.dest_page)

    def _target_records_per_page(self) -> int:
        # Gap-aware: rebuilt leaves keep the configured slack free even
        # when target_fill asks for more (identical when the gap is 0).
        return gapped_leaf_fill_count(
            self.db.store.config, self.config.target_fill
        )

    def _plan_groups(self, base_id: PageId, target: int) -> list[list[PageId]]:
        """Greedy grouping of a base page's children by record count.

        With ``max_unit_output_pages`` = N > 1, groups may accumulate up to
        N output pages' worth of records — one unit then constructs several
        new leaves while holding its locks longer (section 6's trade-off).
        """
        limit = target * self.config.max_unit_output_pages
        base = self.db.store.get_internal(base_id)
        # Readahead: the whole pass will read every child of this base
        # page (sizing here, compacting just after) — fetch the absent
        # ones as one sweep instead of a seek each.
        self.db.store.prefetch(base.children())
        groups: list[list[PageId]] = []
        current: list[PageId] = []
        count = 0
        for _key, child in base.entries:
            n = self.db.store.get_leaf(child).num_items
            if current and count + n > limit:
                groups.append(current)
                current, count = [], 0
            current.append(child)
            count += n
        if current:
            groups.append(current)
        return groups

    def _compact_group(self, base_id: PageId, group: list[PageId]) -> UnitResult:
        """Figure 2's decision for one group of same-parent leaves."""
        target = self._target_records_per_page()
        total = sum(self.db.store.get_leaf(p).num_items for p in group)
        needed = max(1, -(-total // target))
        if needed > 1:
            dests = self._pick_free_run(needed, current=min(group))
            if dests is not None:
                result = self.engine.compact_unit_multi(
                    base_id, group, dests, target_per_page=target
                )
                self.largest_finished = max(self.largest_finished, max(dests))
                return result
            # Not enough well-placed free pages for a multi-output unit:
            # split the group and fall through page by page.
            return self._compact_group_split(base_id, group, target)
        current = min(group)
        empty = find_free_page(
            self.db.store,
            self.config.free_space_policy,
            largest_finished=self.largest_finished,
            current=current,
            preference=self.placement.pass1_preference(
                largest_finished=self.largest_finished, current=current
            ),
        )
        if empty is not None:
            # Copying-Switching: build the new leaf in the chosen page.
            return self.engine.compact_unit(
                base_id, group, empty, dest_is_new=True
            )
        # In-Place-Reorg: compact into one of the group's own pages —
        # prefer the smallest page id beyond L (keeps ascending order when
        # possible), else the smallest page id of the group.
        beyond = [pid for pid in group if pid > self.largest_finished]
        dest = min(beyond) if beyond else min(group)
        return self.engine.compact_unit(base_id, group, dest, dest_is_new=False)

    def _pick_free_run(self, needed: int, current: PageId) -> list[PageId] | None:
        """``needed`` ascending free pages, each between the previous pick
        (initially L) and C — the section 6.1 heuristic applied per page."""
        picks: list[PageId] = []
        floor = self.largest_finished
        for _ in range(needed):
            page = find_free_page(
                self.db.store,
                self.config.free_space_policy,
                largest_finished=floor,
                current=current,
            )
            if page is None:
                return None
            picks.append(page)
            floor = page
        return picks

    def _compact_group_split(
        self, base_id: PageId, group: list[PageId], target: int
    ) -> UnitResult:
        """Fall back to one-output-page units over the oversized group."""
        sub: list[PageId] = []
        count = 0
        last_result: UnitResult | None = None
        for child in group:
            n = self.db.store.get_leaf(child).num_items
            if sub and count + n > target:
                last_result = self._single_output_unit(base_id, sub)
                sub, count = [], 0
            sub.append(child)
            count += n
        if sub:
            if len(sub) >= 2:
                last_result = self._single_output_unit(base_id, sub)
            elif last_result is None:
                # A degenerate one-leaf remainder with no earlier unit.
                self.largest_finished = max(self.largest_finished, sub[0])
                raise ReorgError("group degenerated to a single leaf")
        assert last_result is not None
        return last_result

    def _single_output_unit(self, base_id: PageId, sub: list[PageId]) -> UnitResult:
        empty = find_free_page(
            self.db.store,
            self.config.free_space_policy,
            largest_finished=self.largest_finished,
            current=min(sub),
            preference=self.placement.pass1_preference(
                largest_finished=self.largest_finished, current=min(sub)
            ),
        )
        if empty is not None:
            result = self.engine.compact_unit(base_id, sub, empty, dest_is_new=True)
        else:
            beyond = [pid for pid in sub if pid > self.largest_finished]
            dest = min(beyond) if beyond else min(sub)
            result = self.engine.compact_unit(base_id, sub, dest, dest_is_new=False)
        self.largest_finished = max(self.largest_finished, result.dest_page)
        return result
