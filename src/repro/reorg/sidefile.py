"""The side file (paper section 7.2).

"When the internal node reorganization begins, the side file is created and
a reorganization-bit is set to one.  The side file is a system database
table."  Entries are base-level changes — leaf-split insertions and
free-at-empty deletions — that landed on *already-read* old base pages and
therefore must be replayed onto the new tree.

Every append is logged (``SideFileInsertRecord``, attributed to the user
transaction that caused it), and every application-to-the-new-tree is
logged too ("The actions of changing the new base page and of removing the
side file record are logged" — ``SideFileApplyRecord``), so recovery can
reconstruct the exact residue.

The entry list is shared with :class:`repro.db.Pass3State` so checkpoints
capture it automatically.

Version-stamp coverage (optimistic read path): the side file itself is a
memory-resident table, invisible to readers; what matters is that applying
an entry to the new tree mutates base pages through log-apply ->
``BufferPool.mark_dirty``, which bumps their version stamps, so lock-free
readers racing the final catch-up of the switch validate correctly.
"""

from __future__ import annotations

from repro.db import Database
from repro.storage.page import PageId
from repro.txn.transaction import Transaction
from repro.wal.records import SideFileApplyRecord, SideFileInsertRecord

Entry = tuple[int, PageId, str]  # (key, child, "insert" | "delete")


class SideFile:
    """Durable (via logging) list of deferred base-page changes."""

    def __init__(self, db: Database):
        self.db = db
        # Share the list object with Pass3State so checkpoints see it.
        self._entries: list[Entry] = db.pass3.side_file_entries

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[Entry]:
        return list(self._entries)

    def is_empty(self) -> bool:
        return not self._entries

    # -- mutation -----------------------------------------------------------

    def append(
        self,
        key: int,
        child: PageId,
        op: str,
        txn: Transaction | None = None,
    ) -> None:
        """Record one deferred change; logged by the causing transaction.

        "The insertion to the side file is logged by the transaction which
        makes the insertion."
        """
        if op not in ("insert", "delete"):
            raise ValueError(f"unknown side-file op {op!r}")
        record = SideFileInsertRecord(key=key, child=child, op=op)
        if txn is not None:
            record.txn_id = txn.txn_id
            record.prev_lsn = txn.last_lsn
        lsn = self.db.log.append(record)
        if txn is not None:
            txn.last_lsn = lsn
        self._entries.append((key, child, op))

    def pop_front(self) -> Entry:
        """Take the oldest entry for application (caller logs the apply)."""
        return self._entries.pop(0)

    def log_applied(
        self, entry: Entry, new_base_page: PageId, unit_id: int = 0
    ) -> None:
        """Log that ``entry`` was applied to the new tree and removed."""
        key, child, op = entry
        self.db.log.append(
            SideFileApplyRecord(
                unit_id=unit_id,
                key=key,
                child=child,
                op=op,
                new_base_page=new_base_page,
            )
        )

    def restore(self, entries: list[Entry]) -> None:
        """Reload after recovery (from the checkpoint + log replay)."""
        self._entries[:] = entries

    def drop_after_key(self, stable_key: int) -> int:
        """Discard entries beyond the pass-3 restart point.

        Section 7.3: "entries in the side file which refer to records which
        come after the most recent stable key can be removed from the side
        file" — the restarted scan will re-read those base pages anyway.
        Returns the number of entries dropped.
        """
        keep = [e for e in self._entries if e[0] < stable_key]
        dropped = len(self._entries) - len(keep)
        self._entries[:] = keep
        return dropped
