"""Find-Free-Space: choosing the empty page for new-place compaction.

Paper section 6.1: "Our goal is to minimize the amount of swapping (as
opposed to moving to an empty page) done in the second pass. ... In our
algorithm, we choose the first empty page which is in front of the leaf
page that is going to be reorganized, C, and after the largest finished
leaf page ID, L.  This forces C always to move to the 'left' or towards the
beginning of the data collection.  Since the total number of leaf pages
after reorganization is going to be smaller, this is the correct direction.
Requiring that the empty space be after the largest reorganized page L
means that the new page constructed will be in the correct relative order
with all the leaf pages that have already been compacted."

Benchmark E1 compares this policy against FIRST_FIT (any free page) and
NONE (in-place only) and measures the pass-2 swaps each needs.
"""

from __future__ import annotations

from repro.config import FreeSpacePolicy
from repro.storage.allocator import ExtentLease, FreeSpaceMap
from repro.storage.page import PageId
from repro.storage.store import LEAF_EXTENT, StorageManager


def resolve_preference(
    free_map: FreeSpaceMap,
    extent_name: str,
    preference: PageId,
    *,
    lease: ExtentLease | None = None,
) -> PageId | None:
    """Resolve a placement preference to an actually-free page.

    Returns the preferred page itself when it is free (and inside the
    lease, if any), else the nearest free page in the lease — distance
    ties break toward the smaller id.  None only when the lease/extent has
    no free pages at all.
    """
    return free_map.nearest_free(
        extent_name,
        preference,
        after=lease.start - 1 if lease is not None else None,
        before=lease.end if lease is not None else None,
    )


def find_free_page(
    store: StorageManager,
    policy: FreeSpacePolicy,
    *,
    largest_finished: PageId,
    current: PageId,
    preference: PageId | None = None,
) -> PageId | None:
    """Pick an empty leaf-extent page for a new-place operation, or None.

    Args:
        store: storage manager owning the free map.
        policy: which selection rule to apply.
        largest_finished: L — the largest page id holding an already
            reorganized leaf (pass the extent start - 1 when none yet).
        current: C — the page id of the leaf about to be reorganized.
        preference: a placement-policy-provided target page.  When given it
            overrides the configured policy: the exact page is taken if
            free, else the nearest free in-lease page.  All built-in
            placement policies pass None, which preserves the historical
            selection byte for byte.

    Returns None when the policy finds no suitable page, in which case the
    caller falls back to In-Place-Reorg (Figure 2).
    """
    lease = getattr(store, "leaf_lease", None)
    if preference is not None:
        resolved = resolve_preference(
            store.free_map, LEAF_EXTENT, preference, lease=lease
        )
        if resolved is not None:
            return resolved
        # Lease exhausted: fall through to the configured policy, which
        # reports the same exhaustion in its own terms.
    if policy is FreeSpacePolicy.NONE:
        return None
    if policy is FreeSpacePolicy.FIRST_FIT:
        if lease is not None:
            return store.free_map.first_free_in_lease(lease)
        return store.free_map.first_free(LEAF_EXTENT)
    if policy is FreeSpacePolicy.PAPER:
        after, before = largest_finished, current
        if lease is not None:
            # Clamp L and C to the shard's leased slice: targets outside it
            # belong to other shards and must never be chosen.
            after = max(after, lease.start - 1)
            before = min(before, lease.end)
        return store.free_map.first_free_in_range(LEAF_EXTENT, after, before)
    raise ValueError(f"unknown policy {policy!r}")
