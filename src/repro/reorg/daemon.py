"""Fragmentation-aware auto-reorg daemon: the paper's algorithm as a
background service.

The paper designs the three-pass reorganizer to run *on-line*, yet the
reproduction historically ran it only when a test invoked it.  This module
closes that gap: :class:`ReorgDaemon` is a discrete-event process that
polls each watched tree's live :class:`repro.metrics.FragmentationStats`
and, when fragmentation (``1 - fill_factor``) crosses
:attr:`repro.config.DaemonConfig.frag_high`, runs the full compact → swap
→ shrink sequence (:func:`repro.reorg.protocols.full_reorganization`) for
that tree under the normal lock choreography — concurrent readers and
updaters interleave with it exactly as with a manually started reorg.
Bender et al.'s fragmentation bounds under batched insertions (PAPERS.md)
are what make a measured fill-factor threshold a sound trigger.

Trigger policy (all knobs on :class:`~repro.config.DaemonConfig`):

* **threshold** — fragmentation >= ``frag_high`` arms a reorg;
* **hysteresis** — after a triggered reorg the shard must first drop to
  ``frag_low`` or below before it can fire again (one reorg per
  crossing, not one per poll);
* **cooldown** — at least ``cooldown`` simulated time between triggers
  of the same shard, independent of hysteresis;
* **deferral** — a shard whose ``pass3.reorg_bit`` is already set (a
  manual reorganizer owns it) is skipped for this poll, as is every
  shard when the process-wide optimistic-read counters moved more than
  ``optimistic_burst_threshold`` since the previous poll (a reorg in the
  middle of a latch-free read burst turns every read into a locked
  fallback).

The daemon is deliberately *one* process even over a sharded forest: it
reorganizes crossed shards one after another inside its own transaction,
which keeps it strictly background — bulk parallel reorganization stays
the job of :class:`repro.shard.ParallelReorganizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Sequence

from repro.btree.protocols import OPTIMISTIC_STATS
from repro.config import DaemonConfig, ReorgConfig
from repro.metrics import FragmentationStats
from repro.reorg.parallel import _SharedUnitIds
from repro.reorg.protocols import ReorgProtocol, full_reorganization
from repro.txn.ops import Think
from repro.txn.scheduler import Scheduler
from repro.txn.transaction import Transaction

if TYPE_CHECKING:
    from repro.db import Database
    from repro.shard.database import ShardedDatabase


@dataclass
class DaemonTarget:
    """One watched tree: a Database-shaped owner, its name, its metrics."""

    db: Any  #: Database or ShardHandle (duck-typed: tree()/pass3/locks...)
    tree_name: str
    frag: FragmentationStats

    def sync(self) -> None:
        self.frag.sync_from_tree(self.db.tree(self.tree_name))


@dataclass
class DaemonStats:
    """What the daemon did, for tests and the bench report."""

    polls: int = 0
    triggers: int = 0
    hysteresis_holds: int = 0
    deferred_manual: int = 0
    deferred_cooldown: int = 0
    deferred_optimistic: int = 0
    skipped_small: int = 0


@dataclass
class _TargetState:
    armed: bool = True
    last_trigger: float | None = None
    triggers: int = 0


class ReorgDaemon:
    """Background auto-reorg DES process over one or more trees."""

    def __init__(
        self,
        targets: Sequence[DaemonTarget],
        config: DaemonConfig | None = None,
        reorg_config: ReorgConfig | None = None,
        *,
        unit_pause: float = 0.0,
        scan_pause: float = 0.0,
        op_duration: float = 0.0,
    ):
        if not targets:
            raise ValueError("daemon needs at least one target tree")
        self.targets = list(targets)
        self.config = config or DaemonConfig()
        self.reorg_config = reorg_config or ReorgConfig()
        self.unit_pause = unit_pause
        self.scan_pause = scan_pause
        self.op_duration = op_duration
        self.stats = DaemonStats()
        #: (simulated time, tree name, action) per per-target poll step;
        #: actions: idle / hold-hysteresis / skip-small / defer-manual /
        #: defer-cooldown / defer-optimistic / trigger.
        self.history: list[tuple[float, str, str]] = []
        #: Pass stats of every triggered reorg, per tree name in order.
        self.results: dict[str, list[dict]] = {t.tree_name: [] for t in targets}
        self._state = {t.tree_name: _TargetState() for t in targets}
        self._unit_ids = _SharedUnitIds()
        self._last_optimistic: int | None = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def for_database(
        cls,
        db: Database,
        config: DaemonConfig | None = None,
        reorg_config: ReorgConfig | None = None,
        *,
        tree_name: str = "primary",
        **des_pauses,
    ) -> "ReorgDaemon":
        target = DaemonTarget(db, tree_name, db.frag_stats(tree_name))
        return cls([target], config, reorg_config, **des_pauses)

    @classmethod
    def for_shards(
        cls,
        sdb: ShardedDatabase,
        config: DaemonConfig | None = None,
        reorg_config: ReorgConfig | None = None,
        **des_pauses,
    ) -> "ReorgDaemon":
        targets = [
            DaemonTarget(handle, handle.tree_name, handle.frag)
            for handle in sdb.handles
        ]
        return cls(targets, config, reorg_config, **des_pauses)

    # -- the DES process -----------------------------------------------------

    def spawn(
        self, scheduler: Scheduler, *, horizon: float, at: float = 0.0
    ) -> Transaction:
        """Register the daemon on ``scheduler``; it polls until ``horizon``."""
        return scheduler.spawn(
            self.run(scheduler, horizon=horizon),
            name="reorg-daemon",
            at=at,
            is_reorganizer=True,
        )

    def run(
        self, scheduler: Scheduler, *, horizon: float
    ) -> Generator[Any, Any, DaemonStats]:
        """Poll loop: sample metrics, decide per target, maybe reorganize.

        Runs until the next poll would land past ``horizon`` (simulated
        time) — a DES scheduler drains its heap, so an unbounded daemon
        would never let ``scheduler.run()`` return.
        """
        for target in self.targets:
            if not target.frag.synced:
                target.sync()
        poll = self.config.poll_interval
        while scheduler.now + poll <= horizon + 1e-9:
            yield Think(poll)
            self.stats.polls += 1
            burst = self._optimistic_burst()
            for target in self.targets:
                action = self._decide(target, scheduler.now, burst)
                self.history.append((scheduler.now, target.tree_name, action))
                if action == "trigger":
                    yield from self._reorganize(target, scheduler)
        return self.stats

    # -- decision logic ------------------------------------------------------

    def _optimistic_burst(self) -> bool:
        """True when optimistic reads since the previous poll exceed the
        configured burst threshold (0 disables the deferral)."""
        current = OPTIMISTIC_STATS.searches + OPTIMISTIC_STATS.scans
        previous, self._last_optimistic = self._last_optimistic, current
        if self.config.optimistic_burst_threshold <= 0 or previous is None:
            return False
        return current - previous > self.config.optimistic_burst_threshold

    def _decide(self, target: DaemonTarget, now: float, burst: bool) -> str:
        cfg = self.config
        state = self._state[target.tree_name]
        frag = target.frag
        if cfg.max_triggers and self.stats.triggers >= cfg.max_triggers:
            return "idle"
        if frag.leaves < cfg.min_leaves:
            self.stats.skipped_small += 1
            return "skip-small"
        if not state.armed and frag.fragmentation <= cfg.frag_low:
            state.armed = True
        split_hot = (
            cfg.split_trigger > 0
            and frag.splits_since_sync >= cfg.split_trigger
        )
        fill_hot = frag.fragmentation >= cfg.frag_high
        if fill_hot and not state.armed and not split_hot:
            # The fill threshold re-fires only after dropping to frag_low;
            # the split path re-arms itself (sync zeroes the split count).
            self.stats.hysteresis_holds += 1
            return "hold-hysteresis"
        if not split_hot and not (fill_hot and state.armed):
            return "idle"
        if target.db.pass3.reorg_bit:
            # A manual reorganizer owns this tree's reorg bit right now.
            self.stats.deferred_manual += 1
            return "defer-manual"
        if (
            state.last_trigger is not None
            and now - state.last_trigger < cfg.cooldown
        ):
            self.stats.deferred_cooldown += 1
            return "defer-cooldown"
        if burst:
            self.stats.deferred_optimistic += 1
            return "defer-optimistic"
        return "trigger"

    # -- the reorg itself ----------------------------------------------------

    def protocol_for(
        self, target: DaemonTarget, scheduler: Scheduler
    ) -> ReorgProtocol:
        proto = ReorgProtocol(
            target.db,
            target.tree_name,
            self.reorg_config,
            unit_pause=self.unit_pause,
            scan_pause=self.scan_pause,
            op_duration=self.op_duration,
            abort_hook=lambda txns: [
                scheduler.abort_transaction(t) for t in txns
            ],
        )
        proto.engine._unit_ids = self._unit_ids
        return proto

    def _reorganize(
        self, target: DaemonTarget, scheduler: Scheduler
    ) -> Generator[Any, Any, dict]:
        proto = self.protocol_for(target, scheduler)
        stats = yield from full_reorganization(proto)
        state = self._state[target.tree_name]
        state.last_trigger = scheduler.now
        state.triggers += 1
        state.armed = False  # re-arm only once frag drops to frag_low
        self.stats.triggers += 1
        target.frag.reorgs_triggered += 1
        # The passes moved records and freed pages below the tree API;
        # re-baseline the incremental counters from the switched tree.
        target.sync()
        self.results[target.tree_name].append(stats)
        return stats
