"""Pass 3: rebuilding the upper levels of the tree (paper section 7).

The reorganizer reads the *old* base pages left to right — "we read the
keys in ascending order" — and streams their (key, leaf pointer) entries
into freshly allocated **new base pages**, filled to the configured fill
factor ([Sal88] bottom-up construction).  The leaves are never touched.
Once the base level is complete, the upper levels are built over it and
the side file is caught up; :mod:`repro.reorg.switch` then moves the world
to the new tree.

Scan-position protocol (section 7.1):

* ``CK``, the low mark of the base page currently being reorganized, is
  exposed through :meth:`TreeShrinker.get_current` (the paper's
  ``Get_Current()``), and is advanced to the *next* base page's low mark
  before the reorganizer "gives up the S lock on the base page it just
  finished reading".
* Concurrent base-page changes are observed through the tree's
  ``base_change_listener``; a change whose key is below CK "has been
  inserted into one of the base pages that we have already read", so it is
  appended to the side file; keys at or above CK will be read normally.

Stable points (section 7.3): every ``stable_point_interval`` new base
pages, the open page is closed, all new pages are forced to disk, and a
``StableKeyRecord`` is logged carrying the next key to read plus the new
base pages built so far.  A crash rolls pass 3 back to the last stable
point only: internal pages allocated afterwards are deallocated, side-file
entries at or beyond the stable key are dropped (the scan will re-read
them), and the scan resumes at the stable key.

Deviation from the paper, recorded in DESIGN.md: the paper pipelines upper-
level construction with the base-level scan; we build the upper levels once
the base level is complete.  The paper itself assumes "the internal pages
above the base page level should be in memory", and the observable
restart/stability behaviour (bounded rework from the last stable key,
orphan deallocation) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.btree.bulkload import build_upper_levels
from repro.btree.tree import BPlusTree
from repro.config import ReorgConfig
from repro.db import Database
from repro.errors import ReorgError
from repro.reorg.placement import (
    TreeShape,
    fill_count,
    make_policy,
    post_reorg_shape,
    predict_base_width,
)
from repro.reorg.sidefile import SideFile
from repro.storage.page import InternalPage, PageId, PageKind
from repro.wal.apply import apply_record
from repro.wal.records import (
    AllocRecord,
    FreeRecord,
    InternalFormatRecord,
    StableKeyRecord,
)

#: CK sentinel once every base page has been read: above every real key.
SCAN_DONE_KEY = 2**62


@dataclass
class Pass3Stats:
    """Outcome of the upper-level rebuild (excluding the switch)."""

    base_pages_read: int = 0
    entries_scanned: int = 0
    new_base_pages: int = 0
    new_internal_pages: int = 0
    stable_points: int = 0
    sidefile_appended: int = 0
    sidefile_applied: int = 0
    catchup_rounds: int = 0
    restarted_from_key: int | None = None
    orphans_freed: int = 0


class TreeShrinker:
    """Builds the new upper levels beside the old tree."""

    def __init__(
        self,
        db: Database,
        tree: BPlusTree,
        config: ReorgConfig,
    ):
        self.db = db
        self.tree = tree
        self.config = config
        self.side_file = SideFile(db)
        self.stats = Pass3Stats()
        #: Closed new base pages so far: (low key, page id).
        self.built_entries: list[tuple[int, PageId]] = db.pass3.built_entries
        self._open_entries: list[tuple[int, PageId]] = []
        self._open_page: InternalPage | None = None
        self._pages_since_stable = 0
        self._unforced_pages: list[PageId] = []
        #: CK — low mark of the base page currently being reorganized.
        self._current_key: int | None = None
        self.new_root: PageId = -1
        #: Placement policy for the new internal pages.  Only a policy that
        #: plans internals (vEB) pays for the shape prediction and window
        #: reservation; the default first-fit path does no extra work, so
        #: key-order runs stay byte-identical to the historical behaviour.
        self.placement = make_policy(db.config.placement_policy)
        self._plan = None
        if self.placement.plans_internals:
            self._plan = self.placement.pass3_plan(db.store, self._predicted_shape())

    def _predicted_shape(self) -> TreeShape:
        """Shape of the tree this pass is about to build.

        The upper levels are perfect-fill chunked, but the base level must
        account for stable points closing the open page early — so its
        width is simulated from the old base level's entry counts
        (:func:`predict_base_width`).  The walk reads only pages pass 3 is
        about to scan anyway; it runs once, and only for policies that plan
        internals.  Concurrent updates during the scan can still grow the
        tree past the prediction — those nodes fall outside the plan and
        take the default allocation.
        """
        per_page = self._per_page()
        n_leaves = len(self.tree.leaf_ids_in_key_order())
        root = self.db.store.get(self.tree.root_id)
        if root.kind is PageKind.LEAF:
            return post_reorg_shape(n_leaves, per_page)
        entry_counts: list[int] = []
        base = self._base_page_for_key(self._smallest_key())
        while base is not None:
            entry_counts.append(len(base.entries))
            base = self.tree.next_base_page_after(base.entries[-1][0])
        base_width = predict_base_width(
            entry_counts, per_page, self.config.stable_point_interval
        )
        return post_reorg_shape(n_leaves, per_page, base_width=base_width)

    # -- the paper's utilities ---------------------------------------------------

    def get_current(self) -> int:
        """``Get_Current()``: the scan's current low-mark key."""
        if self._current_key is None:
            raise ReorgError("pass 3 is not scanning")
        return self._current_key

    @property
    def scanning(self) -> bool:
        return self._current_key is not None

    # -- listener: section 7.2 updater logic ------------------------------------------

    def _on_base_change(self, op: str, base_page: PageId, key: int, child: PageId) -> None:
        """Called for every base-entry change on the old tree during pass 3.

        "If it is greater, then we don't need to append it, because it must
        have been inserted in a base page we haven't read yet. ... If it is
        smaller, then we know it has been inserted into one of the base
        pages that we have already read."
        """
        if self._current_key is None:
            return
        if key < self._current_key:
            self.side_file.append(key, child, op)
            self.stats.sidefile_appended += 1

    def attach_listener(self) -> None:
        self.db.pass3.reorg_bit = True
        self.tree.base_change_listener = self._on_base_change

    def detach_listener(self) -> None:
        self.tree.base_change_listener = None

    # -- scanning the old base level -----------------------------------------------------

    def scan(
        self,
        during_scan: Callable[["TreeShrinker"], None] | None = None,
        *,
        resume_from: int | None = None,
    ) -> None:
        """Read old base pages in key order, emitting new base pages.

        ``during_scan(shrinker)`` runs after each base page is finished —
        the hook where tests and the concurrency driver inject concurrent
        updater activity.  ``resume_from`` restarts the scan at a stable
        key after a crash.
        """
        root = self.db.store.get(self.tree.root_id)
        if root.kind is PageKind.LEAF:
            raise ReorgError("tree has no internal levels to rebuild")
        base = self._base_page_for_key(
            resume_from if resume_from is not None else self._smallest_key()
        )
        self._current_key = self._low_mark_of(base)
        # Filter already-emitted entries only on the first (resumed) page,
        # and only when earlier stable work actually exists — resuming at
        # the very first page must not drop entries lowered below the low
        # mark by under-minimum inserts.
        first_page_floor = (
            resume_from if resume_from is not None and self.built_entries else None
        )
        # Anchor a stable point at scan start so a crash at any later
        # moment always has a well-defined (stable key, built pages) pair
        # to roll back to.
        self._stable_point()
        while base is not None:
            probe_key = base.entries[-1][0]
            entries = list(base.entries)
            if first_page_floor is not None:
                entries = [e for e in entries if e[0] >= first_page_floor]
                first_page_floor = None
            for key, child in entries:
                self._emit(key, child)
            self.stats.base_pages_read += 1
            self.stats.entries_scanned += len(entries)
            next_base = self._next_base_after(probe_key)
            # "The value of CK is changed by the reorganizer to
            # Get_Next(CK) before it gives up the S lock on the base page
            # it just finished reading."
            self._current_key = (
                self._low_mark_of(next_base) if next_base is not None else SCAN_DONE_KEY
            )
            if self._pages_since_stable >= self.config.stable_point_interval:
                self._stable_point()
            if during_scan is not None:
                during_scan(self)
            base = next_base
        self._close_open_page()

    def _smallest_key(self) -> int:
        leaf = self.db.store.get_leaf(self.tree.leftmost_leaf_id())
        base = self.tree.base_page_for(
            leaf.min_key() if not leaf.is_empty else 0
        )
        assert base is not None
        return base.min_key()

    def _base_page_for_key(self, key: int) -> InternalPage | None:
        return self.tree.base_page_for(key)

    def _next_base_after(self, key: int) -> InternalPage | None:
        """``Get_Next(k)``: the base page after the one covering ``key``.

        With readahead configured, the upcoming sibling base pages are
        batch-read along the way — pass 3's read stream is exactly this
        key-order sweep of the base level.
        """
        return self.tree.next_base_page_after(key, prefetch_siblings=True)

    @staticmethod
    def _low_mark_of(base: InternalPage) -> int:
        return base.low_mark if base.low_mark is not None else base.min_key()

    # -- emitting new base pages ------------------------------------------------------

    def _per_page(self) -> int:
        return fill_count(
            self.db.store.config.internal_capacity, self.config.internal_fill
        )

    def _place_internal(self, level: int, index: int) -> PageId | None:
        """Policy-preferred free page for internal node (level, index), or
        None for the store's default (first-fit) allocation."""
        if self._plan is None:
            return None
        return self._plan.resolve(self.db.store, level=level, index=index)

    def _emit(self, key: int, child: PageId) -> None:
        if self._open_page is None:
            page = self.db.store.allocate_internal(
                level=1,
                page_id=self._place_internal(1, len(self.built_entries)),
            )
            self.db.log.append(AllocRecord(page_id=page.page_id, kind="internal", level=1))
            self._open_page = page
            self._open_entries = []
        self._open_entries.append((key, child))
        if len(self._open_entries) >= self._per_page():
            self._close_open_page()

    def _close_open_page(self) -> None:
        if self._open_page is None or not self._open_entries:
            return
        record = InternalFormatRecord(
            page_id=self._open_page.page_id,
            level=1,
            entries=tuple(self._open_entries),
            low_mark=self._open_entries[0][0],
        )
        self.db.log.append(record)
        apply_record(self.db.store, record)
        self.built_entries.append(
            (self._open_entries[0][0], self._open_page.page_id)
        )
        self._unforced_pages.append(self._open_page.page_id)
        self._pages_since_stable += 1
        self.stats.new_base_pages += 1
        self.stats.new_internal_pages += 1
        self._open_page = None
        self._open_entries = []

    def _stable_point(self) -> None:
        """Force recent pages and log the restart point (section 7.3)."""
        self._close_open_page()
        self.db.store.force(self._unforced_pages)
        self._unforced_pages = []
        record = StableKeyRecord(
            stable_key=self._current_key if self._current_key is not None else SCAN_DONE_KEY,
            new_root=self.new_root,
            built_entries=tuple(self.built_entries),
        )
        self.db.log.append(record)
        self.db.log.flush()
        self.db.pass3.stable_key = record.stable_key
        self._pages_since_stable = 0
        self.stats.stable_points += 1

    # -- upper levels --------------------------------------------------------------

    def build_upper(self) -> PageId:
        """Build levels 2+ over the finished new base level, force them,
        and record the new root."""
        self._close_open_page()
        if not self.built_entries:
            raise ReorgError("no new base pages were built")
        if len(self.built_entries) == 1:
            self.new_root = self.built_entries[0][1]
        else:
            built: list[PageId] = []
            self.new_root = build_upper_levels(
                self.db.store,
                self.db.log,
                self.built_entries,
                fill=self.config.internal_fill,
                start_level=2,
                on_page_built=lambda page: built.append(page.page_id),
                place=self._place_internal if self._plan is not None else None,
            )
            self.stats.new_internal_pages += len(built)
            self._unforced_pages.extend(built)
        # "We have to make the new B+-tree durable before we make the
        # switch" (section 7.3).
        self.db.store.force(self._unforced_pages)
        self._unforced_pages = []
        final = StableKeyRecord(
            stable_key=SCAN_DONE_KEY,
            new_root=self.new_root,
            built_entries=tuple(self.built_entries),
        )
        self.db.log.append(final)
        self.db.log.flush()
        self.db.pass3.stable_key = SCAN_DONE_KEY
        self.db.pass3.new_root = self.new_root
        # Register the new tree under a scratch name so catch-up can use
        # ordinary tree machinery against it.
        self.db.store.disk.set_meta(self._scratch_name(), self.new_root)
        return self.new_root

    def _scratch_name(self) -> str:
        return f"root:{self.tree.name}.new"

    def new_tree_handle(self) -> BPlusTree:
        handle = BPlusTree(self.db.store, self.db.log, name=f"{self.tree.name}.new")
        if self.db.store.disk.get_meta(self._scratch_name()) is None:
            raise ReorgError("new tree is not built yet")
        return handle

    # -- catch-up -------------------------------------------------------------------

    def apply_side_file_once(self) -> int:
        """Apply every entry currently in the side file to the new tree.

        "As each side file record is applied to the new tree, that record
        is deleted from the side file.  The actions of changing the new
        base page and of removing the side file record are logged."
        Returns the number applied.
        """
        new_tree = self.new_tree_handle()
        applied = 0
        while not self.side_file.is_empty():
            entry = self.side_file.pop_front()
            key, child, op = entry
            if op == "insert":
                new_tree.insert_base_entry(key, child)
            else:
                new_tree.delete_base_entry(key, child)
            base_id = new_tree.path_to_base(key)[-1]
            self.side_file.log_applied(entry, base_id)
            applied += 1
        # The root may have moved if catch-up split new base pages.
        self.new_root = new_tree.root_id
        self.db.pass3.new_root = self.new_root
        self.stats.sidefile_applied += applied
        return applied

    def catch_up(
        self,
        during_catchup: Callable[["TreeShrinker"], None] | None = None,
        *,
        max_rounds: int = 100,
    ) -> None:
        """Drain the side file, looping while concurrent activity refills
        it ("Since leaf page splits don't happen very often, we will
        eventually catch up all the changes")."""
        rounds = 0
        while True:
            self.apply_side_file_once()
            rounds += 1
            if during_catchup is not None and rounds < max_rounds:
                during_catchup(self)
            if self.side_file.is_empty():
                break
            if rounds >= max_rounds:
                raise ReorgError(
                    f"side file did not converge in {max_rounds} rounds"
                )
        self.stats.catchup_rounds = rounds

    # -- crash restart ----------------------------------------------------------------

    def restart_after_crash(self, *, allocs_after_stable: list[PageId]) -> int | None:
        """Roll pass 3 back to the last stable point (section 7.3).

        Deallocates new-tree pages allocated after the most recent stable
        point ("Space which is allocated after the most recent force-write
        log record can be deallocated during recovery"), drops side-file
        entries the restarted scan will re-read, and returns the stable key
        to resume from (None = start over).
        """
        stable_key = self.db.pass3.stable_key
        old_tree_internals = self._old_tree_internal_ids()
        freed = 0
        for pid in allocs_after_stable:
            if pid in old_tree_internals:
                continue  # belongs to the old tree (a concurrent split)
            if self.db.store.free_map.is_free(pid):
                continue
            self.db.log.append(FreeRecord(page_id=pid))
            self.db.store.deallocate(pid)
            freed += 1
        self.stats.orphans_freed = freed
        if stable_key is not None:
            dropped = self.side_file.drop_after_key(stable_key)
            del dropped
            self.stats.restarted_from_key = stable_key
        return stable_key

    def _old_tree_internal_ids(self) -> set[PageId]:
        ids: set[PageId] = set()
        stack = [self.tree.root_id]
        while stack:
            page = self.db.store.get(stack.pop())
            if page.kind is PageKind.INTERNAL:
                ids.add(page.page_id)
                stack.extend(page.children())  # type: ignore[union-attr]
        return ids
