"""Parallel leaf compaction — the paper's future work (section 9).

"Future work includes ... exploration of parallelism in reorganization."

This extension runs pass 1 as K cooperating reorganizer processes, each
compacting a *disjoint, contiguous range of base pages*.  Disjointness is
what makes it safe under the paper's own machinery:

* units never span base pages (section 3), so two workers never lock the
  same base page or the same leaves;
* the progress table already generalizes to one (begin LSN, recent LSN)
  row per in-flight unit — "whenever a new reorganization unit starts, it
  puts the LSN of its BEGIN log record into this table" (section 5) —
  so crash recovery simply finds *several* pending units and forward-
  recovers each;
* unit ids come from one shared counter, staying globally monotonic.

The only shared mutable resource is the free-space map: a worker reserves
its new-place destination page *atomically with choosing it*, so two
workers can never adopt the same empty page.  Each worker maintains its own
L (largest finished page id) over its own partition; placements therefore
interleave across partitions, which costs some pass-2 moves — the classic
parallelism-vs-placement trade-off the benchmark quantifies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator

from repro.config import ReorgConfig
from repro.db import Database
from repro.reorg.compact import LeafCompactor
from repro.reorg.protocols import ReorgProtocol
from repro.storage.page import LeafPage, PageId
from repro.wal.records import AllocRecord, LeafFormatRecord


@dataclass
class ParallelPass1Stats:
    """Aggregate outcome of a parallel compaction."""

    workers: int = 0
    units: int = 0
    retries: int = 0
    elapsed: float = 0.0


class _SharedUnitIds:
    """One monotonically increasing unit-id stream for all workers."""

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def __next__(self) -> int:
        return next(self._counter)


class ParallelReorgProtocol(ReorgProtocol):
    """A worker over one contiguous base-page partition."""

    def __init__(self, *args, base_partition: list[PageId], shared_ids, **kwargs):
        super().__init__(*args, **kwargs)
        self.base_partition = base_partition
        self.engine._unit_ids = shared_ids

    def pass1(self) -> Generator[Any, Any, dict]:
        """Pass 1 restricted to this worker's base pages.

        Identical locking to the single-process protocol; new-place
        destinations are reserved atomically at selection time so workers
        never race for the same empty page.
        """
        from repro.locks.modes import LockMode
        from repro.locks.resources import tree_lock
        from repro.txn.ops import Acquire, Call, ReleaseAll, Think

        yield Acquire(tree_lock(self._lock_name()), LockMode.IX)
        compactor = LeafCompactor(self.db, self.tree, self.config, self.engine)
        stats = {"units": 0, "retries": 0, "undone": 0, "stale_groups": 0}
        for base_id in self.base_partition:
            target = compactor._target_records_per_page()
            groups = yield Call(
                lambda b=base_id, t=target: compactor._plan_groups(b, t)
            )
            for group in groups:
                if len(group) < 2:
                    if group:
                        compactor.largest_finished = max(
                            compactor.largest_finished, group[0]
                        )
                    continue
                done = yield from self._compact_unit_protocol(
                    compactor, base_id, group, stats
                )
                if done:
                    stats["units"] += 1
                if self.unit_pause:
                    yield Think(self.unit_pause)
        yield ReleaseAll()
        return stats

    def _compact_unit_protocol(self, compactor, base_id, group, stats):
        """As in the base class, but the new-place destination is reserved
        (allocated + formatted) inside the same atomic Call that picks it."""
        from repro.config import FreeSpacePolicy
        from repro.reorg.freespace import find_free_page
        from repro.txn.ops import Call

        def pick_and_reserve():
            empty = find_free_page(
                self.db.store,
                self.config.free_space_policy,
                largest_finished=compactor.largest_finished,
                current=min(group),
            )
            if empty is None:
                return None
            self.db.store.free_map.allocate(
                self.db.store.free_map.extent_for(empty), empty
            )
            self.db.store.buffer.put_new(
                LeafPage(empty, self.db.store.config.leaf_capacity)
            )
            self.db.log.append(AllocRecord(page_id=empty, kind="leaf"))
            record = LeafFormatRecord(page_id=empty, records=())
            self.db.log.append(record)
            from repro.wal.apply import apply_record

            apply_record(self.db.store, record)
            return empty

        reserved = yield Call(pick_and_reserve)
        done = yield from self._locked_compact(
            compactor, base_id, group, reserved, stats
        )
        if not done and reserved is not None:
            # The group went stale before we could use the page; return it.
            yield Call(lambda: self._release_reserved(reserved))
        return done

    def _release_reserved(self, page_id: PageId) -> None:
        from repro.wal.records import FreeRecord

        if not self.db.store.free_map.is_free(page_id):
            self.db.log.append(FreeRecord(page_id=page_id))
            self.db.store.deallocate(page_id)

    def _locked_compact(self, compactor, base_id, group, reserved, stats):
        """The base-class unit body, with the destination fixed upfront."""
        from repro.errors import DeadlockError, ReorgError
        from repro.locks.modes import LockMode
        from repro.locks.resources import page_lock, tree_lock
        from repro.txn.ops import (
            Acquire, Call, Convert, Release, ReleaseAll, Think,
        )

        R, RX, S, X = LockMode.R, LockMode.RX, LockMode.S, LockMode.X
        for _attempt in range(50):
            if reserved is not None:
                dest, dest_is_new = reserved, True
            else:
                beyond = [p for p in group if p > compactor.largest_finished]
                dest = min(beyond) if beyond else min(group)
                dest_is_new = False
            unit_id = None
            try:
                probe_key = yield Call(
                    lambda g=group: self.db.store.get_leaf(g[0]).min_key()
                    if not self.db.store.free_map.is_free(g[0])
                    and not self.db.store.get_leaf(g[0]).is_empty
                    else None
                )
                if probe_key is None:
                    return False
                base_held = yield from self._s_couple_to_base(probe_key)
                if base_held is None:
                    return False
                yield Acquire(page_lock(base_held), R)
                yield Release(page_lock(base_held), S)
                valid = yield Call(
                    lambda: self._group_still_valid(base_held, group)
                )
                if not valid:
                    stats["stale_groups"] += 1
                    yield Release(page_lock(base_held), R)
                    return False
                for leaf in group:
                    yield Acquire(page_lock(leaf), RX)
                if dest_is_new:
                    yield Acquire(page_lock(dest), RX)
                unit_id = yield Call(
                    lambda bh=base_held: self.engine.begin_compact(
                        bh, group, dest, dest_is_new=dest_is_new
                    )
                )
                if self.op_duration:
                    yield Think(self.op_duration)
                yield Convert(page_lock(base_held), X)
                result = yield Call(
                    lambda bh=base_held: self.engine.complete_compact(
                        unit_id, bh, group, dest, dest_is_new=dest_is_new
                    )
                )
                compactor.largest_finished = max(
                    compactor.largest_finished, result.dest_page
                )
                yield Release(page_lock(base_held), X)
                for leaf in group:
                    yield Release(page_lock(leaf), RX)
                if dest_is_new:
                    yield Release(page_lock(dest), RX)
                return True
            except DeadlockError:
                stats["retries"] += 1
                if unit_id is not None:
                    stats["undone"] += 1
                    yield Call(lambda u=unit_id: self.engine.undo_unit(u))
                yield ReleaseAll()
                yield Think(0.5)
                yield Acquire(tree_lock(self._lock_name()), LockMode.IX)
        raise ReorgError(f"unit on base {base_id} starved after retries")


def partition_base_pages(
    db: Database, tree_name: str, n_workers: int
) -> list[list[PageId]]:
    """Contiguous key-order partitions of the tree's base pages."""
    tree = db.tree(tree_name)
    compactor = LeafCompactor(db, tree, ReorgConfig())
    base_ids = compactor._base_page_ids_in_key_order()
    n_workers = max(1, min(n_workers, len(base_ids)))
    size = (len(base_ids) + n_workers - 1) // n_workers
    return [base_ids[i : i + size] for i in range(0, len(base_ids), size)]


def build_parallel_pass1(
    db: Database,
    tree_name: str,
    config: ReorgConfig,
    n_workers: int,
    *,
    unit_pause: float = 0.0,
    op_duration: float = 0.0,
) -> list[ParallelReorgProtocol]:
    """One protocol object per worker, sharing a unit-id stream."""
    partitions = partition_base_pages(db, tree_name, n_workers)
    shared_ids = _SharedUnitIds()
    return [
        ParallelReorgProtocol(
            db,
            tree_name,
            config,
            base_partition=partition,
            shared_ids=shared_ids,
            unit_pause=unit_pause,
            op_duration=op_duration,
        )
        for partition in partitions
    ]
