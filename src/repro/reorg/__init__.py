"""The reorganizer: the paper's three-pass on-line reorganization."""

from repro.reorg.compact import LeafCompactor, Pass1Stats
from repro.reorg.daemon import (
    DaemonStats,
    DaemonTarget,
    ReorgDaemon,
)
from repro.reorg.parallel import (
    ParallelReorgProtocol,
    build_parallel_pass1,
    partition_base_pages,
)
from repro.reorg.freespace import find_free_page, resolve_preference
from repro.reorg.placement import (
    PlacementPolicy,
    TreeShape,
    bfs_to_veb,
    fill_count,
    gapped_leaf_fill_count,
    make_policy,
    post_reorg_shape,
    veb_order,
)
from repro.reorg.reorganizer import Reorganizer, ReorgReport
from repro.reorg.shrink import Pass3Stats, SCAN_DONE_KEY, TreeShrinker
from repro.reorg.sidefile import SideFile
from repro.reorg.swap import Pass2Stats, SwapMovePass
from repro.reorg.switch import SwitchStats, Switcher, current_lock_name
from repro.reorg.unit import UnitEngine, UnitResult

__all__ = [
    "DaemonStats",
    "DaemonTarget",
    "LeafCompactor",
    "ReorgDaemon",
    "ParallelReorgProtocol",
    "PlacementPolicy",
    "Pass1Stats",
    "Pass2Stats",
    "Pass3Stats",
    "Reorganizer",
    "ReorgReport",
    "SCAN_DONE_KEY",
    "SideFile",
    "SwapMovePass",
    "SwitchStats",
    "Switcher",
    "TreeShape",
    "TreeShrinker",
    "UnitEngine",
    "UnitResult",
    "build_parallel_pass1",
    "current_lock_name",
    "bfs_to_veb",
    "fill_count",
    "gapped_leaf_fill_count",
    "find_free_page",
    "make_policy",
    "post_reorg_shape",
    "resolve_preference",
    "veb_order",
    "partition_base_pages",
]
