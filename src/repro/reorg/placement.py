"""Pluggable placement policies for pass 2 and pass 3.

The paper's reorganization implicitly hard-codes one placement decision in
two places: pass 2 drives leaf ``i`` to the ``i``-th slot of the leaf
extent, and pass 3 takes the first free internal page for every node of the
new upper levels.  That key-order placement optimizes range scans, but a
root-to-leaf descent still scatters across the internal extent.  This
module extracts the decision into a :class:`PlacementPolicy` interface so
the passes themselves never compute a target page id (enforced by the
``placement-via-policy`` lint rule):

* ``key_order`` — the paper's placement, byte-identical to the historical
  behaviour;
* ``veb`` — same leaf placement, but the pass-3 upper levels are laid out
  in cache-oblivious van Emde Boas order (SNIPPETS.md: bcopeland/em_misc
  ``bfs_to_veb``) inside one contiguous free window, so a descent's
  parent-to-child hops land on nearby pages;
* ``none`` — no placement at all: pass 2 is skipped and pass 3 allocates
  first-fit.

A vEB layout restricted to any single level of the tree is left-to-right
order (each recursion step lays out the bottom subtrees in child order
over disjoint key ranges), so the ``veb`` policy's *leaf* slots coincide
with ``key_order`` — range-scan behaviour and the whole pass-2 move plan
(elevator planner, careful-writing dependencies, side-file, switch) are
reused unchanged; policies only reorder target page ids.  The property is
asserted by ``tests/reorg/test_placement.py``.

All placement is best-effort: a policy expresses *preferences*, and every
consumer falls back to the historical first-fit allocation when a
preferred page is taken (Find-Free-Space resolves a preference to the
nearest free page in the caller's lease).  Correctness never depends on a
preference being honoured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.config import PlacementPolicyKind, TreeConfig, gapped_leaf_fill
from repro.storage.page import PageId
from repro.storage.store import INTERNAL_EXTENT

if TYPE_CHECKING:
    from repro.shard.store import ShardStore
    from repro.storage.store import StorageManager

    #: Policies duck-type the store: either facade carries ``free_map``,
    #: and the shard one adds the leases the resolvers clamp to.
    AnyStore = StorageManager | ShardStore

__all__ = [
    "PlacementPolicy",
    "TreeShape",
    "bfs_to_veb",
    "fill_count",
    "gapped_leaf_fill_count",
    "make_policy",
    "post_reorg_shape",
    "predict_base_width",
    "veb_order",
]


# -- post-reorg tree shape (shared helper) -----------------------------------


def fill_count(capacity: int, fill: float) -> int:
    """Entries per page at a fill factor, at least 1.

    The one canonical form of the "how many entries does a rebuilt page
    hold" computation, shared by pass 3 (:class:`repro.reorg.shrink.
    TreeShrinker`), bottom-up bulk loading, and the shape prediction below.
    """
    return max(1, math.floor(capacity * fill + 1e-9))


def gapped_leaf_fill_count(config: TreeConfig, fill: float) -> int:
    """Records per rebuilt *leaf* at ``fill``, honouring the leaf gap.

    The placement-side name for :func:`repro.config.gapped_leaf_fill`:
    pass 1's target-records-per-page and any gap-aware slot accounting go
    through here (or the config helper directly) rather than re-deriving
    the slack arithmetic — the ``gap-via-config`` lint rule pins that.
    Internal levels are unaffected by the gap; they keep :func:`fill_count`.
    """
    return gapped_leaf_fill(config, fill)


@dataclass(frozen=True)
class TreeShape:
    """Predicted shape of the post-reorg tree.

    Attributes:
        n_leaves: number of leaf pages after pass 1.
        fanout: entries per rebuilt internal page (``fill_count`` of the
            internal capacity at the reorg's ``internal_fill``).
        internal_widths: pages per internal level, bottom-up — index 0 is
            the base level, the last entry is the root level (always 1).
            Empty only for ``n_leaves == 0``; a single leaf still gets one
            base page, which doubles as the root (as pass 3 builds it).
    """

    n_leaves: int
    fanout: int
    internal_widths: tuple[int, ...]

    @property
    def internal_levels(self) -> int:
        return len(self.internal_widths)

    @property
    def n_internal(self) -> int:
        return sum(self.internal_widths)

    @property
    def height(self) -> int:
        """Levels including the leaf level."""
        return len(self.internal_widths) + (1 if self.n_leaves else 0)

    def widths_top_down(self, *, include_leaves: bool) -> tuple[int, ...]:
        widths = tuple(reversed(self.internal_widths))
        return widths + (self.n_leaves,) if include_leaves else widths


def post_reorg_shape(
    n_leaves: int, fanout: int, *, base_width: int | None = None
) -> TreeShape:
    """Predict the upper-level widths pass 3 will build over ``n_leaves``.

    Mirrors the bottom-up construction exactly: each level chunks the one
    below into groups of ``fanout``, stopping at width 1.  A single leaf
    yields one base page and no further levels (pass 3 makes the lone base
    page the root).

    ``base_width`` overrides the perfect-fill base-level estimate
    ``ceil(n_leaves / fanout)``.  Pass 3's stable points close the open
    base page early (section 7.3), so the real base level is usually wider
    than the perfect-fill chunking predicts; :func:`predict_base_width`
    computes the exact width from the old base level's entry counts, and
    only the levels *above* the base are perfect-fill chunked (the
    bottom-up upper build has no stable points).
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    if n_leaves < 0:
        raise ValueError("n_leaves must be >= 0")
    if n_leaves == 0:
        return TreeShape(0, fanout, ())
    widths = [base_width if base_width is not None else -(-n_leaves // fanout)]
    while widths[-1] > 1:
        widths.append(-(-widths[-1] // fanout))
    return TreeShape(n_leaves, fanout, tuple(widths))


def predict_base_width(
    entry_counts: Sequence[int], per_page: int, stable_point_interval: int
) -> int:
    """Exact number of new base pages pass 3 will emit, stable points included.

    Replays :meth:`~repro.reorg.shrink.TreeShrinker.scan`'s emission
    arithmetic without touching any pages: the scan streams one new base
    entry per old base entry, closes the open page at ``per_page`` entries,
    and — after finishing each *old* base page — takes a stable point
    whenever ``stable_point_interval`` new pages have closed since the last
    one, which closes the open page *early* (section 7.3).  Those early
    closures are why the real base level is wider than
    ``ceil(n_leaves / per_page)``: predicting them exactly is what lets the
    vEB plan cover every base page instead of degrading on the overflow.

    ``entry_counts`` are the entry counts of the old base pages in key
    order; the stable-point closure can only land on their boundaries.
    """
    if per_page < 1:
        raise ValueError("per_page must be >= 1")
    pages = open_count = since = 0
    for count in entry_counts:
        closed, open_count = divmod(open_count + count, per_page)
        pages += closed
        since += closed
        if since >= stable_point_interval:
            if open_count:
                pages += 1
                open_count = 0
            since = 0
    if open_count:
        pages += 1
    return pages


# -- BFS -> vEB numbering -----------------------------------------------------


def veb_order(
    widths_top_down: Sequence[int], fanout: int
) -> list[tuple[int, int]]:
    """All nodes of an implicit left-packed tree in van Emde Boas order.

    Nodes are named ``(depth, index)`` with depth 0 the (single) root and
    ``index`` the BFS position within the level; node ``(d, i)``'s children
    are ``(d + 1, j)`` for ``i * fanout <= j < (i + 1) * fanout`` clipped to
    the next level's width — exactly how the bottom-up builder chunks each
    level.  The classic recursion (cf. bcopeland/em_misc ``bfs_to_veb``)
    splits the height in half, lays out the top half, then each bottom
    subtree left to right; non-perfect trees simply have their right-edge
    subtrees clipped by the level widths.
    """
    if not widths_top_down:
        return []
    if widths_top_down[0] != 1:
        raise ValueError("vEB layout needs a single root at depth 0")
    for d in range(1, len(widths_top_down)):
        if widths_top_down[d] > widths_top_down[d - 1] * fanout:
            raise ValueError(
                f"level {d} width {widths_top_down[d]} exceeds fanout "
                f"{fanout} times level {d - 1}"
            )
    out: list[tuple[int, int]] = []

    def emit(depth: int, index: int, h: int) -> None:
        if h == 1:
            out.append((depth, index))
            return
        top_h = h // 2
        emit(depth, index, top_h)
        d_bot = depth + top_h
        lo = index * fanout**top_h
        hi = min((index + 1) * fanout**top_h, widths_top_down[d_bot])
        for j in range(lo, hi):
            emit(d_bot, j, h - top_h)

    emit(0, 0, len(widths_top_down))
    return out


def bfs_to_veb(
    widths_top_down: Sequence[int], fanout: int
) -> dict[tuple[int, int], int]:
    """Table lookup from BFS position ``(depth, index)`` to vEB rank.

    The ranks are a permutation of ``range(sum(widths_top_down))`` — the
    round-trip tests assert exactly that on perfect and non-perfect trees.
    """
    return {node: rank for rank, node in enumerate(veb_order(widths_top_down, fanout))}


# -- the policy interface -----------------------------------------------------


class Pass3Plan:
    """Resolved internal-page preferences for one pass-3 rebuild.

    Maps ``(level, index)`` — level 1 is the new base level, the highest
    level is the root; ``index`` counts pages left to right within the
    level — to a preferred page id.  ``resolve`` turns the preference into
    an actually-free page via Find-Free-Space's nearest-free fallback, or
    ``None`` when the node falls outside the predicted shape (concurrent
    updates grew the tree) so the caller uses its default allocation.
    """

    def __init__(self, shape: TreeShape, window_start: PageId):
        self.shape = shape
        self.window_start = window_start
        self.window_end = window_start + shape.n_internal
        ranks = bfs_to_veb(shape.widths_top_down(include_leaves=False), shape.fanout)
        levels = shape.internal_levels
        #: (level, index) -> preferred page id, level 1 = base.
        self.table: dict[tuple[int, int], PageId] = {
            (levels - depth, index): window_start + rank
            for (depth, index), rank in ranks.items()
        }

    def preference(self, level: int, index: int) -> PageId | None:
        return self.table.get((level, index))

    def resolve(self, store: AnyStore, level: int, index: int) -> PageId | None:
        """A free page id honouring the preference as closely as possible."""
        from repro.reorg.freespace import resolve_preference

        preferred = self.preference(level, index)
        if preferred is None:
            return None
        return resolve_preference(
            store.free_map,
            INTERNAL_EXTENT,
            preferred,
            lease=getattr(store, "internal_lease", None),
        )


class PlacementPolicy:
    """Where pass 2 puts each leaf and pass 3 puts each internal page.

    Subclasses override the hooks; the base class is the ``key_order``
    behaviour so the default path stays byte-identical to the paper's
    placement.
    """

    kind = PlacementPolicyKind.KEY_ORDER
    #: False skips pass 2 entirely (no leaf targets exist).
    places_leaves = True
    #: True makes pass 3 predict the tree shape and request a plan.
    plans_internals = False

    def leaf_slots(self, n_leaves: int, window_start: PageId) -> list[PageId] | None:
        """Target page for each leaf rank, or None to skip pass 2.

        ``window_start`` is the first page of the caller's target window:
        the shard's leaf-lease start, or the leaf extent start unsharded.
        """
        return [window_start + i for i in range(n_leaves)]

    def pass1_preference(
        self, *, largest_finished: PageId, current: PageId
    ) -> PageId | None:
        """Preferred Find-Free-Space target for a pass-1 compaction unit.

        Every built-in policy returns None — pass 1 placement is left to
        the configured :class:`~repro.config.FreeSpacePolicy`, which keeps
        pass-1 behaviour identical across policies and isolates what the
        benchmark compares to pass-2/3 placement.  The hook exists so a
        future policy (NUMA/tier-aware, say) can steer compaction too.
        """
        del largest_finished, current
        return None

    def pass3_plan(self, store: AnyStore, shape: TreeShape) -> Pass3Plan | None:
        """Internal-page plan for pass 3, or None for first-fit."""
        del store, shape
        return None


class KeyOrderPolicy(PlacementPolicy):
    """The paper's placement (section 6): contiguous key order."""


class VebPolicy(PlacementPolicy):
    """Cache-oblivious placement: key-order leaves, vEB upper levels."""

    kind = PlacementPolicyKind.VEB
    plans_internals = True

    def pass3_plan(self, store: AnyStore, shape: TreeShape) -> Pass3Plan | None:
        if shape.n_internal == 0:
            return None
        lease = getattr(store, "internal_lease", None)
        window_start = store.free_map.first_free_run(
            INTERNAL_EXTENT,
            shape.n_internal,
            after=lease.start - 1 if lease is not None else None,
            before=lease.end if lease is not None else None,
        )
        if window_start is None:
            # No contiguous window (fragmented or lease too small): degrade
            # gracefully to the default first-fit allocation.
            return None
        return Pass3Plan(shape, window_start)


class NoPlacementPolicy(PlacementPolicy):
    """No placement: pass 2 is a no-op, pass 3 allocates first-fit."""

    kind = PlacementPolicyKind.NONE
    places_leaves = False

    def leaf_slots(self, n_leaves: int, window_start: PageId) -> list[PageId] | None:
        del n_leaves, window_start
        return None


_POLICIES = {
    PlacementPolicyKind.KEY_ORDER: KeyOrderPolicy,
    PlacementPolicyKind.VEB: VebPolicy,
    PlacementPolicyKind.NONE: NoPlacementPolicy,
}


def make_policy(kind: PlacementPolicyKind) -> PlacementPolicy:
    return _POLICIES[kind]()
