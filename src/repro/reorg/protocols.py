"""The reorganizer's protocols for the discrete-event scheduler.

Generator versions of the three passes with the paper's locking made
explicit (section 4.1.1)::

    IX lock the tree lock.
    S lock-couple down the tree until it reaches the base pages.
    R lock the base page(s) and then RX lock the leaf pages that are going
    to be reorganized.
    Move records between leaf pages.
    Upgrade its lock on base pages to X mode.
    Modify necessary keys and pointers in the base pages.
    Release locks.

Deadlock handling follows the paper's policy: "Whenever the reorganizer
gets in a deadlock, we always force the reorganizer to give up its lock" —
a :class:`~repro.errors.DeadlockError` thrown in at any lock yield makes
the protocol drop every lock and retry the unit after a pause.  Because all
R and RX locks are taken *before* any record moves, giving up normally
costs no work; a deadlock at the R->X conversion after moving records
triggers the section 5.2 undo (:meth:`UnitEngine.undo_unit`).

Pass 3's protocol holds an S lock on exactly one base page at a time while
scanning (section 7.5), and the switch performs the section 7.4 lock dance:
X on the side file, root flip, then X on the *old* tree lock name to drain
old transactions — with the configurable wait limit and forced aborts via
an ``abort_hook`` the simulation driver arms.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.btree.tree import BPlusTree
from repro.config import ReorgConfig
from repro.db import Database
from repro.errors import DeadlockError, ReorgError, SwitchTimeoutError
from repro.locks.modes import LockMode
from repro.locks.resources import page_lock, sidefile_lock, tree_lock
from repro.reorg.compact import LeafCompactor
from repro.reorg.freespace import find_free_page
from repro.reorg.placement import make_policy
from repro.reorg.shrink import SCAN_DONE_KEY, TreeShrinker
from repro.reorg.switch import Switcher, _bump_lock_name, current_lock_name
from repro.reorg.unit import UnitEngine
from repro.storage.page import PageId, PageKind
from repro.storage.store import LEAF_EXTENT
from repro.txn.ops import Acquire, Call, Convert, Release, ReleaseAll, Think
from repro.txn.transaction import Transaction

IX, S, X, R, RX = LockMode.IX, LockMode.S, LockMode.X, LockMode.R, LockMode.RX

#: Pause before retrying a unit whose locks were given up at a deadlock.
_RETRY_PAUSE = 0.5
_MAX_UNIT_RETRIES = 50


class ReorgProtocol:
    """Builds the reorganizer's generator protocols for one tree."""

    def __init__(
        self,
        db: Database,
        tree_name: str,
        config: ReorgConfig | None = None,
        *,
        unit_pause: float = 0.0,
        scan_pause: float = 0.0,
        op_duration: float = 0.0,
        abort_hook: Callable[[list[Transaction]], None] | None = None,
        sidefile_name: str | None = None,
    ):
        self.db = db
        self.tree_name = tree_name
        self.config = config or ReorgConfig()
        self.tree = db.tree(tree_name)
        self.engine = UnitEngine(db, self.tree)
        #: Placement policy deciding pass-2 leaf targets (and, through the
        #: shrinker, pass-3 internal targets).  Shard handles carry a
        #: possibly-overridden config, so each shard reorganizer resolves
        #: its own policy against its own leases.
        self.placement = make_policy(db.config.placement_policy)
        #: Which side file this reorganizer's switch drains.  Defaults to
        #: the db's own side-file name (shard handles carry one), falling
        #: back to the single global side file.
        if sidefile_name is None:
            sidefile_name = getattr(db, "sidefile_name", "")
        self._sidefile_resource = sidefile_lock(sidefile_name)
        #: Simulated time consumed between units / between scanned base
        #: pages — models the background pacing of the reorganizer.
        self.unit_pause = unit_pause
        self.scan_pause = scan_pause
        #: Simulated time the record movement of one unit takes while the
        #: RX locks are held — the window during which readers/updaters
        #: back off to RS waits.
        self.op_duration = op_duration
        #: Called with the transactions still holding the old tree lock
        #: when the switch's wait limit expires; the driver wires this to
        #: Scheduler.abort_transaction.
        self.abort_hook = abort_hook

    # -- helpers ----------------------------------------------------------------

    def _lock_name(self) -> str:
        return current_lock_name(self.db, self.tree_name)

    def _s_couple_to_base(self, key: int):
        """S lock-couple from the root to the base page for ``key``;
        returns the base page id, S held on it (None for a leaf root)."""
        root_id = self.tree.root_id
        page = self.db.store.get(root_id)
        if page.kind is PageKind.LEAF:
            return None
        yield Acquire(page_lock(root_id), S)
        held = root_id
        while page.level > 1:  # type: ignore[union-attr]
            child = page.child_for(key)  # type: ignore[union-attr]
            yield Acquire(page_lock(child), S)
            yield Release(page_lock(held), S)
            held = child
            page = self.db.store.get(child)
        return held

    # -- pass 1 ------------------------------------------------------------------

    def pass1(self) -> Generator[Any, Any, dict]:
        """Compaction under the section 4.1.1 unit protocol."""
        yield Acquire(tree_lock(self._lock_name()), IX)
        compactor = LeafCompactor(self.db, self.tree, self.config, self.engine)
        stats = {"units": 0, "retries": 0, "undone": 0, "stale_groups": 0}
        for base_id in compactor._base_page_ids_in_key_order():
            target = compactor._target_records_per_page()
            groups = yield Call(
                lambda b=base_id, t=target: compactor._plan_groups(b, t)
            )
            for group in groups:
                if len(group) < 2:
                    if group:
                        compactor.largest_finished = max(
                            compactor.largest_finished, group[0]
                        )
                    continue
                done = yield from self._compact_unit_protocol(
                    compactor, base_id, group, stats
                )
                if done:
                    stats["units"] += 1
                if self.unit_pause:
                    yield Think(self.unit_pause)
        yield ReleaseAll()
        return stats

    def _side_pointer_neighbours(self, group: list[PageId]) -> list[PageId]:
        """Leaves outside the unit whose side pointers the unit will edit.

        Section 4.3: "the reorganizer has to RX lock some number of leaf
        pages (X lock for those leaf pages that are not children of the
        same base page as the leaf pages being reorganized) to make the
        side-pointer changes ... the reorganizer [must] acquire all the
        necessary locks before it starts moving records."
        """
        from repro.config import SidePointerKind

        if self.tree.side_pointers is SidePointerKind.NONE:
            return []
        chain = self.tree.leaf_ids_in_key_order()
        positions = [chain.index(p) for p in group if p in chain]
        if not positions:
            return []
        first, last = min(positions), max(positions)
        neighbours = []
        if first > 0:
            neighbours.append(chain[first - 1])
        if last + 1 < len(chain):
            neighbours.append(chain[last + 1])
        return [n for n in neighbours if n not in group]

    def _group_still_valid(self, base_id: PageId, group: list[PageId]) -> bool:
        """Concurrent splits may have moved children to a sibling base
        page between planning and locking; such groups are skipped (the
        paper likewise leaves split-created disorder for a later pass)."""
        if self.db.store.free_map.is_free(base_id):
            return False
        base = self.db.store.get_internal(base_id)
        children = set(base.children())
        return all(leaf in children for leaf in group)

    def _compact_unit_protocol(self, compactor, base_id, group, stats):
        """One reorganization unit with full locking; True when executed."""
        target = compactor._target_records_per_page()
        total = sum(
            self.db.store.get_leaf(p).num_items
            for p in group
            if not self.db.store.free_map.is_free(p)
        )
        needed = max(1, -(-total // target))
        if needed > 1 and self.config.max_unit_output_pages > 1:
            dests = yield Call(
                lambda: compactor._pick_free_run(needed, current=min(group))
            )
            if dests is not None:
                done = yield from self._multi_unit_protocol(
                    compactor, base_id, group, dests, target, stats
                )
                return done
            # No usable free run: split into single-output sub-groups and
            # run each under its own unit (the engine cannot overfill one
            # destination page).
            any_done = False
            for sub in self._split_group(group, target):
                if len(sub) < 2:
                    if sub:
                        compactor.largest_finished = max(
                            compactor.largest_finished, sub[0]
                        )
                    continue
                done = yield from self._compact_unit_protocol(
                    compactor, base_id, sub, stats
                )
                any_done = any_done or done
            return any_done
        for _attempt in range(_MAX_UNIT_RETRIES):
            current = min(group)
            empty = find_free_page(
                self.db.store,
                self.config.free_space_policy,
                largest_finished=compactor.largest_finished,
                current=current,
                preference=self.placement.pass1_preference(
                    largest_finished=compactor.largest_finished, current=current
                ),
            )
            if empty is not None:
                dest, dest_is_new = empty, True
            else:
                beyond = [p for p in group if p > compactor.largest_finished]
                dest = min(beyond) if beyond else min(group)
                dest_is_new = False
            unit_id = None
            try:
                probe_key = yield Call(
                    lambda g=group: self.db.store.get_leaf(g[0]).min_key()
                    if not self.db.store.free_map.is_free(g[0])
                    and not self.db.store.get_leaf(g[0]).is_empty
                    else None
                )
                if probe_key is None:
                    return False
                base_held = yield from self._s_couple_to_base(probe_key)
                if base_held is None:
                    return False  # tree shrank to a leaf root meanwhile
                # R lock the base page (S from coupling is then released).
                yield Acquire(page_lock(base_held), R)
                yield Release(page_lock(base_held), S)
                valid = yield Call(
                    lambda: self._group_still_valid(base_held, group)
                )
                if not valid:
                    stats["stale_groups"] += 1
                    yield Release(page_lock(base_held), R)
                    return False
                # RX lock every leaf in the unit (and a new dest page),
                # plus X on side-pointer neighbours outside the unit's
                # base page (section 4.3) — all before any record moves.
                for leaf in group:
                    yield Acquire(page_lock(leaf), RX)
                if dest_is_new:
                    yield Acquire(page_lock(dest), RX)
                neighbours = yield Call(
                    lambda: self._side_pointer_neighbours(group)
                )
                for neighbour in neighbours:
                    yield Acquire(page_lock(neighbour), X)
                # Move records between leaf pages.
                unit_id = yield Call(
                    lambda bh=base_held: self.engine.begin_compact(
                        bh, group, dest, dest_is_new=dest_is_new
                    )
                )
                if self.op_duration:
                    yield Think(self.op_duration)
                # Upgrade the base-page lock to X mode (short window).
                yield Convert(page_lock(base_held), X)
                # Modify keys and pointers in the base page.
                result = yield Call(
                    lambda bh=base_held: self.engine.complete_compact(
                        unit_id, bh, group, dest, dest_is_new=dest_is_new
                    )
                )
                compactor.largest_finished = max(
                    compactor.largest_finished, result.dest_page
                )
                # Release locks.
                yield Release(page_lock(base_held), X)
                for leaf in group:
                    yield Release(page_lock(leaf), RX)
                if dest_is_new:
                    yield Release(page_lock(dest), RX)
                for neighbour in neighbours:
                    yield Release(page_lock(neighbour), X)
                return True
            except DeadlockError:
                # The reorganizer always yields: give up the unit's locks.
                stats["retries"] += 1
                if unit_id is not None:
                    # Records were already moved: section 5.2 undo.
                    stats["undone"] += 1
                    yield Call(lambda u=unit_id: self.engine.undo_unit(u))
                yield ReleaseAll()
                yield Think(_RETRY_PAUSE)
                yield Acquire(tree_lock(self._lock_name()), IX)
        raise ReorgError(f"unit on base {base_id} starved after retries")

    def _split_group(self, group, target):
        """Chunk an oversized group into <= one output page each."""
        chunks, current, count = [], [], 0
        for leaf in group:
            if self.db.store.free_map.is_free(leaf):
                continue
            n = self.db.store.get_leaf(leaf).num_items
            if current and count + n > target:
                chunks.append(current)
                current, count = [], 0
            current.append(leaf)
            count += n
        if current:
            chunks.append(current)
        return chunks

    def _multi_unit_protocol(self, compactor, base_id, group, dests, target, stats):
        """A multi-output unit: same choreography, k destinations, and the
        locks held ~k times longer (section 6's stated trade-off)."""
        for _attempt in range(_MAX_UNIT_RETRIES):
            unit_id = None
            try:
                probe_key = yield Call(
                    lambda g=group: self.db.store.get_leaf(g[0]).min_key()
                    if not self.db.store.free_map.is_free(g[0])
                    and not self.db.store.get_leaf(g[0]).is_empty
                    else None
                )
                if probe_key is None:
                    return False
                base_held = yield from self._s_couple_to_base(probe_key)
                if base_held is None:
                    return False
                yield Acquire(page_lock(base_held), R)
                yield Release(page_lock(base_held), S)
                valid = yield Call(
                    lambda: self._group_still_valid(base_held, group)
                )
                if not valid:
                    stats["stale_groups"] += 1
                    yield Release(page_lock(base_held), R)
                    return False
                for leaf in group:
                    yield Acquire(page_lock(leaf), RX)
                for dest in dests:
                    yield Acquire(page_lock(dest), RX)
                unit_id = yield Call(
                    lambda bh=base_held: self.engine.begin_compact_multi(
                        bh, group, dests, target
                    )
                )
                if self.op_duration:
                    # Movement time scales with the unit's output size.
                    yield Think(self.op_duration * len(dests))
                yield Convert(page_lock(base_held), X)
                result = yield Call(
                    lambda bh=base_held: self.engine.complete_compact_multi(
                        unit_id, bh, group, dests
                    )
                )
                compactor.largest_finished = max(
                    compactor.largest_finished, max(dests)
                )
                del result
                yield Release(page_lock(base_held), X)
                for leaf in group:
                    yield Release(page_lock(leaf), RX)
                for dest in dests:
                    yield Release(page_lock(dest), RX)
                return True
            except DeadlockError:
                stats["retries"] += 1
                if unit_id is not None:
                    stats["undone"] += 1
                    yield Call(lambda u=unit_id: self.engine.undo_unit(u))
                yield ReleaseAll()
                yield Think(_RETRY_PAUSE)
                yield Acquire(tree_lock(self._lock_name()), IX)
        raise ReorgError(f"multi unit on base {base_id} starved")

    # -- pass 2 ------------------------------------------------------------------

    def pass2(self) -> Generator[Any, Any, dict]:
        """Swap/move under unit locking; section 4.1 + section 6."""
        yield Acquire(tree_lock(self._lock_name()), IX)
        stats = {"swaps": 0, "moves": 0, "retries": 0}
        if not self.placement.places_leaves:
            yield ReleaseAll()
            return stats
        lease = getattr(self.db.store, "leaf_lease", None)
        if lease is not None:
            start = lease.start
        else:
            start = self.db.store.disk.extent(LEAF_EXTENT).start
        max_steps = 4 * len(self.tree.leaf_ids_in_key_order()) + 8
        for _step in range(max_steps):
            plan = yield Call(lambda: self._next_misplaced(start))
            if plan is None:
                break
            current, target, occupied = plan
            if not occupied:
                done = yield from self._move_unit_protocol(current, target, stats)
                if done:
                    stats["moves"] += 1
            else:
                done = yield from self._swap_unit_protocol(current, target, stats)
                if done:
                    stats["swaps"] += 1
            if self.unit_pause:
                yield Think(self.unit_pause)
        yield ReleaseAll()
        return stats

    def _next_misplaced(self, start: PageId):
        """(leaf, target slot, slot-occupied?) for the first out-of-place
        leaf, recomputed fresh so concurrent splits cannot mislead us."""
        root = self.db.store.get(self.tree.root_id)
        if root.kind is PageKind.LEAF:
            return None
        chain = self.tree.leaf_ids_in_key_order()
        slots = self.placement.leaf_slots(len(chain), start)
        if slots is None:
            return None
        for index, leaf in enumerate(chain):
            target = slots[index]
            if leaf == target:
                continue
            occupied = not self.db.store.free_map.is_free(target)
            if occupied and target not in chain[index + 1 :]:
                # The slot holds a page that is not a later leaf of this
                # tree (a fresh split landed there): leave it in place.
                continue
            return leaf, target, occupied
        return None

    def _parent_of(self, leaf_id: PageId) -> PageId:
        leaf = self.db.store.get_leaf(leaf_id)
        base = self.tree.base_page_for(leaf.min_key())
        if base is None or base.index_of_child(leaf_id) < 0:
            raise ReorgError(f"leaf {leaf_id} has no parent")
        return base.page_id

    def _move_unit_protocol(self, source, target, stats):
        for _attempt in range(_MAX_UNIT_RETRIES):
            unit_id = None
            try:
                probe_key = yield Call(
                    lambda: self.db.store.get_leaf(source).min_key()
                )
                base_held = yield from self._s_couple_to_base(probe_key)
                if base_held is None:
                    return False
                yield Acquire(page_lock(base_held), R)
                yield Release(page_lock(base_held), S)
                yield Acquire(page_lock(source), RX)
                yield Acquire(page_lock(target), RX)
                neighbours = yield Call(
                    lambda: self._side_pointer_neighbours([source])
                )
                for neighbour in neighbours:
                    yield Acquire(page_lock(neighbour), X)
                unit_id = yield Call(
                    lambda bh=base_held: self.engine.begin_compact(
                        bh, [source], target, dest_is_new=True,
                    )
                )
                if self.op_duration:
                    yield Think(self.op_duration)
                yield Convert(page_lock(base_held), X)
                yield Call(
                    lambda bh=base_held: self.engine.complete_compact(
                        unit_id, bh, [source], target, dest_is_new=True
                    )
                )
                yield Release(page_lock(base_held), X)
                yield Release(page_lock(source), RX)
                yield Release(page_lock(target), RX)
                for neighbour in neighbours:
                    yield Release(page_lock(neighbour), X)
                return True
            except DeadlockError:
                stats["retries"] += 1
                if unit_id is not None:
                    yield Call(lambda u=unit_id: self.engine.undo_unit(u))
                yield ReleaseAll()
                yield Think(_RETRY_PAUSE)
                yield Acquire(tree_lock(self._lock_name()), IX)
        raise ReorgError(f"move of {source} starved")

    def _swap_unit_protocol(self, leaf_a, leaf_b, stats):
        for _attempt in range(_MAX_UNIT_RETRIES):
            unit_id = None
            try:
                base_a = yield Call(lambda: self._parent_of(leaf_a))
                base_b = yield Call(lambda: self._parent_of(leaf_b))
                probe_key = yield Call(
                    lambda: self.db.store.get_leaf(leaf_a).min_key()
                )
                held = yield from self._s_couple_to_base(probe_key)
                if held is None:
                    return False
                yield Acquire(page_lock(base_a), R)
                yield Release(page_lock(held), S)
                if base_b != base_a:
                    yield Acquire(page_lock(base_b), R)
                yield Acquire(page_lock(leaf_a), RX)
                yield Acquire(page_lock(leaf_b), RX)
                neighbours = yield Call(
                    lambda: sorted(
                        set(self._side_pointer_neighbours([leaf_a]))
                        | set(self._side_pointer_neighbours([leaf_b]))
                        - {leaf_a, leaf_b}
                    )
                )
                for neighbour in neighbours:
                    yield Acquire(page_lock(neighbour), X)
                unit_id = yield Call(
                    lambda: self.engine.begin_swap(base_a, leaf_a, base_b, leaf_b)
                )
                if self.op_duration:
                    yield Think(self.op_duration)
                yield Convert(page_lock(base_a), X)
                if base_b != base_a:
                    yield Convert(page_lock(base_b), X)
                yield Call(
                    lambda: self.engine.complete_swap(
                        unit_id, base_a, leaf_a, base_b, leaf_b
                    )
                )
                yield Release(page_lock(base_a), X)
                if base_b != base_a:
                    yield Release(page_lock(base_b), X)
                yield Release(page_lock(leaf_a), RX)
                yield Release(page_lock(leaf_b), RX)
                for neighbour in neighbours:
                    yield Release(page_lock(neighbour), X)
                return True
            except DeadlockError:
                stats["retries"] += 1
                if unit_id is not None:
                    yield Call(lambda u=unit_id: self.engine.undo_unit(u))
                yield ReleaseAll()
                yield Think(_RETRY_PAUSE)
                yield Acquire(tree_lock(self._lock_name()), IX)
        raise ReorgError(f"swap of {leaf_a}/{leaf_b} starved")

    # -- pass 3 ------------------------------------------------------------------

    def pass3(self) -> Generator[Any, Any, dict]:
        """Internal reorganization: S one base page at a time, side file,
        and the section 7.4 switch."""
        yield Acquire(tree_lock(self._lock_name()), IX)
        shrinker = TreeShrinker(self.db, self.tree, self.config)
        shrinker.attach_listener()
        stats = {"base_pages": 0, "catchup_rounds": 0, "aborted_stragglers": 0}
        try:
            root = self.db.store.get(self.tree.root_id)
            if root.kind is PageKind.LEAF:
                yield ReleaseAll()
                return stats
            first = yield Call(
                lambda: shrinker._base_page_for_key(shrinker._smallest_key())
            )
            base_id = first.page_id
            shrinker._current_key = shrinker._low_mark_of(first)
            yield Call(shrinker._stable_point)
            while base_id is not None:
                # "The reorganizer only holds an S lock on the base page
                # that it is reading, so other readers could also access
                # that page" (section 7.1).
                yield Acquire(page_lock(base_id), S)
                next_base_id = yield Call(
                    lambda b=base_id: self._scan_one_base(shrinker, b)
                )
                stats["base_pages"] += 1
                if (
                    shrinker._pages_since_stable
                    >= self.config.stable_point_interval
                ):
                    yield Call(shrinker._stable_point)
                if self.scan_pause:
                    # Reading time, charged while the S lock is held.
                    yield Think(self.scan_pause)
                yield Release(page_lock(base_id), S)
                base_id = next_base_id
            yield Call(shrinker.build_upper)
            # Catch-up (no locks): loop until the side file drains.
            for _round in range(100):
                yield Call(shrinker.apply_side_file_once)
                stats["catchup_rounds"] += 1
                if shrinker.side_file.is_empty():
                    break
                yield Think(self.scan_pause or 0.1)
            yield from self._switch_protocol(shrinker, stats)
        finally:
            shrinker.detach_listener()
        yield ReleaseAll()
        return stats

    def _scan_one_base(self, shrinker: TreeShrinker, base_id: PageId):
        """Read one (S-locked) base page, emit its entries, advance CK.

        Returns the next base page id or None.  Runs synchronously inside
        a Call so the page content and CK advance atomically w.r.t. the
        held S lock, exactly as in the paper.
        """
        base = self.db.store.get_internal(base_id)
        entries = list(base.entries)
        for key, child in entries:
            shrinker._emit(key, child)
        shrinker.stats.base_pages_read += 1
        shrinker.stats.entries_scanned += len(entries)
        next_base = shrinker._next_base_after(entries[-1][0])
        shrinker._current_key = (
            shrinker._low_mark_of(next_base)
            if next_base is not None
            else SCAN_DONE_KEY
        )
        return next_base.page_id if next_base is not None else None

    def _switch_protocol(self, shrinker: TreeShrinker, stats: dict):
        from repro.wal.records import ReorgDoneRecord, TreeSwitchRecord

        db = self.db
        yield Acquire(self._sidefile_resource, X)
        yield Call(shrinker.apply_side_file_once)
        old_root = self.tree.root_id
        new_root = shrinker.new_root
        old_lock_name = current_lock_name(db, self.tree_name)

        def log_switch():
            db.log.append(
                TreeSwitchRecord(
                    old_root=old_root,
                    new_root=new_root,
                    old_lock_name=old_lock_name,
                )
            )
            db.log.flush()

        yield Call(log_switch)
        yield Call(lambda: _flip_root(db, self.tree, new_root))
        # Drain old-tree transactions: X on the old lock name.  With a
        # wait limit, poll and force stragglers to abort (section 7.4).
        limit = self.config.switch_wait_limit
        if limit is not None:
            waited = 0.0
            poll = max(limit / 10.0, 0.01)
            while True:
                holders = yield Call(
                    lambda: [
                        owner
                        for owner in db.locks.holders_of(
                            tree_lock(old_lock_name)
                        )
                        # The reorganizer's own IX on the old tree does not
                        # count as a straggler.
                        if not getattr(owner, "is_reorganizer", False)
                    ]
                )
                if not holders:
                    break
                if waited >= limit:
                    if not self.config.abort_old_transactions_on_timeout:
                        raise SwitchTimeoutError(
                            f"old tree still in use after {limit} time units"
                        )
                    if self.abort_hook is not None:
                        yield Call(lambda h=holders: self.abort_hook(h))
                        stats["aborted_stragglers"] += len(holders)
                    else:
                        raise SwitchTimeoutError(
                            "forced abort requested but no abort_hook is wired"
                        )
                yield Think(poll)
                waited += poll
        yield Acquire(tree_lock(old_lock_name), X)
        freed = yield Call(
            lambda: Switcher(db, self.tree, shrinker)._discard_internals_under(
                old_root
            )
        )

        def finish():
            db.log.append(ReorgDoneRecord())
            db.log.flush()
            _clear_pass3(db, shrinker)

        yield Call(finish)
        yield Release(tree_lock(old_lock_name), X)
        yield Release(self._sidefile_resource, X)
        stats["old_internal_freed"] = freed


def _flip_root(db: Database, tree: BPlusTree, new_root: PageId) -> None:
    _bump_lock_name(db, tree.name)
    tree.set_root(new_root)
    db.store.disk.del_meta(f"root:{tree.name}.new")


def _clear_pass3(db: Database, shrinker: TreeShrinker) -> None:
    db.pass3.reorg_bit = False
    db.pass3.stable_key = None
    db.pass3.new_root = -1
    db.pass3.side_file_entries.clear()
    shrinker.built_entries.clear()


def full_reorganization(protocol: ReorgProtocol) -> Generator[Any, Any, dict]:
    """All three passes as one background process."""
    stats: dict = {}
    stats["pass1"] = yield from protocol.pass1()
    if protocol.config.do_swap_pass:
        stats["pass2"] = yield from protocol.pass2()
    root = protocol.db.store.get(protocol.tree.root_id)
    if root.kind is PageKind.INTERNAL:
        stats["pass3"] = yield from protocol.pass3()
    return stats
