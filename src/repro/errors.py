"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause.  The subclasses
mirror the paper's subsystems: storage, logging, locking, B+-tree structure,
and the reorganizer itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Base class for simulated-disk and buffer-pool errors."""


class PageNotAllocatedError(StorageError):
    """A page id was used that is not currently allocated on the disk."""


class PageAlreadyFreeError(StorageError):
    """Attempt to free a page that is already free."""


class ExtentFullError(StorageError):
    """No free page is available in the requested disk extent."""


class BufferPoolError(StorageError):
    """Base class for buffer-pool protocol violations."""


class PagePinnedError(BufferPoolError):
    """A pinned page was targeted by an operation that requires it unpinned."""


class CarefulWriteViolation(BufferPoolError):
    """A write or deallocation would violate a careful-writing dependency.

    Per paper section 5, with careful writing a page whose contents were
    copied elsewhere must not reach disk (or be deallocated) before the
    destination page is durable.
    """


class WALViolation(BufferPoolError):
    """A dirty page would be written before its log records were flushed."""


class LogError(ReproError):
    """Base class for write-ahead-log errors."""


class LogCorruptionError(LogError):
    """The (simulated) stable log failed an integrity check during recovery."""


class LockError(ReproError):
    """Base class for lock-manager errors."""


class LockProtocolViolation(LockError):
    """A lock request pairing the paper declares impossible was attempted.

    Table 1 of the paper leaves some cells blank, meaning the two modes are
    never requested together by different requesters (for example one mode is
    used only on leaf pages and the other only on base pages).  The lock
    manager raises this error if such a pairing is nevertheless requested,
    because it indicates a bug in the calling protocol.
    """


class LockNotHeldError(LockError):
    """Release or conversion of a lock the transaction does not hold."""


class DeadlockError(LockError):
    """Raised inside the victim transaction when a deadlock is detected."""

    def __init__(self, message: str = "deadlock detected", *, victim: object = None):
        super().__init__(message)
        self.victim = victim


class RXConflictError(LockError):
    """A reader/updater request conflicted with a held RX lock.

    Per paper section 4, the lock manager does not enqueue such a request.
    The requester must forgo the request, release its lock on the base page,
    and request an unconditional instant-duration RS lock on the base page
    instead.  This exception is the signalling mechanism.
    """

    def __init__(self, message: str, *, resource: object = None, holder: object = None):
        super().__init__(message)
        self.resource = resource
        self.holder = holder


class TransactionError(ReproError):
    """Base class for transaction lifecycle errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (deadlock victim, crash, or explicit)."""


class BTreeError(ReproError):
    """Base class for B+-tree structural errors."""


class KeyNotFoundError(BTreeError):
    """A search or delete targeted a key that is not in the tree."""


class DuplicateKeyError(BTreeError):
    """An insert targeted a key that is already in the tree."""


class TreeInvariantError(BTreeError):
    """An internal consistency check of the B+-tree failed."""


class ReorgError(ReproError):
    """Base class for reorganizer errors."""


class ReorgAbortedError(ReorgError):
    """A reorganization unit was aborted (normally as a deadlock victim)."""


class SwitchTimeoutError(ReorgError):
    """The reorganizer could not obtain the X lock on the old tree in time.

    Per paper section 7.4 the reorganizer may then force the remaining old
    transactions to abort; this error is raised when that policy is disabled.
    """


class CrashPoint(ReproError):
    """Injected system failure used by the crash-and-recover harness.

    Raising this exception simulates an instantaneous loss of all volatile
    state.  It deliberately does *not* derive from the errors user code is
    expected to catch-and-continue from.
    """

    def __init__(self, label: str = "crash"):
        super().__init__(f"injected crash: {label}")
        self.label = label
