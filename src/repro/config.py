"""Configuration objects shared across the library.

Two dataclasses collect the tunables of the system:

* :class:`TreeConfig` — shape of the B+-tree and its storage substrate.
* :class:`ReorgConfig` — parameters of the three-pass reorganization
  algorithm (target fill factor, swap pass on/off, empty-page policy,
  stable-point interval, ...).

Both are immutable so a configuration can be shared between a tree, the
reorganizer, and a benchmark harness without aliasing surprises.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class SidePointerKind(enum.Enum):
    """Kind of leaf-level side pointers the tree maintains (paper section 4.3)."""

    NONE = "none"
    ONE_WAY = "one_way"
    TWO_WAY = "two_way"


class PlacementPolicyKind(enum.Enum):
    """Where pass 2 puts each leaf and pass 3 puts each new internal page.

    ``KEY_ORDER`` is the paper's placement: leaf ``i`` is driven to the
    ``i``-th slot of the leaf extent (or shard lease) and pass-3 internal
    pages take the first free page — range scans become sequential.
    ``VEB`` keeps the same leaf placement (a van Emde Boas layout restricted
    to one level *is* left-to-right key order) but lays the rebuilt upper
    levels out in cache-oblivious vEB order inside one contiguous window,
    so root-to-leaf descents touch nearby pages.  ``NONE`` disables
    placement entirely: pass 2 is skipped and pass 3 allocates first-fit,
    which isolates the cost of compaction alone.  See
    :mod:`repro.reorg.placement` and ``docs/placement.md``.
    """

    KEY_ORDER = "key_order"
    VEB = "veb"
    NONE = "none"


class FreeSpacePolicy(enum.Enum):
    """Policy used by pass 1 to pick an empty page for new-place compaction.

    ``PAPER`` is the heuristic of paper section 6.1: the first empty page
    located after the largest finished leaf page id L and before the leaf
    page C being reorganized.  ``FIRST_FIT`` takes any first free page.
    ``NONE`` disables new-place compaction entirely (in-place only), which
    maximizes the number of swaps pass 2 must perform.
    """

    PAPER = "paper"
    FIRST_FIT = "first_fit"
    NONE = "none"


@dataclass(frozen=True)
class TreeConfig:
    """Static shape parameters for a B+-tree and its disk.

    Attributes:
        leaf_capacity: maximum number of records a leaf page holds.
        internal_capacity: maximum number of (key, child) entries an internal
            page holds; the fanout.
        leaf_extent_pages: number of page slots in the leaf disk extent.
            The paper assumes leaf and internal pages live in different parts
            of the disk (section 6), so each gets its own extent.
        internal_extent_pages: number of page slots in the internal extent.
        side_pointers: which kind of leaf side pointers to maintain.
        buffer_pool_pages: capacity of the buffer pool in pages.
        careful_writing: whether the buffer manager enforces write-before
            dependencies, allowing MOVE log records to carry keys only
            (paper section 5, citing [LT95]).
        seek_cost: simulated cost of a non-sequential page read, used by the
            range-scan cost model.  A sequential read costs 1.0.
        sanitizer: install the runtime lock/WAL sanitizer
            (:mod:`repro.analysis.sanitizer`) when the database is built.
            The patches are process-wide and strict (violations raise);
            leave False outside tests — the off path costs nothing.
        group_commit_window: group-commit absorb window of the log manager,
            in LSNs.  A flush request for LSN L makes records up to
            L + window stable in one boundary advance, so nearby flush
            requests are absorbed by the group instead of each paying a
            device flush.  0 disables group commit (every flush advances
            exactly to its requested LSN — the historical behaviour).
        elevator_writeback: drain dirty frames in ascending page-id sweep
            order during ``flush_all``/checkpoint and under eviction
            pressure, so bulk write-back pays mostly sequential write cost.
            Careful-writing dest-before-source edges and the WAL rule are
            still honoured inside the sweep.  False keeps the historical
            LRU/insertion-order write-back.
        writeback_batch: how many dirty frames one eviction-pressure sweep
            drains when ``elevator_writeback`` is on.  Ignored otherwise.
        readahead_pages: maximum pages per multi-page batch read
            (``SimulatedDisk.read_batch``).  Range scans and the reorg
            passes prefetch upcoming pages in batches of at most this many;
            a batch is charged one seek plus N-1 sequential reads.  0
            disables readahead entirely (no batch reads, no prefetch).
        seek_aware_pass2: schedule pass-2 moves/swaps in ascending
            source-page sweep order (an elevator pass over the pending
            leaves) instead of key order, minimising simulated head
            movement.  The resulting tree is identical; only the order of
            units — and hence the I/O pattern — changes.
        reorg_chain_cache: maintain the key-order leaf chain incrementally
            across reorganization units instead of re-sweeping the internal
            level once per unit — the CPU-side analogue of the batched disk
            sweeps, and the main wall-clock lever of the batched-I/O
            configuration.  Only the synchronous pass drivers enable it.
        optimistic_reads: route DES point reads and range scans through the
            latch-free optimistic protocol (:mod:`repro.btree.protocols`):
            readers descend without locks, validating the buffer pool's
            per-page version stamps after every page visit and restarting
            (bounded) on conflict.  A reader that observes an RX lock —
            a reorganization pass working on that page — downgrades to the
            Table-1 locked protocol via the single fallback helper, so the
            paper's give-up / instant-RS semantics are preserved exactly
            where readers and the reorganizer actually collide.  Updaters
            and the reorganizer are unaffected.  Off, the read path is
            byte-identical to the historical locked protocol.
        race_detector: install the hybrid lockset + happens-before data-race
            detector (:mod:`repro.analysis.racedetect`) when the database is
            built.  Non-strict: races are recorded on the active detector's
            ``reports``, not raised.  Like the sanitizer, patches are
            class-level and the off path is byte-identical.
        placement_policy: which :class:`PlacementPolicyKind` passes 2 and 3
            use to choose target page ids.  ``KEY_ORDER`` (the default) is
            byte-identical to the historical behaviour.
        leaf_gap_fraction: fraction of each leaf's capacity that bulk load
            and the pass-1/2/3 rebuilds leave *empty* as an in-page gap
            (BS-tree, arXiv:2505.01180): subsequent inserts land in the
            reserved slack as in-place shifts instead of splitting.  The
            gap is slack below whatever fill factor the builder asked for
            — ``gapped_leaf_fill`` clamps the records-per-leaf count so at
            least ``leaf_gap_slots`` slots stay free.  0.0 (the default)
            reserves nothing and is byte-identical to the historical
            layout.  All gap arithmetic flows through
            :func:`leaf_gap_slots` / :func:`gapped_leaf_fill`; the build
            and reorg paths never compute slack inline (enforced by the
            ``gap-via-config`` lint rule).
    """

    leaf_capacity: int = 32
    internal_capacity: int = 32
    leaf_extent_pages: int = 4096
    internal_extent_pages: int = 1024
    side_pointers: SidePointerKind = SidePointerKind.NONE
    buffer_pool_pages: int = 256
    careful_writing: bool = True
    seek_cost: float = 10.0
    sanitizer: bool = False
    group_commit_window: int = 0
    elevator_writeback: bool = False
    writeback_batch: int = 8
    readahead_pages: int = 0
    seek_aware_pass2: bool = False
    reorg_chain_cache: bool = False
    optimistic_reads: bool = False
    race_detector: bool = False
    placement_policy: PlacementPolicyKind = PlacementPolicyKind.KEY_ORDER
    leaf_gap_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.leaf_capacity < 2:
            raise ValueError("leaf_capacity must be at least 2")
        if self.internal_capacity < 3:
            # With "n keys, n children" pages and pre-emptive splitting, a
            # fan-out-2 internal page is born full and split cascades become
            # linear; 3 is the smallest capacity with geometric growth.
            raise ValueError("internal_capacity must be at least 3")
        if self.leaf_extent_pages < 1 or self.internal_extent_pages < 1:
            raise ValueError("extents must hold at least one page")
        if self.buffer_pool_pages < 4:
            raise ValueError("buffer pool must hold at least 4 pages")
        if self.seek_cost < 1.0:
            raise ValueError("seek_cost must be >= 1.0 (sequential cost is 1.0)")
        if self.group_commit_window < 0:
            raise ValueError("group_commit_window must be >= 0 (0 disables)")
        if self.writeback_batch < 1:
            raise ValueError("writeback_batch must be >= 1")
        if self.readahead_pages < 0:
            raise ValueError("readahead_pages must be >= 0 (0 disables)")
        if not 0.0 <= self.leaf_gap_fraction < 1.0:
            raise ValueError("leaf_gap_fraction must be in [0, 1)")
        if self.leaf_capacity - leaf_gap_slots(self) < 1:
            raise ValueError(
                "leaf_gap_fraction leaves no usable record slot per leaf"
            )


@dataclass(frozen=True)
class ReorgConfig:
    """Parameters of the three-pass reorganization.

    Attributes:
        target_fill: f2, the page fill factor the reorganizer aims for
            (paper section 6: f2 > f1, the current fill factor).
        do_swap_pass: whether to run pass 2 at all.  The paper makes
            swapping optional: "the user can decide not to do swapping".
        free_space_policy: empty-page selection policy for pass 1.
        internal_fill: fill factor used when bulk-building the new upper
            levels in pass 3 ([Sal88] bottom-up construction).
        stable_point_interval: force-write the new tree to disk every this
            many newly built pages (paper section 7.3 suggests e.g. 5).
        switch_wait_limit: simulated-time limit the reorganizer waits for
            the X lock on the old tree before aborting old transactions
            (paper section 7.4).  ``None`` means wait forever.
        abort_old_transactions_on_timeout: if True, force old-tree
            transactions to abort when the wait limit expires; if False,
            raise :class:`repro.errors.SwitchTimeoutError` instead.
        max_unit_output_pages: how many new leaf pages a single
            reorganization unit may construct.  The paper chooses one at a
            time so locks are held briefly (section 6).
    """

    target_fill: float = 0.9
    do_swap_pass: bool = True
    free_space_policy: FreeSpacePolicy = FreeSpacePolicy.PAPER
    internal_fill: float = 0.9
    stable_point_interval: int = 5
    switch_wait_limit: float | None = None
    abort_old_transactions_on_timeout: bool = True
    max_unit_output_pages: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.target_fill <= 1.0:
            raise ValueError("target_fill must be in (0, 1]")
        if not 0.0 < self.internal_fill <= 1.0:
            raise ValueError("internal_fill must be in (0, 1]")
        if self.stable_point_interval < 1:
            raise ValueError("stable_point_interval must be >= 1")
        if self.max_unit_output_pages < 1:
            raise ValueError("max_unit_output_pages must be >= 1")


@dataclass(frozen=True)
class ShardConfig:
    """Shape of a range-partitioned shard forest (:mod:`repro.shard`).

    Attributes:
        n_shards: number of range partitions.  1 degenerates to a single
            tree whose layout is byte-identical to an unsharded database
            built from the same records.
        tree_prefix: shard tree names are ``f"{tree_prefix}{i}"``.
        separators: optional explicit partition bounds — ``n_shards - 1``
            strictly increasing keys; shard ``i`` owns keys in
            ``[separators[i-1], separators[i])`` (open-ended at both ends).
            When empty, :meth:`repro.shard.ShardedDatabase.bulk_load`
            derives equi-populated separators from the loaded records.
        placement_policy: optional override of
            :attr:`TreeConfig.placement_policy` for the whole forest.  The
            per-shard reorganizers then place pass-2/3 targets with this
            policy inside their own extent leases.  ``None`` inherits the
            tree config's policy.
    """

    n_shards: int = 1
    tree_prefix: str = "shard"
    separators: tuple[int, ...] = ()
    placement_policy: PlacementPolicyKind | None = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not self.tree_prefix:
            raise ValueError("tree_prefix must be non-empty")
        if self.separators:
            if len(self.separators) != self.n_shards - 1:
                raise ValueError(
                    f"need {self.n_shards - 1} separators for "
                    f"{self.n_shards} shards, got {len(self.separators)}"
                )
            if any(
                b <= a for a, b in zip(self.separators, self.separators[1:])
            ):
                raise ValueError("separators must be strictly increasing")


def leaf_gap_slots(config: TreeConfig) -> int:
    """Record slots reserved as in-page slack per rebuilt/bulk-loaded leaf.

    The one canonical form of the gap arithmetic (the ``gap-via-config``
    lint rule bans re-deriving it in the build/reorg paths):
    ``floor(leaf_capacity * leaf_gap_fraction)``, with the same ``1e-9``
    epsilon as the fill-count arithmetic so e.g. ``16 * 0.25`` cannot land
    on 3 through floating-point noise.
    """
    return math.floor(config.leaf_capacity * config.leaf_gap_fraction + 1e-9)


def gapped_leaf_fill(config: TreeConfig, fill: float) -> int:
    """Records packed per leaf when building at ``fill`` under the gap.

    This is ``fill_count(leaf_capacity, fill)`` clamped so at least
    :func:`leaf_gap_slots` slots stay free: the gap wins over the requested
    fill factor when the two conflict, and the result is never below one
    record per leaf.  With ``leaf_gap_fraction == 0`` it reduces exactly to
    the historical fill-count, keeping default-config layouts
    byte-identical.
    """
    base = max(1, math.floor(config.leaf_capacity * fill + 1e-9))
    return max(1, min(base, config.leaf_capacity - leaf_gap_slots(config)))


@dataclass(frozen=True)
class DaemonConfig:
    """Policy knobs of the fragmentation-aware auto-reorg daemon.

    The daemon (:class:`repro.reorg.daemon.ReorgDaemon`) is a DES process
    that polls each watched tree's live
    :class:`repro.metrics.FragmentationStats` and triggers the paper's
    three-pass reorganization when fragmentation (``1 - fill_factor``)
    crosses a threshold — Bender et al.'s fragmentation bounds under
    batched insertions (PAPERS.md) are what make a measured threshold a
    sound trigger.

    Attributes:
        poll_interval: simulated time between metric polls.
        frag_high: trigger threshold — a shard whose fragmentation is at
            or above this (and which passes the deferral checks below)
            gets a three-pass reorg.
        frag_low: hysteresis re-arm level.  After a triggered reorg the
            daemon will not fire again for that shard until its
            fragmentation has first dropped to ``frag_low`` or below —
            one reorg per crossing, not one per poll.
        cooldown: minimum simulated time between daemon-triggered reorgs
            of the same shard, independent of hysteresis.
        min_leaves: shards with fewer live leaves than this are never
            reorganized (a near-empty tree's fill factor is noise).
        split_trigger: also trigger when the shard's leaf splits since its
            last metrics baseline reach this count, regardless of fill
            factor.  Every split allocates a leaf out of key order, so
            split count is the live proxy for *disk-order scatter* — the
            component of range-scan degradation that fill factor cannot
            see.  0 disables the split path (fill-threshold only).
        optimistic_burst_threshold: defer a shard's reorg for one poll
            when more than this many optimistic reads
            (:data:`repro.btree.protocols.OPTIMISTIC_STATS` searches +
            scans) completed since the previous poll — a reorg in the
            middle of a read-heavy burst converts every latch-free read
            into a locked fallback.  0 disables the deferral.
        max_triggers: stop triggering after this many daemon-initiated
            reorgs in total (0 = unbounded); the poll loop keeps
            sampling metrics either way.
    """

    poll_interval: float = 5.0
    frag_high: float = 0.35
    frag_low: float = 0.15
    cooldown: float = 20.0
    min_leaves: int = 2
    split_trigger: int = 0
    optimistic_burst_threshold: int = 0
    max_triggers: int = 0

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if not 0.0 < self.frag_high < 1.0:
            raise ValueError("frag_high must be in (0, 1)")
        if not 0.0 <= self.frag_low <= self.frag_high:
            raise ValueError("frag_low must be in [0, frag_high]")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.min_leaves < 1:
            raise ValueError("min_leaves must be >= 1")
        if self.split_trigger < 0:
            raise ValueError("split_trigger must be >= 0 (0 disables)")
        if self.optimistic_burst_threshold < 0:
            raise ValueError("optimistic_burst_threshold must be >= 0")
        if self.max_triggers < 0:
            raise ValueError("max_triggers must be >= 0 (0 = unbounded)")


DEFAULT_TREE_CONFIG = TreeConfig()
DEFAULT_REORG_CONFIG = ReorgConfig()
DEFAULT_DAEMON_CONFIG = DaemonConfig()
