"""Storage substrate: pages, simulated disk, allocator, buffer pool."""

from repro.storage.allocator import FreeSpaceMap
from repro.storage.buffer import BufferPool
from repro.storage.disk import Extent, IOStats, SimulatedDisk
from repro.storage.page import (
    NO_PAGE,
    InternalPage,
    LeafPage,
    Page,
    PageId,
    PageKind,
    Record,
)
from repro.storage.store import INTERNAL_EXTENT, LEAF_EXTENT, StorageManager

__all__ = [
    "BufferPool",
    "Extent",
    "FreeSpaceMap",
    "INTERNAL_EXTENT",
    "IOStats",
    "InternalPage",
    "LEAF_EXTENT",
    "LeafPage",
    "NO_PAGE",
    "Page",
    "PageId",
    "PageKind",
    "Record",
    "SimulatedDisk",
    "StorageManager",
]
