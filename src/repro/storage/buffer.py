"""Buffer pool with WAL and careful-writing enforcement.

The buffer pool caches mutable :class:`~repro.storage.page.Page` objects in
front of the :class:`~repro.storage.disk.SimulatedDisk`.  It enforces two
write-ordering disciplines the paper depends on:

* **Write-ahead logging** (section 5): a dirty page may not reach disk until
  the log records that dirtied it are flushed.  The pool calls
  ``wal.flush(up_to_lsn)`` before any page write.

* **Careful writing** (section 5, citing [LT95]): when records are copied
  from a source page to a destination page, the *source* "cannot be written
  to disk until the new page is written to disk", and a page to be
  deallocated "cannot be deallocated until the new page where its contents
  was copied is on disk".  :meth:`BufferPool.add_write_dependency` records a
  *dest-before-source* edge; flushing the source first flushes its pending
  destinations (recursively).  This is what lets MOVE log records carry keys
  only instead of full record contents.

Eviction is LRU over unpinned frames.  Evicting a dirty frame performs a
(dependency- and WAL-respecting) write first, so callers never observe lost
updates.

Two batched-I/O features are opt-in (``TreeConfig`` flags, default off):

* **Elevator write-back**: ``flush_all``/``force`` drain dirty frames in
  ascending page-id order, and eviction pressure writes back a short sweep
  of dirty frames (the victim plus its followers in page-id order) instead
  of a single page, so bulk write-back pays mostly sequential write cost.
  Careful-writing edges still flush destinations first *within* the sweep
  — a dependency pointing against the sweep direction simply costs the
  extra head movement it implies.

* **Prefetch frames**: :meth:`BufferPool.prefetch` admits upcoming pages
  via :meth:`~repro.storage.disk.SimulatedDisk.read_batch` before they are
  demanded.  This is safe because a non-resident page's latest contents
  are always its stable image (eviction writes dirty frames back), and
  resident pages are skipped.  Hit/waste counters record whether the
  gamble paid off.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Protocol

from repro.errors import (
    BufferPoolError,
    CarefulWriteViolation,
    PagePinnedError,
)
from repro.perf import PERF
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId

#: Module-level alias: PERF.reset() clears counters in place, so the bound
#: object stays valid and the hot paths save an attribute load per event.
_COUNTERS = PERF.counters


class WALHook(Protocol):
    """The slice of the log manager the buffer pool needs."""

    def flush(self, up_to_lsn: int) -> None:
        """Make all log records with LSN <= ``up_to_lsn`` stable."""

    @property
    def flushed_lsn(self) -> int:
        """Largest LSN known to be stable."""


class _NullWAL:
    """Default hook for tests that exercise the pool without a log."""

    flushed_lsn = 0

    def flush(self, up_to_lsn: int) -> None:  # noqa: D102 - trivial
        pass


class _Frame:
    __slots__ = ("page", "dirty", "pins", "prefetched")

    def __init__(self, page: Page):
        self.page = page
        self.dirty = False
        self.pins = 0
        #: Admitted by prefetch and not yet demanded by a fetch.
        self.prefetched = False


class BufferPool:
    """LRU page cache enforcing WAL and careful-writing order."""

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int,
        *,
        wal: WALHook | None = None,
        careful_writing: bool = True,
        elevator: bool = False,
        writeback_batch: int = 8,
    ):
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be positive")
        if writeback_batch < 1:
            raise BufferPoolError("writeback_batch must be >= 1")
        self._disk = disk
        self._capacity = capacity
        self._wal: WALHook = wal if wal is not None else _NullWAL()
        self._wal_absorbs = bool(getattr(self._wal, "absorbs_flushes", False))
        self._careful_writing = careful_writing
        self._elevator = elevator
        self._writeback_batch = writeback_batch
        #: LRU order: oldest first.  Maps page id -> frame.
        self._frames: OrderedDict[PageId, _Frame] = OrderedDict()
        #: Invariant: either None or the key currently last in ``_frames``.
        #: Lets repeat fetches of the hottest page skip ``move_to_end``.
        self._mru_id: PageId | None = None
        # Bound dict methods shadowing `contains` (below) and feeding the
        # `fetch` hit path: the DES charges a residency-dependent cost per
        # FetchPage, so these run once per simulated page access.  `_frames`
        # is cleared in place on crash, never rebound, so the bound methods
        # stay valid.
        self.contains = self._frames.__contains__
        self._frames_get = self._frames.get
        self._frames_move_to_end = self._frames.move_to_end
        #: Per-page version stamps for the optimistic read path.  Bumped on
        #: every mutation funnel — `mark_dirty` (all log-applied changes:
        #: insert, split, swap, side-file apply), `put_new` (allocation) and
        #: `drop` (deallocation, including the pass-3 switch discarding the
        #: old internal levels).  Entries survive `drop` on purpose: keeping
        #: the stamp monotonic across free/realloc defeats ABA, where a
        #: reader validates against a *new* page that reused the id.
        self._versions: dict[PageId, int] = {}
        self._versions_get = self._versions.get
        #: source page id -> set of destination page ids that must be
        #: durable before the source may be written or deallocated.
        self._write_before: dict[PageId, set[PageId]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.page_writes = 0
        #: Prefetch accounting: batches issued, pages admitted, pages later
        #: demanded by a fetch (hits), pages evicted/dropped undemanded
        #: (waste), and eviction-pressure elevator sweeps performed.
        self.prefetch_batches = 0
        self.prefetched_pages = 0
        self.prefetch_hits = 0
        self.prefetch_wasted = 0
        self.writeback_sweeps = 0

    # -- configuration -----------------------------------------------------

    def set_wal(self, wal: WALHook) -> None:
        """Attach the log manager after construction (breaks an init cycle)."""
        self._wal = wal
        self._wal_absorbs = bool(getattr(wal, "absorbs_flushes", False))

    @property
    def careful_writing(self) -> bool:
        return self._careful_writing

    @property
    def elevator(self) -> bool:
        return self._elevator

    # -- core access --------------------------------------------------------

    def fetch(self, page_id: PageId, *, pin: bool = False) -> Page:
        """Return the in-pool page object, reading from disk on a miss."""
        frame = self._frames_get(page_id)
        if frame is not None:
            self.hits += 1
            _COUNTERS.buffer_hits += 1
            if frame.prefetched:
                frame.prefetched = False
                self.prefetch_hits += 1
            if page_id != self._mru_id:
                self._frames_move_to_end(page_id)
                self._mru_id = page_id
            else:
                # Already the newest entry; move_to_end would be a no-op.
                _COUNTERS.buffer_mru_hits += 1
        else:
            self.misses += 1
            _COUNTERS.buffer_misses += 1
            page = self._disk.read(page_id)
            frame = self._admit(page)
        if pin:
            frame.pins += 1
        return frame.page

    def put_new(self, page: Page, *, pin: bool = False) -> Page:
        """Register a freshly allocated page that has no stable image yet."""
        if page.page_id in self._frames:
            raise BufferPoolError(f"page {page.page_id} already buffered")
        frame = self._admit(page)
        frame.dirty = True
        self._versions[page.page_id] = self._versions_get(page.page_id, 0) + 1
        if pin:
            frame.pins += 1
        return frame.page

    def prefetch(
        self, page_ids, *, max_batch: int | None = None
    ) -> int:
        """Admit upcoming pages ahead of demand via batch reads.

        Candidates are deduplicated and sorted ascending (batch reads are
        one sweep direction), then filtered to pages that are not resident
        and have a stable image — for everything else the pool or the
        allocator, not the disk, is authoritative.  One batch of at most
        ``max_batch`` pages is issued (one readahead window; callers refill
        as the scan consumes it), further capped at what the pool can admit
        without evicting pinned frames.  Returns the number of pages
        admitted; best-effort, never raises for lack of room.
        """
        wanted = sorted(
            pid
            for pid in set(page_ids)
            if pid not in self._frames and self._disk.has_image(pid)
        )
        if not wanted:
            return 0
        if max_batch is not None:
            wanted = wanted[:max_batch]
        # Never force out pinned frames for a speculative read.
        room = self._capacity - len(self._frames)
        room += sum(1 for f in self._frames.values() if f.pins == 0)
        wanted = wanted[: max(0, room)]
        if not wanted:
            return 0
        pages = self._disk.read_batch(wanted)
        self.prefetch_batches += 1
        for page in pages:
            frame = self._admit(page)
            frame.prefetched = True
        self.prefetched_pages += len(pages)
        return len(pages)

    def pin(self, page_id: PageId) -> None:
        frame = self._require_frame(page_id)
        frame.pins += 1

    def unpin(self, page_id: PageId) -> None:
        frame = self._require_frame(page_id)
        if frame.pins == 0:
            raise BufferPoolError(f"page {page_id} is not pinned")
        frame.pins -= 1

    def mark_dirty(self, page_id: PageId, lsn: int | None = None) -> None:
        """Mark a buffered page dirty, optionally stamping its page LSN."""
        # One call per applied log record; inline the frame lookup rather
        # than going through `_require_frame`.
        frame = self._frames_get(page_id)
        if frame is None:
            raise BufferPoolError(f"page {page_id} is not buffered")
        frame.dirty = True
        self._versions[page_id] = self._versions_get(page_id, 0) + 1
        if lsn is not None:
            frame.page.page_lsn = lsn

    def version_of(self, page_id: PageId) -> int:
        """Current version stamp of a page (0 if never mutated).

        Valid for resident and non-resident pages alike: stamps track
        logical mutations, not residency, so an optimistic reader can
        capture a stamp, pay the simulated fetch delay, and re-validate
        even if the frame was evicted in between.
        """
        return self._versions_get(page_id, 0)

    def bump_version(self, page_id: PageId) -> None:
        """Invalidate optimistic readers of ``page_id`` without a content
        mutation.  The pass-3 switch uses this on the old root after the
        flip so in-flight lock-free descents anchored there restart and
        pick up the new access path instead of lingering on the old tree.
        """
        self._versions[page_id] = self._versions_get(page_id, 0) + 1

    def is_dirty(self, page_id: PageId) -> bool:
        return self._require_frame(page_id).dirty

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._frames

    # -- careful writing --------------------------------------------------------

    def add_write_dependency(self, source: PageId, dest: PageId) -> None:
        """Require ``dest`` to be durable before ``source`` is written/freed.

        No-op when careful writing is disabled (callers then log full record
        contents instead, see :mod:`repro.wal.records`).
        """
        if not self._careful_writing:
            return
        if source == dest:
            raise CarefulWriteViolation("a page cannot depend on itself")
        self._write_before.setdefault(source, set()).add(dest)

    def pending_dependencies(self, source: PageId) -> set[PageId]:
        return set(self._write_before.get(source, ()))

    def remove_write_dependency(self, source: PageId, dest: PageId) -> None:
        """Cancel a write-before edge.

        Used when the action that created the edge is *undone* (section
        5.2): once the records are moved back, full contents having been
        logged for the reverse move, neither write order can lose data.
        """
        dests = self._write_before.get(source)
        if dests is not None:
            dests.discard(dest)
            if not dests:
                del self._write_before[source]

    def _clear_dependencies_on(self, dest: PageId) -> None:
        """``dest`` became durable; drop edges pointing at it."""
        if not self._write_before:
            return
        empty_sources = []
        for source, dests in self._write_before.items():
            dests.discard(dest)
            if not dests:
                empty_sources.append(source)
        for source in empty_sources:
            del self._write_before[source]

    # -- writing ---------------------------------------------------------------

    def flush_page(self, page_id: PageId) -> None:
        """Write one page to disk, honouring WAL and careful-writing order.

        Pending destination pages are flushed first, recursively.  A
        dependency cycle (impossible under the reorganizer's protocols, but
        conceivable from buggy callers) raises
        :class:`~repro.errors.CarefulWriteViolation`.
        """
        self._flush_page(page_id)

    def _flush_page(
        self, page_id: PageId, *, in_progress: set[PageId] | None = None
    ) -> None:
        if in_progress is not None and page_id in in_progress:
            raise CarefulWriteViolation(
                f"careful-writing dependency cycle involving page {page_id}"
            )
        frame = self._frames.get(page_id)
        if frame is None or not frame.dirty:
            # Clean or unbuffered pages are already stable; still clear any
            # edges that point at them so sources can make progress.
            self._clear_dependencies_on(page_id)
            return
        # `sorted` snapshots the dependency set before any recursive flush
        # can mutate it via `_clear_dependencies_on`; no defensive copy
        # (or cycle bookkeeping) is needed when there are no edges at all,
        # which is every flush outside a reorganization.
        deps = self._write_before.get(page_id)
        if deps:
            if in_progress is None:
                in_progress = set()
            in_progress.add(page_id)
            for dest in sorted(deps):
                self._flush_page(dest, in_progress=in_progress)
            in_progress.discard(page_id)
        if frame.page.page_lsn <= self._wal.flushed_lsn:
            _COUNTERS.wal_flush_skips += 1
            # With group commit on, a request already covered by the stable
            # boundary is exactly an "absorbed" flush and must still reach
            # the log manager to be counted; otherwise it would be a no-op
            # there and the call is skipped entirely.
            if self._wal_absorbs:
                self._wal.flush(frame.page.page_lsn)
        else:
            self._wal.flush(frame.page.page_lsn)
        self._disk.write(frame.page)
        frame.dirty = False
        self.page_writes += 1
        self._clear_dependencies_on(page_id)

    def flush_all(self) -> None:
        """Write every dirty page (checkpoint / shutdown helper).

        With elevator write-back on, frames drain in ascending page-id
        order — one sweep of the head — instead of pool insertion order.
        """
        page_ids = list(self._frames)
        if self._elevator:
            page_ids.sort()
        for page_id in page_ids:
            self.flush_page(page_id)

    def force(self, page_ids: list[PageId]) -> None:
        """Force-write specific pages now (pass 3 stable points, §7.3)."""
        if self._elevator:
            page_ids = sorted(page_ids)
        for page_id in page_ids:
            self.flush_page(page_id)

    # -- deallocation -------------------------------------------------------------

    def drop(self, page_id: PageId) -> None:
        """Remove a page from the pool as part of deallocation.

        Careful writing: the page's destination pages are made durable
        first, so the copied-out contents cannot be lost.  The caller is
        responsible for returning the id to the
        :class:`~repro.storage.allocator.FreeSpaceMap` (which erases the
        stable image).
        """
        frame = self._frames.get(page_id)
        for dest in sorted(self.pending_dependencies(page_id)):
            self._flush_page(dest)
        self._write_before.pop(page_id, None)
        if frame is not None:
            if frame.pins > 0:
                raise PagePinnedError(f"cannot drop pinned page {page_id}")
            if frame.prefetched:
                self.prefetch_wasted += 1
            del self._frames[page_id]
            if page_id == self._mru_id:
                self._mru_id = None
        # Deallocation is a mutation from a reader's point of view: any
        # optimistic validation spanning it must fail (and the bumped-not-
        # deleted entry makes a later reallocation of this id visible too).
        self._versions[page_id] = self._versions_get(page_id, 0) + 1

    # -- crash simulation ----------------------------------------------------------

    def crash(self) -> None:
        """Discard all volatile state (buffered pages, dependency edges)."""
        self._frames.clear()
        self._mru_id = None
        self._write_before.clear()

    # -- internals -------------------------------------------------------------

    def _require_frame(self, page_id: PageId) -> _Frame:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"page {page_id} is not buffered")
        return frame

    def _admit(self, page: Page) -> _Frame:
        while len(self._frames) >= self._capacity:
            self._evict_one()
        frame = _Frame(page)
        self._frames[page.page_id] = frame
        self._mru_id = page.page_id
        return frame

    def _evict_one(self) -> None:
        for page_id, frame in self._frames.items():
            if frame.pins == 0:
                if frame.dirty:
                    if self._elevator:
                        self._writeback_sweep(page_id)
                    else:
                        self._flush_page(page_id)
                if frame.prefetched:
                    self.prefetch_wasted += 1
                del self._frames[page_id]
                if page_id == self._mru_id:
                    self._mru_id = None
                self.evictions += 1
                return
        raise BufferPoolError("all buffer frames are pinned; cannot evict")

    def _writeback_sweep(self, victim_id: PageId) -> None:
        """Eviction-pressure elevator: write back a short run of dirty
        frames in ascending page-id order, starting at the eviction victim.

        One dirty victim usually means many dirty frames are queued behind
        it; draining a sweep of them now converts the coming burst of
        single-page seeks into one mostly-sequential pass, and leaves clean
        frames for the next few evictions.
        """
        dirty = sorted(
            pid
            for pid, frame in self._frames.items()
            if frame.dirty and frame.pins == 0
        )
        start = dirty.index(victim_id)
        for page_id in dirty[start : start + self._writeback_batch]:
            self._flush_page(page_id)
        self.writeback_sweeps += 1
